//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple
//! warm-up-then-measure timing loop instead of criterion's statistical
//! machinery. Results are printed as ns/iter (plus derived element
//! throughput when configured); there are no HTML reports, baselines,
//! or outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// How long each benchmark measures for (after a short warm-up).
const MEASURE: Duration = Duration::from_millis(200);
const WARMUP: Duration = Duration::from_millis(50);

/// Work-per-iteration metadata, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id rendering as the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            param: param.to_string(),
        }
    }

    /// An id rendering as `function/parameter`.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            param: format!("{function}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.param)
    }
}

/// Drives one benchmark's timing loop.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// True when invoked by `cargo test` (which passes `--test` to
/// `harness = false` targets): run each benchmark body once as a smoke
/// test instead of timing it.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

impl Bencher {
    /// Times `f`, first warming up briefly, then measuring for a fixed
    /// wall-clock window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            std::hint::black_box(f());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= MEASURE {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{name}: no iterations");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            ", {:.3} Melem/s",
            n as f64 * b.iters as f64 / b.elapsed.as_secs_f64() / 1e6
        ),
        Throughput::Bytes(n) => format!(
            ", {:.3} MiB/s",
            n as f64 * b.iters as f64 / b.elapsed.as_secs_f64() / (1024.0 * 1024.0)
        ),
    });
    println!(
        "{name}: {ns:.1} ns/iter ({} iters){}",
        b.iters,
        rate.unwrap_or_default()
    );
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub's fixed measurement
    /// window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Ends the group (a no-op in the stub).
    pub fn finish(self) {}
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundles benchmark functions into one runner, mirroring criterion's
/// simple `criterion_group!(name, fn...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids_render() {
        assert_eq!(
            BenchmarkId::from_parameter("gcc:eon").to_string(),
            "gcc:eon"
        );
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(2), &2u32, |b, n| {
            b.iter(|| n + 1)
        });
        g.finish();
    }
}
