//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal serialization framework under the `serde` name: a
//! JSON-oriented [`Value`] tree, [`Serialize`]/[`Deserialize`] traits
//! that convert to and from it, and derive macros (re-exported from the
//! sibling `serde_derive` stub) for the struct/enum shapes this
//! repository actually uses.
//!
//! This is **not** API-compatible with the real serde beyond what the
//! repository needs: derives on non-generic structs (named, newtype),
//! enums with unit and named-field variants, the `#[serde(default)]`
//! field attribute, and the primitive/`Option`/`Vec`/array/tuple/map
//! impls below. If the workspace is ever built online again, deleting
//! `vendor/` and restoring the crates-io dependencies is enough — the
//! call sites are unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped self-describing value.
///
/// Integers keep their signedness so `u64` counters round-trip exactly
/// (JSON itself has only "number"; the writer and parser in the
/// `serde_json` stub preserve `u64`/`i64` precision by printing and
/// re-parsing digit strings, never going through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order (field declaration order for derived
    /// structs, which keeps serialized output deterministic).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error: a message plus nothing else (the stub does not
/// track paths or positions beyond what the JSON parser reports).
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Converts a type into a [`Value`] tree.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a type from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field of this type is absent from
    /// the input object — `None` means "absence is an error". Overridden
    /// by `Option<T>` so optional fields behave like the real serde.
    fn missing() -> Option<Self> {
        None
    }
}

/// Looks up struct field `key` in `fields`, deserializing it or falling
/// back to [`Deserialize::missing`].
pub fn read_field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => T::missing().ok_or_else(|| DeError::custom(format!("missing field `{key}`"))),
    }
}

/// Like [`read_field`], but a missing field takes the type's `Default`
/// (the `#[serde(default)]` attribute).
pub fn read_field_or_default<T: Deserialize + Default>(
    fields: &[(String, Value)],
    key: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn int_from(v: &Value) -> Result<i64, DeError> {
    match v {
        Value::UInt(u) => i64::try_from(*u).map_err(|_| DeError::custom("integer overflow")),
        Value::Int(i) => Ok(*i),
        other => Err(DeError::custom(format!(
            "expected integer, found {}",
            other.kind()
        ))),
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom("unsigned integer out of range")),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                <$t>::try_from(int_from(v)?)
                    .map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, found {got}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::custom("expected 3-element array")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom(format!("expected object, found {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom(format!("expected object, found {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        let fields: Vec<(String, Value)> = vec![];
        let v: Option<u64> = read_field(&fields, "absent").unwrap();
        assert_eq!(v, None);
        assert!(read_field::<u64>(&fields, "absent").is_err());
    }

    #[test]
    fn numeric_cross_conversions() {
        assert_eq!(u64::from_value(&Value::UInt(7)).unwrap(), 7);
        assert_eq!(i64::from_value(&Value::Int(-7)).unwrap(), -7);
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn arrays_round_trip() {
        let a: [u32; 2] = [3, 9];
        let v = a.to_value();
        assert_eq!(<[u32; 2]>::from_value(&v).unwrap(), a);
    }
}
