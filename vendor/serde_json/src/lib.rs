//! Offline stand-in for the `serde_json` crate: serializes the vendored
//! `serde` stub's [`Value`](serde::Value) tree to JSON text and parses
//! JSON text back.
//!
//! Fidelity notes, because experiment caches must round-trip exactly:
//!
//! * `u64`/`i64` are printed as digit strings and re-parsed as integers
//!   (never routed through `f64`), so 64-bit counters keep full
//!   precision;
//! * `f64` uses Rust's `Display`, which emits the shortest string that
//!   round-trips to the identical bit pattern;
//! * non-finite floats serialize as `null` (like the real serde_json);
//! * object key order is preserved, so serializing the same value twice
//!   yields byte-identical text — which is what lets the determinism
//!   tests compare serial and parallel experiment engines by comparing
//!   their JSON.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the stub's value model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the stub's value model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, level, |out, i, lvl| {
                write_value(out, &items[i], indent, lvl);
            });
        }
        Value::Map(entries) => {
            write_bracketed(
                out,
                '{',
                '}',
                entries.len(),
                indent,
                level,
                |out, i, lvl| {
                    write_string(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, &entries[i].1, indent, lvl);
                },
            );
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * level));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // `Display` prints integral floats without a decimal point; add one
    // so the value re-parses as a float (serde_json prints `1.0` too).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number text is ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u64>() {
                    if u <= i64::MAX as u64 {
                        return Ok(Value::Int(-(u as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            // Integer too large for 64 bits: fall through to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn u64_counters_keep_full_precision() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX] {
            let json = to_string(&f).unwrap();
            let back = from_str::<f64>(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
