//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range strategies over integers and floats, tuple strategies,
//! `prop_map`, `prop::collection::vec`, `prop::bool::ANY`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real proptest, by design:
//!
//! * cases are generated from a **fixed deterministic seed** derived
//!   from the test's module path and name, so CI failures reproduce
//!   locally without `.proptest-regressions` files (which this stub
//!   ignores);
//! * there is **no shrinking** — a failing case reports its values via
//!   the assertion message instead.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner configuration (a tiny subset of the real module).

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the cycle-level-simulator
            // properties affordable in CI while still exploring broadly.
            Self { cases: 64 }
        }
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test's full path).
    pub fn for_test(name: &str) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for b in name.bytes() {
            state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        Self { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; `hi > lo` required.
    pub fn uint_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator of random values (no shrinking in the stub).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                rng.uint_in(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range");
                if hi == u64::MAX && lo == 0 {
                    rng.next_u64() as $t
                } else {
                    rng.uint_in(lo, hi + 1) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// A strategy generating `Vec`s of `element` with lengths drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-bool strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias of the crate root so `prop::collection::vec` and
    /// `prop::bool::ANY` resolve as in the real proptest.
    pub use crate as prop;
}

/// Fails the current case with a formatted message (used by the
/// `prop_assert*` macros; exposed for completeness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(
                ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(msg) = outcome {
                    ::core::panic!(
                        "property `{}` failed on case {}/{}: {}",
                        ::core::stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in 0.5f64..=2.0, b in prop::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&f));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn prop_map_composes(t in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=9).contains(&t));
        }
    }
}
