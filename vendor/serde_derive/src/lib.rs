//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` stub's value model, by parsing the
//! derive input token stream directly (no `syn`/`quote` — the build
//! environment is offline, so this crate must be dependency-free).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * non-generic structs with named fields (any field types that
//!   themselves implement the traits), honoring `#[serde(default)]`,
//! * non-generic newtype structs (`struct F(f64)`), serialized
//!   transparently like the real serde,
//! * non-generic enums with unit and named-field variants, externally
//!   tagged (`"Variant"` / `{"Variant": {...}}`) like the real serde.
//!
//! Anything else (generics, tuple variants, unions) panics at macro
//! expansion time with a message naming this file, so an unsupported
//! type is a loud compile error rather than silent misbehaviour.

use proc_macro::{TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    /// Single-field tuple struct.
    Newtype,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, field list for named-field variants.
    fields: Option<Vec<Field>>,
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading attributes (`#[...]`) starting at `i`, returning the
/// next index and whether any of them was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i + 1 < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let TokenTree::Group(g) = &tokens[i + 1] {
                    let body = g.stream().to_string();
                    // `serde(default)` — tolerate arbitrary whitespace in
                    // the token-stream rendering.
                    let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
                    if compact.starts_with("serde(") && compact.contains("default") {
                        has_default = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, has_default)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == proc_macro::Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Consumes a type starting at `i`, up to (and past) a top-level `,`.
/// Tracks `<`/`>` depth; groups are single tokens so brackets and braces
/// never leak commas.
fn skip_type_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                return i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after `{name}`, found `{other}`"),
        }
        i = skip_type_to_comma(&tokens, i);
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found `{other}`"),
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                proc_macro::Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream()));
                    i += 1;
                }
                proc_macro::Delimiter::Parenthesis => panic!(
                    "serde_derive stub: tuple variant `{name}` is unsupported \
                     (see vendor/serde_derive/src/lib.rs)"
                ),
                _ => {}
            }
        }
        // Skip to (and past) the separating comma, tolerating an
        // explicit discriminant.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive stub: generic type `{name}` is unsupported \
                 (see vendor/serde_derive/src/lib.rs)"
            );
        }
    }
    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == proc_macro::Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g)))
            if g.delimiter() == proc_macro::Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut commas = 0;
            let mut depth = 0i32;
            for t in &inner {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
                    _ => {}
                }
            }
            if !inner.is_empty() && commas == 0 {
                Shape::Newtype
            } else {
                panic!(
                    "serde_derive stub: multi-field tuple struct `{name}` is unsupported \
                     (see vendor/serde_derive/src/lib.rs)"
                );
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == proc_macro::Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        _ => panic!("serde_derive stub: unsupported item shape for `{name}`"),
    };
    Input { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0})),",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{v}\"), \
                                  ::serde::Value::Map(::std::vec![{entries}]))]),",
                            v = v.name,
                            binds = binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_field_reads(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            if f.default {
                format!(
                    "{0}: ::serde::read_field_or_default(fields, \"{0}\")?,",
                    f.name
                )
            } else {
                format!("{0}: ::serde::read_field(fields, \"{0}\")?,", f.name)
            }
        })
        .collect()
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let reads = gen_field_reads(fields);
            format!(
                "let fields = v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                     ::std::format!(\"{name}: expected object, found {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {reads} }})"
            )
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let fields = v.fields.as_ref()?;
                    let reads = gen_field_reads(fields);
                    Some(format!(
                        "\"{v}\" => {{\n\
                             let fields = inner.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"{name}::{v}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {reads} }})\n\
                         }},",
                        v = v.name
                    ))
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (_tag, inner) = (&m[0].0, &m[0].1);\n\
                         let _ = inner;\n\
                         match _tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"{name}: expected enum, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
