//! `soe-repro` — a reproduction of *"Fairness and Throughput in Switch on
//! Event Multithreading"* (Ron Gabor, Shlomo Weiss, Avi Mendelson;
//! MICRO 2006).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — the Section 2 analytical model (equations 1–13, the
//!   fairness metric, the `IPSw` quota solver, F-sweeps),
//! * [`sim`] — the cycle-level out-of-order SOE core + memory hierarchy,
//! * [`workloads`] — synthetic SPEC-CPU2000-like trace generators,
//! * [`core`] — the paper's fairness-enforcement mechanism (hardware
//!   counters, Δ-periodic estimation, deficit counters) and the
//!   experiment runner,
//! * [`stats`] — statistics and table/chart rendering.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record of
//! every table and figure.
//!
//! # Examples
//!
//! The analytical Table 2 example:
//!
//! ```
//! use soe_repro::model::{FairnessLevel, SoeModel, SystemParams, ThreadModel};
//!
//! let m = SoeModel::new(
//!     vec![ThreadModel::new(2.5, 15_000.0), ThreadModel::new(2.5, 1_000.0)],
//!     SystemParams::default(),
//! );
//! assert!(m.analyze(FairnessLevel::NONE).fairness < 0.12);
//! assert!(m.analyze(FairnessLevel::PERFECT).fairness > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soe_core as core;
pub use soe_model as model;
pub use soe_sim as sim;
pub use soe_stats as stats;
pub use soe_workloads as workloads;
