//! `soe-loadgen` — deterministic traffic generation and SLO checking
//! for `soe-serve`.
//!
//! `gen` emits an `soe-serve/v1` request stream on stdout that mixes
//! polite clients, a hog (many requests per tick), malformed lines,
//! oversized requests (validation rejects), and an optional mid-stream
//! disconnect (`--truncate` cuts the final line mid-JSON). Everything
//! is derived from `--seed`, so a given command line always produces
//! the same bytes.
//!
//! `check` reads an `soe-serve-slo/1` report and enforces bounds —
//! the CI chaos job's assertion tool:
//!
//! ```text
//! soe-loadgen gen --polite 3 --hog 10 --ticks 2 | soe-serve --slo slo.json
//! soe-loadgen check --slo slo.json --min-fairness 0.9 --require-shed
//! ```

use std::io::Write;
use std::process::ExitCode;

use soe_repro::core::serve::{Scenario, SloReport, PROTOCOL};
use soe_repro::workloads::spec;

fn usage() -> &'static str {
    "soe-loadgen — traffic generator / SLO checker for soe-serve\n\n\
     usage:\n\
     \x20 soe-loadgen gen [options]            # request stream on stdout\n\
     \x20 soe-loadgen check --slo report.json [--min-fairness F] [--require-shed]\n\n\
     gen options:\n\
     \x20 --polite N       polite clients c0..c{N-1} (default 3)\n\
     \x20 --per-client K   requests per polite client (default 4)\n\
     \x20 --hog K          hog requests per tick (default 0; hog client `hog`)\n\
     \x20 --ticks T        submission rounds (default 1)\n\
     \x20 --malformed K    junk lines sprinkled in (default 0)\n\
     \x20 --oversized K    over-limit requests (validation rejects; default 0)\n\
     \x20 --truncate       cut the final line mid-JSON (disconnect mid-stream)\n\
     \x20 --sizing S       micro | quick scenario windows (default micro)\n\
     \x20 --seed S         RNG seed (default 7)\n\n\
     check options:\n\
     \x20 --slo PATH           the soe-serve-slo/1 report to check\n\
     \x20 --min-fairness F     fail if the Jain index is below F\n\
     \x20 --max-polite-p99 W   fail if any non-hog p99 queue wait exceeds W dispatches\n\
     \x20 --require-shed       fail unless backpressure shed at least one request\n\
     \x20 --require-served N   fail unless served + replayed >= N"
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {flag} `{v}`")),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Scenario windows: `micro` answers in well under a second per
/// request (load tests), `quick` matches `RunConfig::quick()` sizing.
fn sizing(name: &str) -> Result<(u64, u64), String> {
    match name {
        "micro" => Ok((20_000, 60_000)),
        "quick" => Ok((200_000, 1_000_000)),
        other => Err(format!("unknown --sizing `{other}` (micro|quick)")),
    }
}

fn scenario(rng: &mut u64, warmup: u64, measure: u64) -> Scenario {
    // A compute-bound / memory-bound mix per the paper's pairings.
    let compute = ["gcc", "eon", "gzip", "bzip2", "vortex"];
    let memory = ["swim", "mgrid", "applu", "art", "mcf"];
    let a = compute
        .get((splitmix64(rng) % compute.len() as u64) as usize)
        .copied()
        .unwrap_or("gcc");
    let b = memory
        .get((splitmix64(rng) % memory.len() as u64) as usize)
        .copied()
        .unwrap_or("swim");
    let f = [0.0, 0.5, 0.9]
        .get((splitmix64(rng) % 3) as usize)
        .copied()
        .unwrap_or(0.5);
    Scenario {
        roster: vec![a.to_string(), b.to_string()],
        policy: "fairness".to_string(),
        f,
        timeslice_cycles: 0,
        warmup_cycles: warmup,
        measure_cycles: measure,
    }
}

fn request_line(id: &str, client: &str, sc: &Scenario) -> String {
    let sc_json = serde_json::to_string(sc).unwrap_or_default();
    format!(
        "{{\"proto\":\"{PROTOCOL}\",\"id\":\"{id}\",\"client\":\"{client}\",\"scenario\":{sc_json}}}"
    )
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let polite: usize = parse_num(args, "--polite", 3)?;
    let per_client: usize = parse_num(args, "--per-client", 4)?;
    let hog: usize = parse_num(args, "--hog", 0)?;
    let ticks: usize = parse_num(args, "--ticks", 1)?;
    let malformed: usize = parse_num(args, "--malformed", 0)?;
    let oversized: usize = parse_num(args, "--oversized", 0)?;
    let truncate = args.iter().any(|a| a == "--truncate");
    let (warmup, measure) = sizing(&flag_value(args, "--sizing").unwrap_or("micro".into()))?;
    let mut rng: u64 = parse_num(args, "--seed", 7)?;

    let mut lines: Vec<String> = Vec::new();
    for tick in 0..ticks.max(1) {
        // The hog floods first each tick — the worst case for FIFO.
        for k in 0..hog {
            let sc = scenario(&mut rng, warmup, measure);
            lines.push(request_line(&format!("hog-t{tick}-{k}"), "hog", &sc));
        }
        for c in 0..polite {
            for k in 0..per_client {
                let sc = scenario(&mut rng, warmup, measure);
                lines.push(request_line(
                    &format!("c{c}-t{tick}-{k}"),
                    &format!("c{c}"),
                    &sc,
                ));
            }
        }
    }
    for k in 0..malformed {
        // Rotate through distinct failure shapes: non-JSON, wrong
        // protocol, missing fields, bad types.
        let junk = match k % 4 {
            0 => format!("this is not json at all ({k})"),
            1 => format!(
                "{{\"proto\":\"bogus/9\",\"id\":\"bad-{k}\",\"client\":\"mal\",\"scenario\":{{}}}}"
            ),
            2 => format!("{{\"proto\":\"{PROTOCOL}\",\"id\":\"bad-{k}\"}}"),
            _ => format!(
                "{{\"proto\":\"{PROTOCOL}\",\"id\":\"bad-{k}\",\"client\":\"mal\",\
                 \"scenario\":{{\"roster\":\"gcc\",\"policy\":7}}}}"
            ),
        };
        lines.push(junk);
    }
    for k in 0..oversized {
        // A roster far over MAX_ROSTER: well-formed JSON, rejected by
        // validation with a typed field error.
        let mut sc = scenario(&mut rng, warmup, measure);
        sc.roster = spec::NAMES.iter().map(|n| n.to_string()).collect();
        lines.push(request_line(&format!("big-{k}"), "oversize", &sc));
    }

    // Deterministic shuffle of the non-hog tail so malformed/oversized
    // lines land between valid requests rather than at the end.
    let mut order: Vec<usize> = (0..lines.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut rng) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let last = order.len().saturating_sub(1);
    for (pos, idx) in order.iter().enumerate() {
        let Some(line) = lines.get(*idx) else {
            continue;
        };
        if truncate && pos == last {
            // Mid-stream disconnect: the final request dies mid-byte.
            let cut = line.len() / 2;
            let partial = line.get(..cut).unwrap_or(line);
            write!(out, "{partial}").map_err(|e| e.to_string())?;
            break;
        }
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--slo").ok_or("check needs --slo <report.json>")?;
    let raw = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let report: SloReport =
        serde_json::from_str(&raw).map_err(|e| format!("parsing {path}: {e}"))?;
    println!(
        "{path}: discipline={} served={} replayed={} shed={} rejected={} \
         dropped={} quarantined={} jain={:.3}",
        report.discipline,
        report.served,
        report.replayed,
        report.shed,
        report.rejected,
        report.dropped,
        report.quarantined,
        report.jain_fairness
    );
    let mut failures: Vec<String> = Vec::new();
    if let Some(min) = flag_value(args, "--min-fairness") {
        let min: f64 = min.parse().map_err(|_| "bad --min-fairness")?;
        if report.jain_fairness < min {
            failures.push(format!(
                "jain fairness {:.3} below required {min}",
                report.jain_fairness
            ));
        }
    }
    if let Some(max) = flag_value(args, "--max-polite-p99") {
        let max: f64 = max.parse().map_err(|_| "bad --max-polite-p99")?;
        for c in report.clients.iter().filter(|c| c.client != "hog") {
            if c.p99_queue_wait > max {
                failures.push(format!(
                    "client {} p99 queue wait {:.1} exceeds {max}",
                    c.client, c.p99_queue_wait
                ));
            }
        }
    }
    if args.iter().any(|a| a == "--require-shed") && report.shed == 0 {
        failures.push("no requests were shed (backpressure never engaged)".to_string());
    }
    if let Some(n) = flag_value(args, "--require-served") {
        let n: u64 = n.parse().map_err(|_| "bad --require-served")?;
        if report.served + report.replayed < n {
            failures.push(format!(
                "served {} + replayed {} below required {n}",
                report.served, report.replayed
            ));
        }
    }
    if failures.is_empty() {
        println!("SLO check passed");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown command `{other}` (try `soe-loadgen help`)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
