//! `soe` — command-line front end to the SOE fairness reproduction.
//!
//! ```text
//! soe list                                   # known benchmarks
//! soe single gcc [--quick]                   # measure IPC_ST alone
//! soe pair gcc:eon [--f 0.5] [--quick]       # one SOE run
//! soe pair gcc:eon --timeslice 400           # time-slicing baseline
//! soe sweep gcc:eon [--quick]                # all four paper F levels
//! soe model 2.5,2.5 15000,1000 [--f 0.5]     # analytical two-thread model
//! soe record swim out.lit [--count 100000]   # capture a LIT trace file
//! soe replay a.lit b.lit [--f 0.5] [--quick] # run recorded traces in SOE
//! ```

use std::process::ExitCode;

use soe_repro::core::runner::run_pair_with_policy;
use soe_repro::core::runner::{run_pair, run_pair_timeslice, run_single, run_singles, RunConfig};
use soe_repro::core::{FairnessPolicy, PairRun, SingleRun};
use soe_repro::model::weighted::Weights;
use soe_repro::model::{FairnessLevel, SoeModel, SystemParams, ThreadModel};
use soe_repro::sim::{Machine, TraceSource};
use soe_repro::workloads::{analyze_trace, spec, LitFile, Pair, SyntheticTrace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("single") => cmd_single(&args[1..]),
        Some("pair") => cmd_pair(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("config") => cmd_config(),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `soe help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "soe — Switch-on-Event multithreading fairness (MICRO 2006 reproduction)\n\n\
         usage:\n\
         \x20 soe list\n\
         \x20 soe single <bench> [--quick]\n\
         \x20 soe pair <a:b> [--f <0..1>] [--weights <w0,w1>] [--timeslice <cycles>] [--quick]\n\
         \x20 soe sweep <a:b> [--quick]\n\
         \x20 soe model <ipc1,ipc2> <ipm1,ipm2> [--f <0..1>]\n\
         \x20 soe record <bench> <out.lit> [--count <n>] [--start <n>]\n\
         \x20 soe replay <a.lit> <b.lit> [--f <0..1>] [--quick]\n\
         \x20 soe config                              # dump the default machine as JSON\n\
         \x20 soe analyze <bench|file.lit> [--count <n>] [--start <n>]\n\n\
         Any run command also accepts --config <machine.json> to override the\n\
         simulated machine (edit the output of `soe config`)."
    );
}

// ----------------------------------------------------------------------
// argument helpers
// ----------------------------------------------------------------------

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_f(args: &[String]) -> Result<FairnessLevel, String> {
    match flag_value(args, "--f") {
        None => Ok(FairnessLevel::NONE),
        Some(v) => {
            let f: f64 = v.parse().map_err(|_| format!("bad --f value `{v}`"))?;
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("--f must be in [0, 1], got {f}"));
            }
            Ok(FairnessLevel::new(f))
        }
    }
}

fn config(args: &[String]) -> RunConfig {
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        RunConfig::quick()
    } else {
        RunConfig::paper()
    };
    if let Some(path) = flag_value(args, "--config") {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|json| serde_json::from_str(&json).map_err(|e| e.to_string()))
        {
            Ok(machine) => cfg.machine = machine,
            Err(e) => {
                eprintln!("warning: ignoring --config {path}: {e}");
            }
        }
    }
    cfg
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let usage = "usage: soe analyze <bench|file.lit> [--count n] [--start n]";
    let what = args.first().filter(|a| !a.starts_with("--")).ok_or(usage)?;
    let count: u64 = flag_value(args, "--count")
        .map(|v| v.parse().map_err(|_| "bad --count"))
        .transpose()?
        .unwrap_or(200_000);
    let start: u64 = flag_value(args, "--start")
        .map(|v| v.parse().map_err(|_| "bad --start"))
        .transpose()?
        .unwrap_or(0);
    let source: Box<dyn soe_repro::sim::TraceSource> = if what.ends_with(".lit") {
        Box::new(LitFile::load(what).map_err(|e| format!("loading {what}: {e}"))?)
    } else {
        let profile = spec::profile(what).ok_or_else(|| format!("unknown benchmark `{what}`"))?;
        Box::new(SyntheticTrace::new(profile, 0x10_0000_0000, 0))
    };
    let s = analyze_trace(&*source, start, count);
    println!(
        "trace {} (window {} from {start}):",
        source.name(),
        s.window
    );
    println!(
        "  mix: {:.1}% loads, {:.1}% stores, {:.1}% branches ({:.0}% taken), {:.1}% calls",
        s.load_frac * 100.0,
        s.store_frac * 100.0,
        s.branch_frac * 100.0,
        s.taken_frac * 100.0,
        s.call_frac * 100.0
    );
    println!("  mean producer distance: {:.2}", s.mean_dep_dist);
    println!(
        "  data footprint: {} lines ({} KiB) over {} pages",
        s.data_lines,
        s.data_lines / 16,
        s.data_pages
    );
    println!(
        "  code footprint: {} lines ({} KiB)",
        s.code_lines,
        s.code_lines / 16
    );
    println!(
        "  instructions per fresh data line: {:.0} (cold-cache IPM proxy)",
        s.instrs_per_fresh_line
    );
    Ok(())
}

fn cmd_config() -> Result<(), String> {
    let cfg = soe_repro::sim::MachineConfig::default();
    println!(
        "{}",
        serde_json::to_string_pretty(&cfg).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn parse_pair(spec_str: &str) -> Result<Pair, String> {
    let (a, b) = spec_str
        .split_once(':')
        .ok_or_else(|| format!("pair must look like `gcc:eon`, got `{spec_str}`"))?;
    let a = spec::NAMES
        .iter()
        .find(|n| **n == a)
        .ok_or_else(|| format!("unknown benchmark `{a}` (see `soe list`)"))?;
    let b = spec::NAMES
        .iter()
        .find(|n| **n == b)
        .ok_or_else(|| format!("unknown benchmark `{b}` (see `soe list`)"))?;
    Ok(Pair { a, b })
}

fn print_run(r: &PairRun) {
    println!("policy       {}", r.policy);
    println!("cycles       {}", r.cycles);
    println!(
        "throughput   {:.3} IPC  ({:+.1}% vs single-thread)",
        r.throughput,
        (r.soe_speedup - 1.0) * 100.0
    );
    println!("fairness     {:.3}", r.fairness);
    for t in &r.threads {
        println!(
            "  {:<8} IPC_SOE {:.3}  IPC_ST {:.3}  speedup {:.3}  ({} instrs)",
            t.name, t.ipc_soe, t.ipc_st, t.speedup, t.retired
        );
    }
    println!(
        "switches     {} total ({} event, {} forced; avg latency {:.1} cycles)",
        r.total_switches, r.event_switches, r.forced_switches, r.avg_switch_latency
    );
}

// ----------------------------------------------------------------------
// commands
// ----------------------------------------------------------------------

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<8} {:>12} {:>10}  character",
        "name", "target IPM", "block len"
    );
    for name in spec::NAMES {
        let p = spec::profile(name).expect("known");
        let kind = if p.target_ipm() < 1_000.0 {
            "memory-bound (starves others' victims)"
        } else if p.target_ipm() > 5_000.0 {
            "compute-bound (monopolizes an unfair core)"
        } else {
            "moderate"
        };
        println!(
            "{:<8} {:>12.0} {:>10}  {}",
            name,
            p.target_ipm(),
            p.block_len,
            kind
        );
    }
    Ok(())
}

fn cmd_single(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: soe single <bench> [--quick]")?;
    if spec::profile(name).is_none() {
        return Err(format!("unknown benchmark `{name}`"));
    }
    let cfg = config(args);
    let trace = SyntheticTrace::new(spec::profile(name).unwrap(), 0x10_0000_0000, 0);
    let s = run_single(Box::new(trace), &cfg);
    print_single(&s);
    Ok(())
}

fn print_single(s: &SingleRun) {
    println!(
        "{}: IPC_ST {:.3} over {} cycles ({} instrs; one L2 miss per {:.0} instrs)",
        s.name, s.ipc_st, s.cycles, s.retired, s.ipm
    );
}

fn cmd_pair(args: &[String]) -> Result<(), String> {
    let pair = parse_pair(args.first().ok_or("usage: soe pair <a:b> [--f F]")?)?;
    let cfg = config(args);
    let singles = run_singles(&pair, &cfg);
    for s in &singles {
        print_single(s);
    }
    let run = if let Some(q) = flag_value(args, "--timeslice") {
        let q: u64 = q.parse().map_err(|_| "bad --timeslice value")?;
        run_pair_timeslice(&pair, q, &singles, &cfg)
    } else if let Some(w) = flag_value(args, "--weights") {
        let weights: Vec<f64> = w
            .split(',')
            .map(|x| x.parse::<f64>().map_err(|_| format!("bad weight `{x}`")))
            .collect::<Result<_, _>>()?;
        if weights.len() != 2 {
            return Err("--weights needs exactly two values, e.g. 2,1".into());
        }
        let f = parse_f(args)?;
        let mut fc = cfg.fairness;
        fc.target = if f.is_enforced() {
            f
        } else {
            FairnessLevel::PERFECT
        };
        let policy = FairnessPolicy::new(2, fc).with_weights(Weights::new(weights));
        run_pair_with_policy(&pair, Box::new(policy), &singles, &cfg, Some(fc.target))
    } else {
        run_pair(&pair, parse_f(args)?, &singles, &cfg)
    };
    println!();
    print_run(&run);
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let pair = parse_pair(args.first().ok_or("usage: soe sweep <a:b>")?)?;
    let cfg = config(args);
    let singles = run_singles(&pair, &cfg);
    for s in &singles {
        print_single(s);
    }
    println!(
        "\n{:<8} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "F", "IPC_SOE", "fairness", "speedup[0]", "speedup[1]", "forced"
    );
    for f in FairnessLevel::paper_levels() {
        let r = run_pair(&pair, f, &singles, &cfg);
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.3} {:>12.3} {:>9}",
            f.label(),
            r.throughput,
            r.fairness,
            r.threads[0].speedup,
            r.threads[1].speedup,
            r.forced_switches
        );
    }
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    let usage = "usage: soe model <ipc1,ipc2,..> <ipm1,ipm2,..> [--f F]";
    let parse_list = |s: &String| -> Result<Vec<f64>, String> {
        s.split(',')
            .map(|x| x.parse::<f64>().map_err(|_| format!("bad number `{x}`")))
            .collect()
    };
    let ipcs = parse_list(args.first().ok_or(usage)?)?;
    let ipms = parse_list(args.get(1).ok_or(usage)?)?;
    if ipcs.len() != ipms.len() || ipcs.len() < 2 {
        return Err("need matching lists of at least two threads".into());
    }
    let threads: Vec<ThreadModel> = ipcs
        .iter()
        .zip(&ipms)
        .map(|(ipc, ipm)| ThreadModel::new(*ipc, *ipm))
        .collect();
    let model = SoeModel::new(threads, SystemParams::default());
    let f = parse_f(args)?;
    let a = model.analyze(f);
    println!(
        "target {}: throughput {:.3}, fairness {:.3}",
        f.label(),
        a.throughput,
        a.fairness
    );
    for (i, t) in a.per_thread.iter().enumerate() {
        println!(
            "  thread {i}: IPC_ST {:.3}  IPC_SOE {:.3}  speedup {:.3}  IPSw {:.0}",
            t.ipc_st, t.ipc_soe, t.speedup, t.ipsw
        );
    }
    if !model.miss_resolution_holds(f) {
        println!(
            "note: the round is too short to cover the memory latency; the model\n\
             over-estimates the missy threads here (see Eq 2's validity assumption)."
        );
    }
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let usage = "usage: soe record <bench> <out.lit> [--count n] [--start n]";
    let name = args.first().ok_or(usage)?;
    let out = args.get(1).ok_or(usage)?;
    let profile = spec::profile(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    let count: u64 = flag_value(args, "--count")
        .map(|v| v.parse().map_err(|_| "bad --count"))
        .transpose()?
        .unwrap_or(1_000_000);
    let start: u64 = flag_value(args, "--start")
        .map(|v| v.parse().map_err(|_| "bad --start"))
        .transpose()?
        .unwrap_or(0);
    let trace = SyntheticTrace::new(profile, 0x10_0000_0000, 0);
    let lit = LitFile::record(&trace, start, count);
    lit.save(out).map_err(|e| format!("saving {out}: {e}"))?;
    println!("recorded {count} micro-ops of {name} (from {start}) into {out}");
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let usage = "usage: soe replay <a.lit> <b.lit> [--f F] [--quick]";
    let a = args.first().ok_or(usage)?;
    let b = args.get(1).filter(|x| !x.starts_with("--")).ok_or(usage)?;
    let lit_a = LitFile::load(a).map_err(|e| format!("loading {a}: {e}"))?;
    let lit_b = LitFile::load(b).map_err(|e| format!("loading {b}: {e}"))?;
    let cfg = config(args);
    let f = parse_f(args)?;

    // Single-thread references for the replayed traces.
    let single = |lit: &LitFile| -> SingleRun { run_single(Box::new(lit.clone()), &cfg) };
    let singles = [single(&lit_a), single(&lit_b)];
    for s in &singles {
        print_single(s);
    }

    // The runner's pair entry points build traces from benchmark names;
    // recorded traces go through the generic policy runner instead.
    let policy = FairnessPolicy::new(2, {
        let mut fc = cfg.fairness;
        fc.target = f;
        fc
    });
    let mut m = Machine::new(
        cfg.machine,
        vec![
            Box::new(lit_a) as Box<dyn TraceSource>,
            Box::new(lit_b) as Box<dyn TraceSource>,
        ],
        Box::new(policy),
    );
    m.run_cycles(cfg.warmup_cycles);
    m.reset_stats();
    let start = m.now();
    m.run_cycles(cfg.measure_cycles);
    let cycles = m.now() - start;
    println!();
    println!("replayed under fairness({}):", f.label());
    for (i, s) in singles.iter().enumerate() {
        let retired = m.stats().threads[i].retired;
        let ipc = retired as f64 / cycles as f64;
        println!(
            "  {:<8} IPC_SOE {:.3}  speedup {:.3}  ({} instrs)",
            s.name,
            ipc,
            ipc / s.ipc_st,
            retired
        );
    }
    println!(
        "  {} switches over {} cycles",
        m.stats().total_switches,
        cycles
    );
    Ok(())
}
