//! `soe-serve` — a robust line-delimited JSON scenario service.
//!
//! Reads `soe-serve/v1` requests from stdin (one JSON object per line),
//! answers each on stdout, and exits after EOF (drain everything) or
//! SIGTERM/SIGINT (finish in-flight work, journal the rest for
//! `--resume`). See `EXPERIMENTS.md` for the protocol walkthrough and
//! `soe-loadgen` for a traffic generator.
//!
//! ```text
//! soe-loadgen gen --polite 3 --per-client 4 | soe-serve --journal j.log --slo slo.json
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use soe_repro::core::serve::{serve, QueueDiscipline, ServeConfig};
use soe_repro::core::{atomic_write, FaultPlan};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

// The library forbids unsafe code; binaries install the two-line signal
// handler themselves. Writing a static atomic from a signal handler is
// the one async-signal-safe thing a handler may do.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn usage() -> &'static str {
    "soe-serve — scenario evaluation service (protocol soe-serve/v1)\n\n\
     usage: soe-serve [options] < requests.jsonl > responses.jsonl\n\n\
     options:\n\
     \x20 --workers N        concurrent simulations (default 2)\n\
     \x20 --capacity N       per-client queue bound (default 8)\n\
     \x20 --quantum COST     DRR quantum in thread-cycles (default 250000)\n\
     \x20 --fifo             unbounded-FIFO baseline (starvation demo; no shedding)\n\
     \x20 --timeout SECS     per-attempt watchdog (default 60; 0 disables)\n\
     \x20 --retries N        retries before quarantine (default 2)\n\
     \x20 --journal PATH     journal accepted requests + responses here\n\
     \x20 --resume           replay the journal instead of truncating it\n\
     \x20 --memo DIR         memoize results in this directory\n\
     \x20 --slo PATH         write the soe-serve-slo/1 report here\n\
     \x20 --manifest PATH    write the failure manifest (quarantines/drops) here\n\
     \x20 --quiet            no progress lines on stderr\n\n\
     environment:\n\
     \x20 SOE_FAULTS         deterministic fault injection, e.g.\n\
     \x20                    panic:0.1,io:0.2,drop:0.1,slow:0.2,slow_ms:50@7\n\n\
     SIGTERM/SIGINT stop accepting, finish in-flight requests, and leave\n\
     the rest journaled; restart with --resume to serve them."
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_args(args: &[String]) -> Result<(ServeConfig, Option<String>, Option<String>), String> {
    let mut cfg = ServeConfig::new();
    cfg.progress = !args.iter().any(|a| a == "--quiet");
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--capacity") {
        cfg.capacity = v.parse().map_err(|_| format!("bad --capacity `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--quantum") {
        cfg.quantum = v.parse().map_err(|_| format!("bad --quantum `{v}`"))?;
    }
    if args.iter().any(|a| a == "--fifo") {
        cfg.discipline = QueueDiscipline::UnboundedFifo;
    }
    if let Some(v) = flag_value(args, "--timeout") {
        let secs: u64 = v.parse().map_err(|_| format!("bad --timeout `{v}`"))?;
        cfg.timeout = (secs > 0).then(|| Duration::from_secs(secs));
    }
    if let Some(v) = flag_value(args, "--retries") {
        cfg.retries = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
    }
    cfg.journal = flag_value(args, "--journal").map(Into::into);
    cfg.resume = args.iter().any(|a| a == "--resume");
    cfg.memo_dir = flag_value(args, "--memo").map(Into::into);
    cfg.faults = FaultPlan::from_env()?;
    cfg.check()?;
    let slo = flag_value(args, "--slo");
    let manifest = flag_value(args, "--manifest");
    Ok((cfg, slo, manifest))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let (cfg, slo_path, manifest_path) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let outcome = match serve(std::io::stdin(), &mut out, &cfg, Some(&SHUTDOWN)) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = slo_path {
        let json = serde_json::to_string_pretty(&outcome.report).unwrap_or_default();
        if let Err(e) = atomic_write(path.as_ref(), format!("{json}\n").as_bytes()) {
            eprintln!("error: writing SLO report {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = manifest_path {
        let json = serde_json::to_string_pretty(&outcome.manifest).unwrap_or_default();
        if let Err(e) = atomic_write(path.as_ref(), format!("{json}\n").as_bytes()) {
            eprintln!("error: writing failure manifest {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cfg.progress {
        eprintln!(
            "[soe-serve] served {} (+{} replayed), shed {}, rejected {}, \
             dropped {}, quarantined {}, pending {}; jain {:.3}",
            outcome.report.served,
            outcome.report.replayed,
            outcome.report.shed,
            outcome.report.rejected,
            outcome.report.dropped,
            outcome.report.quarantined,
            outcome.pending,
            outcome.report.jain_fairness,
        );
    }
    ExitCode::SUCCESS
}
