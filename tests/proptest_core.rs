//! Property-based tests of the fairness mechanism's components.

use proptest::prelude::*;
use soe_core::{quotas_from_estimates, DeficitCounter, Estimator, HwCounters};
use soe_model::{CounterSample, FairnessLevel, ThreadEstimate};
use soe_sim::SwitchReason;

fn estimate_strategy() -> impl Strategy<Value = ThreadEstimate> {
    (100.0f64..100_000.0, 0.3f64..4.0).prop_map(|(ipm, ipc_no_miss)| {
        let cpm = ipm / ipc_no_miss;
        ThreadEstimate {
            ipm,
            cpm,
            ipc_st: ipm / (cpm + 300.0),
        }
    })
}

proptest! {
    /// Eq 9 quotas from estimates: `None` or positive and below the IPM.
    #[test]
    fn runtime_quotas_are_sane(
        estimates in prop::collection::vec(estimate_strategy(), 2..5),
        f in 0.0f64..=1.0,
    ) {
        let quotas = quotas_from_estimates(&estimates, 300.0, FairnessLevel::new(f));
        prop_assert_eq!(quotas.len(), estimates.len());
        for (q, e) in quotas.iter().zip(&estimates) {
            if let Some(q) = q {
                prop_assert!(*q > 0.0);
                prop_assert!(*q <= e.ipm + 1e-6);
            }
        }
        if f == 0.0 {
            prop_assert!(quotas.iter().all(|q| q.is_none()));
        }
    }

    /// At F = 1, the quotas equalize estimated speedup proxies
    /// (`quota / ipc_st` equal across constrained threads, and
    /// unconstrained threads sit at the common level or below).
    #[test]
    fn perfect_fairness_quotas_equalize_speedups(
        estimates in prop::collection::vec(estimate_strategy(), 2..5),
    ) {
        let quotas = quotas_from_estimates(&estimates, 300.0, FairnessLevel::PERFECT);
        let proxies: Vec<f64> = quotas
            .iter()
            .zip(&estimates)
            .map(|(q, e)| q.unwrap_or(e.ipm) / e.ipc_st)
            .collect();
        let lo = proxies.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = proxies.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(hi / lo < 1.01, "speedup proxies spread: {proxies:?}");
    }

    /// Deficit counters: over any interleaving of miss-ended and
    /// quota-ended rounds, total retirements never exceed total credit
    /// (quota × rounds) plus the cap.
    #[test]
    fn deficit_never_overdraws(
        quota in 2.0f64..500.0,
        cap in 1.0f64..8.0,
        rounds in prop::collection::vec(0u64..400, 1..60),
    ) {
        let mut d = DeficitCounter::new(cap);
        d.set_quota(Some(quota));
        let mut retired_total = 0u64;
        for miss_after in &rounds {
            d.on_switch_in();
            for _ in 0..*miss_after {
                retired_total += 1;
                if d.on_retire() {
                    break; // forced switch
                }
            }
        }
        let credit = quota * rounds.len() as f64 + quota * cap;
        prop_assert!(
            (retired_total as f64) <= credit + rounds.len() as f64,
            "retired {retired_total} vs credit {credit}"
        );
    }

    /// Hardware counters stay mutually consistent across arbitrary
    /// schedules: cycles never exceed the wall-clock span, misses never
    /// exceed switch-outs.
    #[test]
    fn hw_counters_are_consistent(
        rounds in prop::collection::vec((1u64..1_000, 0u64..500, prop::bool::ANY), 1..50),
    ) {
        let mut c = HwCounters::new();
        let mut now = 0u64;
        let mut switch_outs = 0u64;
        for (cycles, instrs, miss) in &rounds {
            c.on_switch_in();
            let start = now;
            for k in 0..*instrs {
                c.after_retire(start + k * cycles / (*instrs).max(1));
            }
            now = start + cycles;
            c.on_switch_out(
                now,
                if *miss { SwitchReason::MissEvent } else { SwitchReason::Forced },
            );
            switch_outs += 1;
        }
        let s = c.sample();
        prop_assert!(s.cycles <= now);
        prop_assert!(s.misses <= switch_outs);
        prop_assert_eq!(s.instrs, rounds.iter().map(|(_, i, _)| i).sum::<u64>());
    }

    /// The estimator's window differentiation: estimates reflect the
    /// window deltas exactly, for any monotone counter stream.
    #[test]
    fn estimator_windows_are_exact(
        deltas in prop::collection::vec((1u64..100_000, 1u64..100_000, 0u64..100), 1..20),
    ) {
        let mut e = Estimator::new(1, 1, 300.0, false);
        let mut cum = CounterSample::default();
        let mut now = 0u64;
        for (instrs, cycles, misses) in &deltas {
            cum.instrs += instrs;
            cum.cycles += cycles;
            cum.misses += misses;
            now += 1_000;
            e.recalc(now, &[cum], FairnessLevel::NONE);
            let est = e.estimates()[0].expect("window had instructions");
            let m = (*misses).max(1) as f64;
            prop_assert!((est.ipm - *instrs as f64 / m).abs() < 1e-9);
            prop_assert!((est.cpm - *cycles as f64 / m).abs() < 1e-9);
        }
    }
}
