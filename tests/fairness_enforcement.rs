//! End-to-end: the paper's central claims, exercised through the full
//! stack (workload generator → simulator → fairness mechanism → runner).

use soe_core::runner::{run_pair, run_singles, RunConfig};
use soe_model::FairnessLevel;
use soe_workloads::Pair;

fn cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 400_000;
    cfg.measure_cycles = 1_200_000;
    cfg
}

/// swim:eon — a streaming thread against a compute thread: the most
/// unfair regime, where the mechanism matters most.
#[test]
fn enforcement_recovers_a_starving_thread() {
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let f0 = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);
    let f1 = run_pair(&pair, FairnessLevel::PERFECT, &singles, &cfg);

    // Without enforcement, the streamer runs far below its solo speed
    // while the compute thread is barely touched.
    assert!(
        f0.threads[0].speedup < 0.45,
        "swim should be heavily slowed at F=0: {:?}",
        f0.threads[0]
    );
    assert!(
        f0.threads[1].speedup > 2.0 * f0.threads[0].speedup,
        "eon should dominate at F=0: {} vs {}",
        f0.threads[1].speedup,
        f0.threads[0].speedup
    );
    // Enforcement closes the gap substantially.
    assert!(
        f1.fairness > 2.0 * f0.fairness,
        "F=1 fairness {} must be far above F=0 fairness {}",
        f1.fairness,
        f0.fairness
    );
    assert!(f1.threads[0].speedup > f0.threads[0].speedup);
}

/// Fairness must improve as F increases, and forced switches must be the
/// instrument: none at F=0, more at stricter targets.
#[test]
fn fairness_and_forced_switches_scale_with_target() {
    let pair = Pair { a: "art", b: "eon" };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let runs: Vec<_> = FairnessLevel::paper_levels()
        .iter()
        .map(|f| run_pair(&pair, *f, &singles, &cfg))
        .collect();

    assert_eq!(runs[0].forced_switches, 0, "F=0 forces nothing");
    assert!(
        runs[3].forced_switches > runs[1].forced_switches,
        "F=1 must force more switches than F=1/4: {} vs {}",
        runs[3].forced_switches,
        runs[1].forced_switches
    );
    assert!(
        runs[3].fairness > runs[0].fairness,
        "F=1 ({}) must beat F=0 ({})",
        runs[3].fairness,
        runs[0].fairness
    );
    // Throughput ordering: enforcement costs throughput on this
    // strongly-unfair, equal-ish-IPC_no_miss pair.
    assert!(
        runs[3].throughput <= runs[0].throughput * 1.02,
        "F=1 should not out-run F=0 materially: {} vs {}",
        runs[3].throughput,
        runs[0].throughput
    );
}

/// A same-benchmark pair is naturally fair; enforcement must neither be
/// needed nor harmful.
#[test]
fn same_benchmark_pair_is_fair_and_enforcement_is_cheap() {
    let pair = Pair {
        a: "applu",
        b: "applu",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let f0 = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);
    let fq = run_pair(&pair, FairnessLevel::QUARTER, &singles, &cfg);
    assert!(
        f0.fairness > 0.6,
        "identical threads should be roughly fair at F=0: {}",
        f0.fairness
    );
    // Negligible cost when no correction is needed (paper: "has
    // negligible effect on the execution").
    assert!(
        fq.throughput > f0.throughput * 0.93,
        "F=1/4 on a fair pair must be nearly free: {} vs {}",
        fq.throughput,
        f0.throughput
    );
}

/// SOE must actually deliver a throughput gain over single-thread
/// time-multiplexing for miss-heavy pairs — the reason SOE exists.
#[test]
fn soe_beats_single_thread_on_missy_pairs() {
    let pair = Pair {
        a: "mcf",
        b: "swim",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let f0 = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);
    assert!(
        f0.soe_speedup > 1.10,
        "two streaming threads should overlap stalls: speedup {}",
        f0.soe_speedup
    );
}

/// The measured switch latency must land near the paper's ~25 cycles.
#[test]
fn switch_latency_matches_paper() {
    let pair = Pair {
        a: "swim",
        b: "applu",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let run = run_pair(&pair, FairnessLevel::HALF, &singles, &cfg);
    assert!(
        (15.0..=40.0).contains(&run.avg_switch_latency),
        "avg switch latency {}",
        run.avg_switch_latency
    );
}
