//! Golden regression tests: exact statistics pinned for fixed
//! configurations. Any intentional change to the simulator, workload
//! generator or mechanism must update these values consciously — they
//! exist to catch *unintentional* behaviour drift.
//!
//! To refresh after a deliberate change, run with
//! `GOLDEN_PRINT=1 cargo test -p soe-repro --test golden -- --nocapture`
//! and paste the printed values.

use soe_core::FairnessPolicy;
use soe_model::FairnessLevel;
use soe_sim::{Machine, MachineConfig, NeverSwitch, SwitchOnEvent};
use soe_workloads::Pair;

struct Golden {
    name: &'static str,
    cycles: u64,
    retired: [u64; 2],
    switches: u64,
}

fn check(g: &Golden, m: &Machine) {
    let s = m.stats();
    let got = Golden {
        name: g.name,
        cycles: s.cycles,
        retired: [
            s.threads[0].retired,
            s.threads.get(1).map_or(0, |t| t.retired),
        ],
        switches: s.total_switches,
    };
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "Golden {{ name: \"{}\", cycles: {}, retired: [{}, {}], switches: {} }}",
            got.name, got.cycles, got.retired[0], got.retired[1], got.switches
        );
        return;
    }
    assert_eq!(got.cycles, g.cycles, "{}: cycles drifted", g.name);
    assert_eq!(got.retired, g.retired, "{}: retirement drifted", g.name);
    assert_eq!(got.switches, g.switches, "{}: switches drifted", g.name);
}

#[test]
fn golden_single_thread_gcc() {
    let pair = Pair { a: "gcc", b: "gcc" };
    let (trace, _) = pair.traces();
    let mut m = Machine::new(
        MachineConfig::default(),
        vec![Box::new(trace)],
        Box::new(NeverSwitch::new()),
    );
    m.run_cycles(200_000);
    check(
        &Golden {
            name: "single-gcc",
            cycles: 200_000,
            retired: [63_223, 0],
            switches: 0,
        },
        &m,
    );
}

#[test]
fn golden_soe_pair_swim_eon() {
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let mut m = Machine::new(
        MachineConfig::default(),
        pair.boxed_traces(),
        Box::new(SwitchOnEvent::new()),
    );
    m.run_cycles(300_000);
    check(
        &Golden {
            name: "soe-swim-eon",
            cycles: 300_000,
            retired: [51_149, 93_640],
            switches: 5_609,
        },
        &m,
    );
}

#[test]
fn golden_fairness_pair_swim_eon() {
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let mut m = Machine::new(
        MachineConfig::default(),
        pair.boxed_traces(),
        Box::new(FairnessPolicy::paper(2, FairnessLevel::HALF)),
    );
    m.run_cycles(600_000);
    check(
        &Golden {
            name: "fairness-swim-eon",
            cycles: 600_000,
            retired: [106_158, 459_965],
            switches: 7_535,
        },
        &m,
    );
}
