//! Fast-forward invariance under the full fairness mechanism.
//!
//! The cycle loop may jump over quiescent stretches instead of ticking
//! through them, but a jump is only legal if it is invisible: every
//! statistic, every fairness decision and every trace event must land on
//! the same cycle as in a tick-by-tick run. The unit test in
//! `crates/sim/src/core.rs` (`fast_forward_is_invisible_*`) covers the
//! bare machine; this suite closes the loop over the *clients* the sim
//! crate cannot see — the paper's `FairnessPolicy` with its scheduled
//! Δ-window recalculations and cycle quotas, and the full pair runner.
//!
//! Scheduled policy decision points are machine events, so jumps stop
//! at them and every run is cycle-exact regardless of `fast_forward`.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use soe_core::runner::{try_run_pair_traced, try_run_single, RunConfig};
use soe_core::FairnessPolicy;
use soe_model::FairnessLevel;
use soe_sim::obs::{SharedTracer, TraceConfig, Tracer};
use soe_sim::{Machine, MachineConfig};
use soe_workloads::pairs::paper_pairs;
use soe_workloads::{InstrMix, MemoryBehavior, Profile, SyntheticTrace};

/// Short-but-real sizing with the policy cadence scaled down to match,
/// so a run still sees several Δ recalculations and quota expiries.
fn cfg(measure_cycles: u64) -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 30_000;
    cfg.measure_cycles = measure_cycles;
    cfg.fairness.delta = 12_000;
    cfg.fairness.max_cycles_quota = 5_000;
    cfg.fairness.min_quota_cycles = 300;
    cfg.trace = Some(TraceConfig::default());
    cfg
}

/// A compact version of the random workload generator used by
/// `proptest_sim`: enough variety to exercise misses, dependency
/// stalls and branchy code without wedging the machine.
fn profile_strategy() -> impl Strategy<Value = Profile> {
    (
        0u64..u64::MAX,
        0.05f64..0.4, // load fraction
        1.0f64..8.0,  // mean dependency distance
        0.6f64..1.0,  // branch predictability
        0.0f64..0.02, // cold load probability
    )
        .prop_map(|(seed, load, dep, pred, cold)| Profile {
            name: "ff-prop".into(),
            seed,
            mix: InstrMix {
                load,
                store: 0.08,
                mul: 0.02,
                div: 0.001,
            },
            mean_dep_dist: dep,
            branch_predictability: pred,
            block_len: 12,
            code_lines: 96,
            call_block_frac: 0.1,
            mem: MemoryBehavior {
                hot_lines: 64,
                warm_lines: 512,
                cold_load_prob: cold,
                warm_load_prob: 0.05,
                cold_store_prob: cold / 4.0,
            },
            phases: Vec::new(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Over random paper pairs, fairness targets and sizings: running
    /// the traced pair runner with fast-forward on and off yields an
    /// identical [`PairRun`] and an identical trace stream.
    #[test]
    fn fast_forward_invisible_for_fairness_pairs(
        pair_idx in 0usize..16,
        f_idx in 0usize..4,
        measure in 100_000u64..180_000,
    ) {
        let pairs = paper_pairs();
        let pair = &pairs[pair_idx];
        let f = FairnessLevel::paper_levels()[f_idx];
        let base = cfg(measure);

        // One singles array shared by both runs: any difference in the
        // assembled PairRun must come from the pair simulation itself.
        let (a, b) = pair.traces();
        let singles = [
            try_run_single(Box::new(a), &base).expect("single run failed"),
            try_run_single(Box::new(b), &base).expect("single run failed"),
        ];
        let run = |ff: bool| {
            let mut c = base;
            c.machine.fast_forward = ff;
            try_run_pair_traced(pair, f, &singles, &c).expect("pair run failed")
        };
        let jump = run(true);
        let tick = run(false);
        prop_assert!(!tick.trace.events.is_empty(), "no events traced");
        prop_assert_eq!(tick.run, jump.run);
        prop_assert_eq!(tick.trace, jump.trace);
    }

    /// Over random synthetic workloads and seeds: a machine driven
    /// directly by the [`FairnessPolicy`] (tracer attached) produces
    /// identical statistics and an identical trace stream with
    /// fast-forward on and off.
    #[test]
    fn fast_forward_invisible_for_random_seeds(
        pa in profile_strategy(),
        pb in profile_strategy(),
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
        f_idx in 0usize..4,
    ) {
        let f = FairnessLevel::paper_levels()[f_idx];
        let mut fcfg = RunConfig::quick().fairness;
        fcfg.target = f;
        fcfg.delta = 8_000;
        fcfg.max_cycles_quota = 3_000;
        fcfg.min_quota_cycles = 300;

        let mk = |ff: bool| {
            let mut mc = MachineConfig::test_config();
            mc.fast_forward = ff;
            let tracer: SharedTracer =
                Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
            let policy = FairnessPolicy::new(2, fcfg).with_tracer(Rc::clone(&tracer));
            let a = SyntheticTrace::new(pa.clone(), 0x10_0000_0000, seed_a);
            let b = SyntheticTrace::new(pb.clone(), 0x20_0000_0000, seed_b);
            let mut m = Machine::new(mc, vec![Box::new(a), Box::new(b)], Box::new(policy));
            m.attach_tracer(Rc::clone(&tracer));
            m.run_cycles(60_000);
            let trace = tracer.borrow_mut().take();
            (m.stats().clone(), trace)
        };
        let (stats_jump, trace_jump) = mk(true);
        let (stats_tick, trace_tick) = mk(false);
        prop_assert_eq!(stats_tick, stats_jump);
        prop_assert_eq!(trace_tick, trace_jump);
    }
}
