//! Property-based corruption testing of the run journal: whatever a
//! crash or disk does to the file — truncation at any byte, arbitrary
//! bit flips — recovery must yield a correct subset of the records,
//! compact away the damage, and leave the journal appendable.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use soe_core::{atomic_write, Journal};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "soe-proptest-journal-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("journal.log")
}

/// Builds a journal of `n` records whose payloads are a pure function
/// of their key, so any recovered record can be verified exactly.
fn build(path: &std::path::Path, n: usize) -> Vec<(String, String)> {
    let mut j = Journal::open(path).unwrap();
    let records: Vec<(String, String)> = (0..n)
        .map(|i| {
            (
                format!("run/{i}"),
                format!("{{\"index\":{i},\"ipc\":0.{i}5}}"),
            )
        })
        .collect();
    for (k, v) in &records {
        j.append(k, v).unwrap();
    }
    records
}

proptest! {
    /// Truncating the file at ANY byte (a torn append) loses at most
    /// the records at and after the cut — never corrupts a survivor.
    #[test]
    fn truncation_recovers_every_intact_prefix_record(
        n in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        let path = fresh_path();
        let records = build(&path, n);
        let raw = std::fs::read(&path).unwrap();
        let cut = (raw.len() as f64 * cut_frac) as usize;
        atomic_write(&path, &raw[..cut]).unwrap();

        let j = Journal::open(&path).unwrap();
        // Recovered records are exactly the fully-written prefix.
        for (i, (k, v)) in records.iter().enumerate() {
            match j.get(k) {
                Some(got) => prop_assert_eq!(got, v.as_str()),
                None => {
                    // Everything after the first loss must be lost too
                    // (truncation only tears the tail).
                    for (k2, _) in &records[i..] {
                        prop_assert!(j.get(k2).is_none());
                    }
                    break;
                }
            }
        }
        prop_assert!(j.len() <= n);
        prop_assert!(j.recovery().dropped <= 1, "a cut tears at most one line");
    }

    /// Arbitrary bit flips: every surviving record checksums, so its
    /// payload is exactly what was written; damaged records vanish; the
    /// file is compacted and reopening drops nothing further; and the
    /// journal accepts new appends afterwards.
    #[test]
    fn bit_flips_never_surface_corrupt_payloads(
        n in 1usize..12,
        flips in prop::collection::vec((0usize..4096, 0u32..8), 1..6),
    ) {
        let path = fresh_path();
        let records = build(&path, n);
        let mut raw = std::fs::read(&path).unwrap();
        for (pos, bit) in &flips {
            let pos = pos % raw.len();
            raw[pos] ^= 1u8 << bit;
        }
        atomic_write(&path, &raw).unwrap();

        let mut j = Journal::open(&path).unwrap();
        prop_assert!(j.len() <= n);
        for (k, v) in &records {
            if let Some(got) = j.get(k) {
                // A surviving record must be byte-exact.
                prop_assert_eq!(got, v.as_str());
            }
        }
        // Still appendable, and the resume path sees the new record.
        j.append("post/recovery", "{\"ok\":true}").unwrap();
        drop(j);
        let j2 = Journal::open(&path).unwrap();
        // Recovery must have compacted the damage away.
        prop_assert_eq!(j2.recovery().dropped, 0);
        prop_assert_eq!(j2.get("post/recovery"), Some("{\"ok\":true}"));
    }
}
