//! Property-based tests of the simulator and workload generator: for any
//! generated workload profile and machine, the machine makes progress,
//! never wedges, and its counters stay mutually consistent.

use proptest::prelude::*;
use soe_sim::{Machine, MachineConfig, NeverSwitch, SwitchOnEvent, TraceSource};
use soe_workloads::{InstrMix, MemoryBehavior, Profile, SyntheticTrace};

fn profile_strategy() -> impl Strategy<Value = Profile> {
    (
        0u64..u64::MAX,
        0.05f64..0.4, // load
        0.0f64..0.2,  // store
        1.0f64..10.0, // dep dist
        0.5f64..1.0,  // predictability
        5u64..24,     // block len (>= 5: calling blocks are possible)
        8u64..512,    // code lines
        0.0f64..0.02, // cold load prob
        0.0f64..0.4,  // call block fraction
    )
        .prop_map(
            |(seed, load, store, dep, pred, block, code, cold, calls)| Profile {
                name: "prop".into(),
                seed,
                mix: InstrMix {
                    load,
                    store,
                    mul: 0.02,
                    div: 0.001,
                },
                mean_dep_dist: dep,
                branch_predictability: pred,
                block_len: block,
                code_lines: code,
                call_block_frac: calls,
                mem: MemoryBehavior {
                    hot_lines: 64,
                    warm_lines: 512,
                    cold_load_prob: cold,
                    warm_load_prob: 0.05,
                    cold_store_prob: cold / 4.0,
                },
                phases: Vec::new(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated single-thread workload runs without wedging and
    /// retires a plausible number of instructions.
    #[test]
    fn single_thread_always_progresses(profile in profile_strategy()) {
        let trace = SyntheticTrace::new(profile, 0x10_0000_0000, 0);
        let mut m = Machine::new(
            MachineConfig::test_config(),
            vec![Box::new(trace)],
            Box::new(NeverSwitch::new()),
        );
        m.run_cycles(60_000);
        let s = m.stats();
        prop_assert!(s.total_retired() > 0, "no retirement at all");
        let width = MachineConfig::test_config().pipeline.retire_width as u64;
        prop_assert!(s.total_retired() <= s.cycles * width);
    }

    /// Any generated two-thread SOE workload keeps both counters
    /// consistent: switches balance, and per-thread running cycles never
    /// exceed wall-clock.
    #[test]
    fn soe_pair_counters_are_consistent(
        pa in profile_strategy(),
        pb in profile_strategy(),
    ) {
        let a = SyntheticTrace::new(pa, 0x10_0000_0000, 0);
        let b = SyntheticTrace::new(pb, 0x20_0000_0000, 0);
        let mut m = Machine::new(
            MachineConfig::test_config(),
            vec![Box::new(a), Box::new(b)],
            Box::new(SwitchOnEvent::new()),
        );
        m.run_cycles(80_000);
        let s = m.stats();
        let per_thread: u64 = s.threads.iter().map(|t| t.switches()).sum();
        prop_assert_eq!(per_thread, s.total_switches);
        let running: u64 = s.threads.iter().map(|t| t.running_cycles).sum();
        prop_assert!(running <= s.cycles, "running {} > wall {}", running, s.cycles);
        for t in &s.threads {
            // Both conditional branches and returns can mispredict.
            prop_assert!(t.mispredicts <= t.branches + t.returns);
            // Paired within a block; the run may end mid-block.
            prop_assert!(t.calls.abs_diff(t.returns) <= 1, "calls/returns unpaired");
        }
        prop_assert!(s.measured_switches <= s.total_switches);
    }

    /// The trace generator's purity: re-reading any position yields the
    /// same micro-op, and memory ops always carry addresses.
    #[test]
    fn generated_uops_are_pure_and_well_formed(
        profile in profile_strategy(),
        idx in 0u64..5_000_000,
    ) {
        let t = SyntheticTrace::new(profile, 0x10_0000_0000, 0);
        let u1 = t.uop_at(idx);
        let u2 = t.uop_at(idx);
        prop_assert_eq!(u1, u2);
        if u1.kind.is_mem() {
            prop_assert!(u1.mem_addr.is_some());
        }
    }
}
