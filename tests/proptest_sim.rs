//! Property-based tests of the simulator and workload generator: for any
//! generated workload profile and machine, the machine makes progress,
//! never wedges, and its counters stay mutually consistent.

use proptest::prelude::*;
use soe_core::runner::{try_run_traces_with_policy, RunConfig};
use soe_core::{PolicyFactory, PolicySpec, SingleRun};
use soe_model::FairnessLevel;
use soe_sim::{Machine, MachineConfig, NeverSwitch, SwitchOnEvent, TraceSource};
use soe_workloads::{InstrMix, MemoryBehavior, Profile, SyntheticTrace};

fn profile_strategy() -> impl Strategy<Value = Profile> {
    (
        0u64..u64::MAX,
        0.05f64..0.4, // load
        0.0f64..0.2,  // store
        1.0f64..10.0, // dep dist
        0.5f64..1.0,  // predictability
        5u64..24,     // block len (>= 5: calling blocks are possible)
        8u64..512,    // code lines
        0.0f64..0.02, // cold load prob
        0.0f64..0.4,  // call block fraction
    )
        .prop_map(
            |(seed, load, store, dep, pred, block, code, cold, calls)| Profile {
                name: "prop".into(),
                seed,
                mix: InstrMix {
                    load,
                    store,
                    mul: 0.02,
                    div: 0.001,
                },
                mean_dep_dist: dep,
                branch_predictability: pred,
                block_len: block,
                code_lines: code,
                call_block_frac: calls,
                mem: MemoryBehavior {
                    hot_lines: 64,
                    warm_lines: 512,
                    cold_load_prob: cold,
                    warm_load_prob: 0.05,
                    cold_store_prob: cold / 4.0,
                },
                phases: Vec::new(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated single-thread workload runs without wedging and
    /// retires a plausible number of instructions.
    #[test]
    fn single_thread_always_progresses(profile in profile_strategy()) {
        let trace = SyntheticTrace::new(profile, 0x10_0000_0000, 0);
        let mut m = Machine::new(
            MachineConfig::test_config(),
            vec![Box::new(trace)],
            Box::new(NeverSwitch::new()),
        );
        m.run_cycles(60_000);
        let s = m.stats();
        prop_assert!(s.total_retired() > 0, "no retirement at all");
        let width = MachineConfig::test_config().pipeline.retire_width as u64;
        prop_assert!(s.total_retired() <= s.cycles * width);
    }

    /// Any generated two-thread SOE workload keeps both counters
    /// consistent: switches balance, and per-thread running cycles never
    /// exceed wall-clock.
    #[test]
    fn soe_pair_counters_are_consistent(
        pa in profile_strategy(),
        pb in profile_strategy(),
    ) {
        let a = SyntheticTrace::new(pa, 0x10_0000_0000, 0);
        let b = SyntheticTrace::new(pb, 0x20_0000_0000, 0);
        let mut m = Machine::new(
            MachineConfig::test_config(),
            vec![Box::new(a), Box::new(b)],
            Box::new(SwitchOnEvent::new()),
        );
        m.run_cycles(80_000);
        let s = m.stats();
        let per_thread: u64 = s.threads.iter().map(|t| t.switches()).sum();
        prop_assert_eq!(per_thread, s.total_switches);
        let running: u64 = s.threads.iter().map(|t| t.running_cycles).sum();
        prop_assert!(running <= s.cycles, "running {} > wall {}", running, s.cycles);
        for t in &s.threads {
            // Both conditional branches and returns can mispredict.
            prop_assert!(t.mispredicts <= t.branches + t.returns);
            // Paired within a block; the run may end mid-block.
            prop_assert!(t.calls.abs_diff(t.returns) <= 1, "calls/returns unpaired");
        }
        prop_assert!(s.measured_switches <= s.total_switches);
    }

    /// The trace generator's purity: re-reading any position yields the
    /// same micro-op, and memory ops always carry addresses.
    #[test]
    fn generated_uops_are_pure_and_well_formed(
        profile in profile_strategy(),
        idx in 0u64..5_000_000,
    ) {
        let t = SyntheticTrace::new(profile, 0x10_0000_0000, 0);
        let u1 = t.uop_at(idx);
        let u2 = t.uop_at(idx);
        prop_assert_eq!(u1, u2);
        if u1.kind.is_mem() {
            prop_assert!(u1.mem_addr.is_some());
        }
    }
}

/// Sizing for the cross-policy property runs: small Δ windows so even a
/// short measurement sees enforcement, quota scaled to fit every thread.
fn zoo_config(n: usize) -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.machine = MachineConfig::test_config();
    cfg.warmup_cycles = 10_000 * n as u64;
    cfg.measure_cycles = 60_000;
    cfg.stall_window = None;
    cfg.fairness.delta = 10_000;
    cfg.fairness.max_cycles_quota = 3_000.min(cfg.fairness.delta / (n as u64 + 1));
    cfg.fairness.min_quota_cycles = 300;
    cfg.fairness.record_history = false;
    cfg
}

/// Synthetic single-thread references: the properties only need
/// consistent denominators, not measured ones.
fn fake_singles(n: usize) -> Vec<SingleRun> {
    (0..n)
        .map(|i| SingleRun {
            name: format!("prop{i}"),
            retired: 500_000,
            cycles: 500_000,
            ipc_st: 1.0,
            l2_misses: 5_000,
            ipm: 100.0,
        })
        .collect()
}

/// One full runner pass for a generated roster under a registry policy.
fn run_zoo(policy: &str, profiles: &[Profile], f: FairnessLevel) -> soe_core::PairRun {
    let n = profiles.len();
    let cfg = zoo_config(n);
    let factory = PolicyFactory::builtin();
    let mut spec_cfg = cfg.fairness;
    spec_cfg.target = f;
    let built = factory
        .build(policy, &PolicySpec::new(n, f, spec_cfg))
        .unwrap_or_else(|e| panic!("{policy} must build at {n} threads: {e}"));
    let traces: Vec<Box<dyn TraceSource>> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Box::new(SyntheticTrace::new(
                p.clone(),
                (i as u64 + 1) * 0x10_0000_0000,
                0,
            )) as Box<dyn TraceSource>
        })
        .collect();
    try_run_traces_with_policy(
        format!("prop/{policy}/{n}way"),
        traces,
        built,
        Some(f),
        &fake_singles(n),
        &cfg,
    )
    .unwrap_or_else(|e| panic!("{policy}/{n}: runner failed: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any registered policy over any generated roster (2/4/8 threads)
    /// completes without panicking, keeps its counters conserved, and is
    /// deterministic: two identical runs serialize to identical bytes.
    #[test]
    fn every_policy_runs_any_roster_deterministically(
        base in profile_strategy(),
        pidx in 0usize..5,
        sidx in 0usize..3,
        half in prop::bool::ANY,
    ) {
        let policy = PolicyFactory::builtin().names()[pidx].clone();
        let n = [2usize, 4, 8][sidx];
        // One generated behaviour per thread: same shape, distinct
        // streams via the seed (cheaper than n independent profiles,
        // still exercises n-way contention).
        let profiles: Vec<Profile> = (0..n)
            .map(|i| {
                let mut p = base.clone();
                p.seed = p.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                p.name = format!("prop{i}");
                p
            })
            .collect();
        let f = if half { FairnessLevel::HALF } else { FairnessLevel::NONE };

        let run = run_zoo(&policy, &profiles, f);

        // Conservation: every thread retires, throughput matches the
        // retired sum, and switch causes partition the total.
        let retired: u64 = run.threads.iter().map(|t| t.retired).sum();
        prop_assert!(retired > 0, "{}: nothing retired", policy);
        for t in &run.threads {
            prop_assert!(t.retired > 0, "{}: thread {} starved", policy, t.name);
        }
        let ipc = retired as f64 / run.cycles as f64;
        prop_assert!(
            (run.throughput - ipc).abs() < 1e-9,
            "{}: throughput {} != retired/cycles {}", policy, run.throughput, ipc
        );
        prop_assert!(run.event_switches + run.forced_switches <= run.total_switches);
        prop_assert!(run.fairness.is_finite() && run.fairness >= 0.0);

        // Determinism: a second identical run must produce identical
        // bytes (fresh traces, fresh policy — nothing shared).
        let again = run_zoo(&policy, &profiles, f);
        let a = serde_json::to_string(&run).expect("serialize");
        let b = serde_json::to_string(&again).expect("serialize");
        prop_assert!(a == b, "{}: two identical runs diverged", policy);
    }
}
