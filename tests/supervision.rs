//! Crash-safety of the supervised experiment matrix: journaled resume
//! reproduces bit-identical results after a simulated kill, injected
//! faults quarantine instead of aborting, the watchdog bounds stalled
//! runs, and configuration errors surface as structured failures.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use soe_bench::experiments::{run_matrix, run_matrix_supervised, MatrixOptions};
use soe_core::runner::RunConfig;
use soe_core::{atomic_write, FailureKind, FaultPlan};

/// A matrix sizing small enough to run several times in one test binary
/// while still exercising every phase (references, all pair levels).
fn mini_cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 40_000;
    cfg.measure_cycles = 120_000;
    cfg.fairness.delta = 20_000;
    cfg.fairness.max_cycles_quota = 8_000;
    cfg.stall_window = Some(100_000);
    cfg
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soe-supervision-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(journal: Option<&Path>, resume: bool) -> MatrixOptions {
    let mut o = MatrixOptions::plain(3);
    o.supervise.progress = false;
    o.journal = journal.map(Path::to_path_buf);
    o.resume = resume;
    o
}

#[test]
fn journaled_resume_is_byte_identical_after_simulated_kill() {
    let cfg = mini_cfg();
    let dir = tmp_dir("resume");
    let journal = dir.join("journal.log");

    // Fresh supervised+journaled run; must match the plain serial path
    // byte for byte once serialized.
    let fresh = run_matrix_supervised(&cfg, &opts(Some(&journal), false)).unwrap();
    assert!(fresh.manifest.is_empty(), "{:?}", fresh.manifest);
    assert_eq!(fresh.reused, 0);
    let fresh_json = serde_json::to_string(&fresh.set).unwrap();
    let serial_json = serde_json::to_string(&run_matrix(&cfg, 1)).unwrap();
    assert_eq!(
        fresh_json, serial_json,
        "supervised matrix diverged from the plain serial path"
    );

    // Simulate SIGKILL mid-matrix: keep a prefix of the journal and a
    // torn final line, exactly what a crash mid-append leaves behind.
    let raw = std::fs::read(&journal).unwrap();
    let lines: Vec<&[u8]> = raw
        .split(|b| *b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    let total = lines.len();
    let k = total / 3;
    assert!(k > 0, "journal unexpectedly small: {total} lines");
    let mut partial: Vec<u8> = Vec::new();
    for line in &lines[..k] {
        partial.extend_from_slice(line);
        partial.push(b'\n');
    }
    partial.extend_from_slice(&lines[k][..lines[k].len() / 2]);
    atomic_write(&journal, &partial).unwrap();

    // Resume: the k intact records replay from the journal, the torn
    // line is dropped, the rest re-simulates — and the final JSON is
    // byte-identical to the uninterrupted run.
    let resumed = run_matrix_supervised(&cfg, &opts(Some(&journal), true)).unwrap();
    assert!(resumed.manifest.is_empty(), "{:?}", resumed.manifest);
    assert_eq!(
        resumed.reused, k,
        "every intact journal record must be reused"
    );
    assert_eq!(
        resumed.executed,
        total - k,
        "only the lost runs re-simulate"
    );
    assert_eq!(
        serde_json::to_string(&resumed.set).unwrap(),
        fresh_json,
        "resumed ResultSet must be byte-identical to the fresh run"
    );
}

#[test]
fn resume_survives_a_crash_mid_journal_compaction() {
    let cfg = mini_cfg();
    let dir = tmp_dir("compaction-crash");
    let journal = dir.join("journal.log");

    let fresh = run_matrix_supervised(&cfg, &opts(Some(&journal), false)).unwrap();
    let fresh_json = serde_json::to_string(&fresh.set).unwrap();

    // Simulate a kill in the middle of a *compaction*: a bit-flipped
    // record mid-file (what compaction was about to drop), a torn final
    // line, and the compaction's own temp file left behind half-written
    // — the worst crash window the atomic-write protocol has.
    let raw = std::fs::read(&journal).unwrap();
    let lines: Vec<&[u8]> = raw
        .split(|b| *b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    let total = lines.len();
    assert!(total >= 4, "journal unexpectedly small: {total} lines");
    let mut damaged: Vec<u8> = Vec::new();
    for (i, line) in lines.iter().enumerate().take(total - 1) {
        if i == total / 2 {
            // Flip a payload byte so the checksum no longer matches.
            let mut bad = line.to_vec();
            if let Some(b) = bad.last_mut() {
                *b ^= 0x01;
            }
            damaged.extend_from_slice(&bad);
        } else {
            damaged.extend_from_slice(line);
        }
        damaged.push(b'\n');
    }
    damaged.extend_from_slice(&lines[total - 1][..lines[total - 1].len() / 2]);
    atomic_write(&journal, &damaged).unwrap();
    atomic_write(
        &dir.join(".journal.log.tmp99999"),
        b"partial compaction output cut mid-l",
    )
    .unwrap();

    // Recovery must drop exactly the two damaged records, ignore the
    // stale temp file, re-run only the lost work, and still produce a
    // byte-identical result set.
    let resumed = run_matrix_supervised(&cfg, &opts(Some(&journal), true)).unwrap();
    assert!(resumed.manifest.is_empty(), "{:?}", resumed.manifest);
    assert_eq!(resumed.reused, total - 2);
    assert_eq!(resumed.executed, 2);
    assert_eq!(serde_json::to_string(&resumed.set).unwrap(), fresh_json);

    // The compacted journal is clean: a second resume replays every
    // record without re-simulating anything.
    let again = run_matrix_supervised(&cfg, &opts(Some(&journal), true)).unwrap();
    assert_eq!(again.executed, 0);
    assert_eq!(again.reused, total);
    assert_eq!(serde_json::to_string(&again.set).unwrap(), fresh_json);
}

#[test]
fn injected_panics_quarantine_the_matrix_instead_of_aborting() {
    let cfg = mini_cfg();
    let mut o = opts(None, false);
    o.supervise.retries = 0;
    o.supervise.faults = Some(FaultPlan::parse("panic:1.0@7").unwrap());
    let outcome = run_matrix_supervised(&cfg, &o).unwrap();
    // Every single-thread reference panics before simulating, so every
    // pair run is skipped as a cascade — and the call still returns.
    assert!(outcome.set.pairs.is_empty());
    assert_eq!(outcome.manifest.quarantined.len(), 12);
    assert_eq!(outcome.manifest.skipped.len(), 64);
    assert!(outcome
        .manifest
        .quarantined
        .iter()
        .all(|q| q.failures[0].kind == FailureKind::Panicked
            && q.failures[0].message.contains("injected fault")));
    assert!(outcome
        .manifest
        .skipped
        .iter()
        .all(|s| s.reason.contains("reference")));
}

#[test]
fn watchdog_bounds_stalled_runs() {
    let cfg = mini_cfg();
    let mut o = opts(None, false);
    o.supervise.workers = 4;
    o.supervise.retries = 0;
    o.supervise.timeout = Some(Duration::from_millis(100));
    o.supervise.faults = Some(FaultPlan::parse("stall:1.0,stall_ms:30000@1").unwrap());
    let wall = Instant::now();
    let outcome = run_matrix_supervised(&cfg, &o).unwrap();
    let elapsed = wall.elapsed();
    assert_eq!(outcome.manifest.quarantined.len(), 12);
    assert!(outcome
        .manifest
        .quarantined
        .iter()
        .all(|q| q.failures[0].kind == FailureKind::TimedOut));
    // 12 jobs on 4 workers at a 100 ms watchdog must come nowhere near
    // the injected 30 s stalls.
    assert!(
        elapsed < Duration::from_secs(20),
        "watchdog failed to bound the matrix: {elapsed:?}"
    );
}

#[test]
fn invalid_configuration_is_a_structured_failure_not_a_panic() {
    let mut cfg = mini_cfg();
    cfg.machine.l1d.sets = 63; // not a power of two
    let mut o = opts(None, false);
    o.supervise.retries = 0;
    let outcome = run_matrix_supervised(&cfg, &o).unwrap();
    assert!(outcome.set.pairs.is_empty());
    assert_eq!(outcome.manifest.quarantined.len(), 12);
    for q in &outcome.manifest.quarantined {
        assert_eq!(q.failures[0].kind, FailureKind::Failed);
        assert!(
            q.failures[0].message.contains("L1D"),
            "error must name the offending cache: {}",
            q.failures[0].message
        );
    }
}
