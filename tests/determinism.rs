//! Reproducibility: identical configurations must produce identical
//! results, and LIT-style checkpoints must resume exactly.

use soe_core::FairnessPolicy;
use soe_model::FairnessLevel;
use soe_sim::{Machine, MachineConfig, SwitchOnEvent, TraceSource};
use soe_workloads::{spec, Checkpoint, Pair, SyntheticTrace};

#[test]
fn identical_runs_produce_identical_statistics() {
    let run = || {
        let pair = Pair {
            a: "art",
            b: "gzip",
        };
        let mut m = Machine::new(
            MachineConfig::default(),
            pair.boxed_traces(),
            Box::new(FairnessPolicy::paper(2, FairnessLevel::HALF)),
        );
        m.run_cycles(600_000);
        (
            m.stats().clone(),
            m.hierarchy().stats(),
            m.predictor_stats(),
        )
    };
    let (s1, h1, p1) = run();
    let (s2, h2, p2) = run();
    assert_eq!(s1, s2, "machine stats must be bit-identical");
    assert_eq!(h1, h2, "hierarchy stats must be bit-identical");
    assert_eq!(p1, p2, "predictor stats must be bit-identical");
}

#[test]
fn fast_forward_does_not_change_results() {
    let run = |ff: bool| {
        let cfg = MachineConfig {
            fast_forward: ff,
            ..MachineConfig::default()
        };
        let pair = Pair {
            a: "swim",
            b: "eon",
        };
        let mut m = Machine::new(cfg, pair.boxed_traces(), Box::new(SwitchOnEvent::new()));
        m.run_cycles(300_000);
        m.stats().clone()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn checkpoint_resume_matches_continuous_stream() {
    let t = SyntheticTrace::new(spec::profile("bzip2").unwrap(), 0x7_0000_0000, 0);
    let cp = Checkpoint::capture(&t, 123_456);
    let json = cp.to_json().expect("serialize");
    let resumed = Checkpoint::from_json(&json).expect("parse").into_trace();
    for k in (0..50_000).step_by(997) {
        assert_eq!(resumed.uop_at(k), t.uop_at(123_456 + k));
    }
}

#[test]
fn repeated_matrix_runs_produce_identical_result_set_json() {
    // Guards the no-unordered-collections invariant end to end: two
    // back-to-back runs of the same matrix in the same process must
    // serialize to byte-identical JSON. HashMap's per-instance hash
    // seed would make any iteration-order dependence visible here.
    let cfg = soe_core::runner::RunConfig::quick();
    let json = || {
        serde_json::to_string(&soe_bench::experiments::run_matrix(&cfg, 2))
            .expect("serialize result set")
    };
    assert_eq!(json(), json(), "ResultSet JSON diverged between runs");
}

#[test]
fn parallel_matrix_is_bit_identical_to_serial() {
    // The acceptance bar for the pool: the full quick-sizing experiment
    // matrix, serialized to JSON, must be byte-for-byte identical
    // whether run on 1, 2, or 3 workers. Every job derives its traces
    // from explicit seeds, so scheduling must not be observable.
    let cfg = soe_core::runner::RunConfig::quick();
    let json_at = |workers: usize| {
        serde_json::to_string(&soe_bench::experiments::run_matrix(&cfg, workers))
            .expect("serialize result set")
    };
    let serial = json_at(1);
    for workers in [2, 3] {
        assert_eq!(
            serial,
            json_at(workers),
            "ResultSet JSON diverged at {workers} workers"
        );
    }
}

#[test]
fn offset_pairs_decorrelate_same_benchmark_threads() {
    // The 1M-instruction offset must actually change the instruction
    // stream the second thread sees at any given position.
    let pair = Pair {
        a: "mgrid",
        b: "mgrid",
    };
    let (a, b) = pair.traces();
    let differing = (0..10_000)
        .filter(|i| {
            let (ua, ub) = (a.uop_at(*i), b.uop_at(*i));
            ua.kind != ub.kind
                || ua.mem_addr.map(|x| x & 0xffff_ffff) != ub.mem_addr.map(|x| x & 0xffff_ffff)
        })
        .count();
    assert!(
        differing > 5_000,
        "streams too correlated: {differing}/10000 differ"
    );
}
