//! The mechanism's foundation: estimating each thread's stand-alone IPC
//! from hardware counters *while it runs under SOE* (Figure 5, top
//! panel). The estimate should track the real (measured-alone) IPC_ST,
//! sitting slightly below it (shared caches/predictor and lost
//! miss-overlap, as the paper explains).

use soe_core::runner::{run_singles, RunConfig};
use soe_core::timeseries::estimated_ipc_st_series;
use soe_core::{FairnessConfig, FairnessPolicy};
use soe_model::FairnessLevel;
use soe_sim::Machine;
use soe_workloads::Pair;

fn estimates_for(pair: &Pair, f: FairnessLevel, cfg: &RunConfig) -> Vec<f64> {
    let fairness = FairnessConfig {
        target: f,
        record_history: true,
        ..cfg.fairness
    };
    let mut m = Machine::new(
        cfg.machine,
        pair.boxed_traces(),
        Box::new(FairnessPolicy::new(2, fairness)),
    );
    m.run_cycles(cfg.warmup_cycles);
    if let Some(p) = m
        .policy_mut()
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<FairnessPolicy>())
    {
        p.clear_records();
    }
    m.run_cycles(cfg.measure_cycles);
    let records = m
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<FairnessPolicy>())
        .expect("fairness policy")
        .records()
        .to_vec();
    estimated_ipc_st_series(&records, &[pair.a, pair.b])
        .iter()
        .map(|ts| ts.mean_y())
        .collect()
}

#[test]
fn estimates_track_real_single_thread_ipc() {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 600_000;
    cfg.measure_cycles = 1_500_000;
    let pair = Pair {
        a: "lucas",
        b: "applu",
    };
    let singles = run_singles(&pair, &cfg);
    let est = estimates_for(&pair, FairnessLevel::HALF, &cfg);

    for (i, s) in singles.iter().enumerate() {
        let ratio = est[i] / s.ipc_st;
        assert!(
            (0.5..=1.15).contains(&ratio),
            "{}: estimated {:.3} vs real {:.3} (ratio {:.2})",
            s.name,
            est[i],
            s.ipc_st,
            ratio
        );
    }
}

#[test]
fn estimates_preserve_thread_ordering() {
    // Even if absolute estimates drift, the mechanism only needs the
    // *relative* picture to divide quota correctly.
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 500_000;
    cfg.measure_cycles = 1_200_000;
    let pair = Pair { a: "mcf", b: "eon" };
    let singles = run_singles(&pair, &cfg);
    assert!(singles[1].ipc_st > singles[0].ipc_st, "eon faster than mcf");
    let est = estimates_for(&pair, FairnessLevel::QUARTER, &cfg);
    assert!(
        est[1] > est[0],
        "estimated ordering must match: eon {:.3} vs mcf {:.3}",
        est[1],
        est[0]
    );
}
