//! Property-based tests of the analytical model's invariants.

use proptest::prelude::*;
use soe_model::timeshare::time_share;
use soe_model::{fairness_of, ipsw_quotas, FairnessLevel, SoeModel, SystemParams, ThreadModel};

fn thread_strategy() -> impl Strategy<Value = ThreadModel> {
    (0.5f64..4.0, 100.0f64..100_000.0).prop_map(|(ipc, ipm)| ThreadModel::new(ipc, ipm))
}

fn model_strategy(max_threads: usize) -> impl Strategy<Value = SoeModel> {
    (
        prop::collection::vec(thread_strategy(), 2..=max_threads),
        50.0f64..1_000.0,
        0.0f64..100.0,
    )
        .prop_map(|(threads, miss_lat, switch_lat)| {
            SoeModel::new(threads, SystemParams::new(miss_lat, switch_lat))
        })
}

proptest! {
    /// Eq 9 quotas never exceed the natural IPM and are positive.
    #[test]
    fn quotas_are_positive_and_capped(model in model_strategy(4), f in 0.01f64..=1.0) {
        let q = ipsw_quotas(model.threads(), model.params(), FairnessLevel::new(f));
        for (quota, t) in q.iter().zip(model.threads()) {
            prop_assert!(*quota > 0.0);
            prop_assert!(*quota <= t.ipm() + 1e-6);
        }
    }

    /// The achieved fairness of the Eq 9 quotas meets the target for any
    /// workload combination — the paper's footnote-3 algebraic claim.
    #[test]
    fn analysis_meets_fairness_target(model in model_strategy(5), f in 0.01f64..=1.0) {
        let a = model.analyze(FairnessLevel::new(f));
        prop_assert!(
            a.fairness >= f - 1e-6,
            "target {} achieved {}", f, a.fairness
        );
    }

    /// Fairness is always in [0, 1]; throughput is the sum of per-thread
    /// IPCs; every per-thread SOE IPC is positive and below its no-miss
    /// IPC.
    #[test]
    fn analysis_invariants(model in model_strategy(5), f in 0.0f64..=1.0) {
        let a = model.analyze(FairnessLevel::new(f));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a.fairness));
        let sum: f64 = a.per_thread.iter().map(|t| t.ipc_soe).sum();
        prop_assert!((a.throughput - sum).abs() < 1e-9);
        for (t, m) in a.per_thread.iter().zip(model.threads()) {
            prop_assert!(t.ipc_soe > 0.0);
            prop_assert!(t.ipc_soe <= m.ipc_no_miss() + 1e-9);
        }
        // Within the model's validity domain (misses resolved before the
        // thread runs again), no thread can beat running alone.
        if model.miss_resolution_holds(FairnessLevel::new(f)) {
            for t in &a.per_thread {
                prop_assert!(t.speedup <= 1.0 + 1e-9, "SOE cannot beat running alone");
            }
        }
    }

    /// Stricter targets can only tighten fairness, never loosen it
    /// (monotonicity of the analytical mechanism).
    #[test]
    fn fairness_is_monotone_in_target(model in model_strategy(4), f in 0.05f64..=0.95) {
        let lo = model.analyze(FairnessLevel::new(f));
        let hi = model.analyze(FairnessLevel::new((f + 0.05).min(1.0)));
        prop_assert!(hi.fairness >= lo.fairness - 1e-6);
    }

    /// fairness_of is scale-invariant and bounded.
    #[test]
    fn fairness_of_properties(
        speedups in prop::collection::vec(0.01f64..10.0, 2..6),
        scale in 0.1f64..10.0,
    ) {
        let f = fairness_of(&speedups);
        prop_assert!((0.0..=1.0).contains(&f));
        let scaled: Vec<f64> = speedups.iter().map(|s| s * scale).collect();
        prop_assert!((fairness_of(&scaled) - f).abs() < 1e-9);
    }

    /// Time sharing with an enormous quota converges to event-only SOE.
    #[test]
    fn timeshare_limit_is_event_only_soe(model in model_strategy(4)) {
        let ts = time_share(&model, 1e12);
        let soe = model.analyze(FairnessLevel::NONE);
        prop_assert!((ts.throughput - soe.throughput).abs() < 1e-6);
    }

    /// Under time sharing, per-round cycles never exceed the quota, and
    /// within the miss-resolution validity domain no thread beats
    /// running alone.
    #[test]
    fn timeshare_respects_quota(model in model_strategy(4), quota in 10.0f64..100_000.0) {
        let ts = time_share(&model, quota);
        let round: f64 = ts
            .per_thread
            .iter()
            .map(|t| t.cycles_per_round + model.params().switch_lat)
            .sum();
        for t in &ts.per_thread {
            prop_assert!(t.cycles_per_round <= quota + 1e-9);
            let rest = round - t.cycles_per_round - model.params().switch_lat;
            if rest >= model.params().miss_lat {
                prop_assert!(t.speedup <= 1.0 + 1e-9);
            }
        }
    }
}
