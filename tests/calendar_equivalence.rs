//! Equivalence goldens for the calendar engine: the global-event-calendar
//! `Machine` must reproduce, byte for byte, what the pre-refactor
//! stepping engine produced in cycle-exact mode on the paper's pair
//! roster. The constants below were captured from the stepping engine
//! (with `exact_policy_events = true`, the mode that survived the
//! refactor) immediately before the per-cycle polling loop was deleted —
//! they pin `PairRun` metrics, single-thread references, and the traced
//! event stream.
//!
//! To refresh after a *deliberate* behaviour change, run
//! `GOLDEN_PRINT=1 cargo test -p soe-repro --test calendar_equivalence -- --nocapture`
//! and paste the printed values.

use soe_core::runner::{try_run_pair, try_run_pair_traced, try_run_single, RunConfig};
use soe_model::FairnessLevel;
use soe_workloads::pairs::paper_pairs;

/// FNV-1a 64 over bytes: stable, dependency-free drift detector.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Equivalence sizing: small enough to run on every `cargo test`, large
/// enough that every pair crosses estimator recalculations, quota
/// expiries and thousands of switches.
fn cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 50_000;
    cfg.measure_cycles = 150_000;
    cfg.fairness.delta = 25_000;
    cfg.fairness.max_cycles_quota = 10_000;
    cfg
}

/// One digest per pair over the JSON of both single-thread references
/// and the F = 0 and F = 1/2 pair runs.
fn pair_digest(pair: &soe_workloads::Pair) -> u64 {
    let cfg = cfg();
    let (a, b) = pair.traces();
    let sa = try_run_single(Box::new(a), &cfg).expect("single a");
    let sb = try_run_single(Box::new(b), &cfg).expect("single b");
    let singles = [sa, sb];
    let f0 = try_run_pair(pair, FairnessLevel::NONE, &singles, &cfg).expect("f0");
    let fh = try_run_pair(pair, FairnessLevel::HALF, &singles, &cfg).expect("f-half");
    let mut bytes = Vec::new();
    for json in [
        serde_json::to_string(&singles[0]).expect("json"),
        serde_json::to_string(&singles[1]).expect("json"),
        serde_json::to_string(&f0).expect("json"),
        serde_json::to_string(&fh).expect("json"),
    ] {
        bytes.extend_from_slice(json.as_bytes());
    }
    fnv1a(&bytes)
}

#[test]
fn calendar_engine_matches_pre_refactor_stepping_engine() {
    let pairs = paper_pairs();
    assert_eq!(pairs.len(), GOLDEN.len(), "paper roster changed size");
    let mut failures = Vec::new();
    for (pair, (label, want)) in pairs.iter().zip(GOLDEN) {
        assert_eq!(pair.label(), *label, "paper roster changed order");
        let got = pair_digest(pair);
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!("    (\"{}\", {:#018x}),", pair.label(), got);
        } else if got != *want {
            failures.push(format!("{label}: {got:#018x} != {want:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "PairRun output diverged from the pre-refactor stepping engine:\n{}",
        failures.join("\n")
    );
}

/// The traced runs additionally pin the cycle-level event stream — the
/// strongest oracle available: every switch, L2 miss/fill, estimator
/// update and quota expiry must land on the same cycle as in the
/// stepping engine.
#[test]
fn calendar_engine_trace_stream_matches_stepping_engine() {
    let cfg = cfg();
    for (name_a, name_b, want_events, want_digest) in TRACED_GOLDEN {
        let pair = soe_workloads::Pair {
            a: name_a,
            b: name_b,
        };
        let (a, b) = pair.traces();
        let singles = [
            try_run_single(Box::new(a), &cfg).expect("single a"),
            try_run_single(Box::new(b), &cfg).expect("single b"),
        ];
        let traced =
            try_run_pair_traced(&pair, FairnessLevel::HALF, &singles, &cfg).expect("traced");
        let stream = format!("{:?}", traced.trace.events);
        let got = (traced.trace.events.len() as u64, fnv1a(stream.as_bytes()));
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!(
                "    (\"{}\", \"{}\", {}, {:#018x}),",
                name_a, name_b, got.0, got.1
            );
        } else {
            assert_eq!(
                got,
                (*want_events, *want_digest),
                "{}:{}: traced event stream diverged",
                name_a,
                name_b
            );
        }
    }
}

/// Captured from the pre-refactor stepping engine (cycle-exact mode).
const GOLDEN: &[(&str, u64)] = &[
    ("gcc:eon", 0xd8d48ba818b1db93),
    ("galgel:gcc", 0x61869e5b205550ae),
    ("apsi:swim", 0x6f61ddf1e0357427),
    ("lucas:applu", 0x0316d25d4410d4c5),
    ("mcf:gzip", 0x53596ca71ef59c95),
    ("art:eon", 0x40821c8df4f8a1e3),
    ("swim:bzip2", 0x111d9dde453ebc80),
    ("mcf:mgrid", 0x7bbf22453dff7b8f),
    ("gcc:gcc", 0x64c5c74d907035e8),
    ("eon:eon", 0x05a1543d7a8ab6ac),
    ("bzip2:bzip2", 0xf5d4d7a27ad63af0),
    ("mgrid:mgrid", 0x737a1aade3f88b82),
    ("swim:swim", 0x110fb80f3e34acaf),
    ("mcf:mcf", 0xb1e2828e459b24ce),
    ("applu:applu", 0x5b1d6e41fe3ac3d7),
    ("art:art", 0xf88090e0d89f6390),
];

/// (pair, events, FNV-1a of the debug-formatted event stream), captured
/// from the pre-refactor stepping engine (cycle-exact mode).
const TRACED_GOLDEN: &[(&str, &str, u64, u64)] = &[
    ("gcc", "eon", 5752, 0x1b570b6b0831137f),
    ("swim", "bzip2", 9767, 0x07ea142329342a81),
];
