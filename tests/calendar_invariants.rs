//! Property tests for the global event calendar — the ordering and
//! no-lost-wakeup contracts `Machine::step` relies on (see the
//! `soe_sim::calendar` module docs, which point here).
//!
//! The calendar is exercised the way the machine uses it: each kind
//! has at most one *live* wake time (later schedules supersede earlier
//! ones), schedules never target the past, and popped entries that
//! disagree with live state are discarded as superseded. Against a
//! reference model (`live: [Option<Cycle>; KIND_COUNT]`) the
//! properties are:
//!
//! * dispatch order is nondecreasing in cycle;
//! * same-cycle ties break on kind declaration order — deterministic,
//!   and identical across two replays of the same operation sequence;
//! * lazy cancellation never loses a due event: whenever the model
//!   says a wake is due, validating-and-discarding stale heap entries
//!   always surfaces exactly that wake.

use proptest::prelude::*;
use soe_sim::calendar::{Calendar, CalendarEvent, ALL_KINDS, KIND_COUNT};
use soe_sim::Cycle;

/// One random calendar operation, decoded from a generated triple.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Schedule `kind` at `now + delay` (re-scheduling supersedes).
    Schedule { kind: usize, delay: Cycle },
    /// Advance to and dispatch the earliest live wake, if any.
    Advance,
}

fn decode(ops: &[(u8, u8, u64)]) -> Vec<Op> {
    ops.iter()
        .map(|&(sel, kind, delay)| {
            if sel < 5 {
                Op::Schedule {
                    kind: kind as usize % KIND_COUNT,
                    delay,
                }
            } else {
                Op::Advance
            }
        })
        .collect()
}

/// Replays `ops` against a calendar plus the reference model, checking
/// every invariant along the way. Returns the dispatch trace.
fn run_model(ops: &[Op]) -> Vec<(Cycle, CalendarEvent)> {
    let mut cal = Calendar::new();
    let mut live: [Option<Cycle>; KIND_COUNT] = [None; KIND_COUNT];
    let mut now: Cycle = 0;
    let mut dispatched: Vec<(Cycle, CalendarEvent)> = Vec::new();

    for &op in ops {
        match op {
            Op::Schedule { kind, delay } => {
                let cycle = now + delay;
                live[kind] = Some(cycle);
                cal.schedule(ALL_KINDS[kind], cycle);
            }
            Op::Advance => {
                // The model's due wake: earliest live cycle, ties to
                // the lowest kind rank (= declaration order).
                let due = live
                    .iter()
                    .enumerate()
                    .filter_map(|(k, c)| c.map(|c| (c, k)))
                    .min();
                let Some((due_cycle, due_kind)) = due else {
                    // Nothing live: every remaining heap entry must be
                    // stale. Drain and confirm none survives validation.
                    while let Some((c, kind)) = cal.peek() {
                        assert_ne!(
                            live[kind as usize],
                            Some(c),
                            "peeked a live entry the model says does not exist"
                        );
                        cal.discard_top();
                    }
                    continue;
                };
                // Machine::step's loop: pop, validate against live
                // state, discard stale entries until the due one
                // surfaces. Losing it would hang the machine.
                loop {
                    let (c, kind) = cal
                        .peek()
                        .expect("calendar empty while the model still holds a due wake");
                    assert!(
                        c >= now,
                        "heap surfaced cycle {c} behind the dispatch point {now}"
                    );
                    if live[kind as usize] == Some(c) {
                        assert_eq!(
                            (c, kind as usize),
                            (due_cycle, due_kind),
                            "first valid entry is not the model's due wake"
                        );
                        cal.dispatch_top();
                        live[kind as usize] = None;
                        now = c;
                        dispatched.push((c, kind));
                        break;
                    }
                    cal.discard_top();
                }
            }
        }
    }
    dispatched
}

proptest! {
    /// Dispatch order is nondecreasing in cycle, and lazy cancellation
    /// never loses a due event. The same-cycle tie-break is asserted
    /// inside `run_model` on every advance (the first valid popped
    /// entry must be the model's `(cycle, rank)`-minimal wake) and
    /// pinned by the directed test below.
    #[test]
    fn dispatch_is_ordered_and_never_loses_a_due_event(
        raw in prop::collection::vec((0u8..8, 0u8..8, 0u64..60), 1..300),
    ) {
        let trace = run_model(&decode(&raw));
        for pair in trace.windows(2) {
            prop_assert!(
                pair[0].0 <= pair[1].0,
                "dispatch went backwards: {} then {}", pair[0].0, pair[1].0
            );
        }
    }

    /// The calendar is a pure function of its operation sequence: two
    /// replays dispatch identical traces and identical counters — no
    /// wall-clock, hash-order, or allocation effects.
    #[test]
    fn replaying_the_same_ops_is_deterministic(
        raw in prop::collection::vec((0u8..8, 0u8..8, 0u64..60), 1..300),
    ) {
        let ops = decode(&raw);
        let a = run_model(&ops);
        let b = run_model(&ops);
        prop_assert_eq!(a, b);
    }

    /// Superseding a wake with a tighter one dispatches the tighter
    /// cycle, and the displaced entry is discarded, not dispatched:
    /// per kind, dispatched + superseded never exceeds scheduled.
    #[test]
    fn counters_account_for_every_scheduled_entry(
        raw in prop::collection::vec((0u8..8, 0u8..8, 0u64..60), 1..300),
    ) {
        let mut cal = Calendar::new();
        let mut live: [Option<Cycle>; KIND_COUNT] = [None; KIND_COUNT];
        let mut now: Cycle = 0;
        for op in decode(&raw) {
            match op {
                Op::Schedule { kind, delay } => {
                    live[kind] = Some(now + delay);
                    cal.schedule(ALL_KINDS[kind], now + delay);
                }
                Op::Advance => {
                    while let Some((c, kind)) = cal.peek() {
                        if live[kind as usize] == Some(c) {
                            cal.dispatch_top();
                            live[kind as usize] = None;
                            now = c;
                            break;
                        }
                        cal.discard_top();
                    }
                }
            }
        }
        let stats = cal.stats();
        for (rank, kind) in ALL_KINDS.into_iter().enumerate() {
            let k = stats.kinds[rank];
            prop_assert!(
                k.dispatched + k.superseded <= k.scheduled,
                "{}: popped more than scheduled ({k:?})",
                kind.name()
            );
        }
        // Pending entries must be exactly the unpopped remainder.
        prop_assert_eq!(
            stats.total_scheduled() - stats.total_dispatched() - stats.total_superseded(),
            cal.len() as u64
        );
    }
}

/// Directed (non-random) pin of the tie-break: all six kinds scheduled
/// at the same cycle dispatch in declaration order.
#[test]
fn same_cycle_kinds_dispatch_in_declaration_order() {
    let mut cal = Calendar::new();
    // Schedule in reverse declaration order so heap insertion order
    // cannot accidentally produce the right answer.
    for kind in ALL_KINDS.into_iter().rev() {
        cal.schedule(kind, 42);
    }
    let mut seen = Vec::new();
    while let Some((c, kind)) = cal.peek() {
        assert_eq!(c, 42);
        seen.push(kind);
        cal.dispatch_top();
    }
    assert_eq!(seen, ALL_KINDS.to_vec());
}
