//! Trace-stream invariants over real simulations: the properties the
//! tracer and the instrumentation promise by construction, checked
//! against captured runs rather than synthetic event lists.
//!
//! * events come out in non-decreasing cycle order;
//! * per thread, switch-out and switch-in strictly alternate;
//! * every demand L2 miss has exactly one matching fill;
//! * two identical runs serialize to byte-identical traces, at any
//!   worker count;
//! * tracing never perturbs the simulation (the traced run's metrics
//!   equal the untraced run's);
//! * the checker itself rejects corrupted streams (self-check).

use proptest::prelude::*;
use soe_core::obs::{check_events, check_jsonl, trace_jsonl};
use soe_core::pool::{run_jobs, Job};
use soe_core::runner::{try_run_pair, try_run_pair_traced, RunConfig, TracedPairRun};
use soe_core::SingleRun;
use soe_model::FairnessLevel;
use soe_sim::obs::{EventKind, TraceConfig, Tracer};
use soe_sim::ThreadId;
use soe_workloads::Pair;

/// A short-but-real sizing: one warm-up Δ plus eight measured windows.
fn cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 100_000;
    cfg.measure_cycles = 400_000;
    cfg
}

/// Synthetic single-thread references: the traced pair run only uses
/// them as IPC denominators, which no trace invariant depends on.
fn fake_singles(pair: &Pair) -> Vec<SingleRun> {
    [pair.a, pair.b]
        .iter()
        .map(|n| SingleRun {
            name: n.to_string(),
            retired: 1_000_000,
            cycles: 1_000_000,
            ipc_st: 1.0,
            l2_misses: 1_000,
            ipm: 1_000.0,
        })
        .collect()
}

fn capture(f: FairnessLevel) -> TracedPairRun {
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    try_run_pair_traced(&pair, f, &fake_singles(&pair), &cfg()).expect("traced run succeeds")
}

#[test]
fn captured_trace_satisfies_every_stream_invariant() {
    let traced = capture(FairnessLevel::HALF);
    assert!(!traced.trace.events.is_empty(), "the run must emit events");
    assert_eq!(traced.trace.dropped, 0, "default capacity must suffice");
    let summary = check_events(&traced.trace).expect("invariants hold");
    // The run actually exercised the instrumented paths.
    for kind in [
        "switch_in",
        "switch_out",
        "l2_miss",
        "l2_fill",
        "retire_sample",
    ] {
        assert!(
            summary.by_kind.get(kind).copied().unwrap_or(0) > 0,
            "expected {kind} events, got {:?}",
            summary.by_kind
        );
    }
}

#[test]
fn cycles_are_monotone_and_switches_alternate() {
    let traced = capture(FairnessLevel::HALF);
    let mut prev = 0;
    // Last switch direction per thread: true = in.
    let mut state = [None::<bool>; 2];
    for e in &traced.trace.events {
        assert!(e.at >= prev, "cycle order: {} after {prev}", e.at);
        prev = e.at;
        let (tid, is_in) = match e.kind {
            EventKind::SwitchIn { tid } => (tid, true),
            EventKind::SwitchOut { tid, .. } => (tid, false),
            _ => continue,
        };
        assert_ne!(
            state[tid.index()],
            Some(is_in),
            "thread {tid} repeated a switch-{} at cycle {}",
            if is_in { "in" } else { "out" },
            e.at
        );
        state[tid.index()] = Some(is_in);
    }
}

#[test]
fn every_l2_miss_is_paired_with_a_fill() {
    let traced = capture(FairnessLevel::HALF);
    assert_eq!(traced.trace.dropped, 0);
    let mut outstanding = std::collections::BTreeMap::<u64, i64>::new();
    let (mut misses, mut fills) = (0u64, 0u64);
    for e in &traced.trace.events {
        match e.kind {
            EventKind::L2Miss { line } => {
                misses += 1;
                *outstanding.entry(line).or_insert(0) += 1;
            }
            EventKind::L2Fill { line } => {
                fills += 1;
                let n = outstanding.entry(line).or_insert(0);
                *n -= 1;
                assert!(*n >= 0, "fill of line {line:#x} precedes its miss");
            }
            _ => {}
        }
    }
    assert!(misses > 0, "a memory-bound pair must miss");
    assert_eq!(misses, fills, "every miss needs exactly one fill");
    assert!(outstanding.values().all(|n| *n == 0));
}

#[test]
fn two_identical_runs_produce_byte_identical_traces() {
    let names = ["swim", "eon"];
    let a = trace_jsonl(&capture(FairnessLevel::HALF).trace, &names);
    let b = trace_jsonl(&capture(FairnessLevel::HALF).trace, &names);
    assert!(a == b, "identical runs must serialize identically");
}

#[test]
fn traces_are_byte_identical_across_worker_counts() {
    // Two independent captures dispatched through the worker pool at 1
    // and then 2 workers: scheduling must not leak into any trace.
    let capture_jobs = || {
        vec![
            Job::new("trace-half", FairnessLevel::HALF),
            Job::new("trace-quarter", FairnessLevel::QUARTER),
        ]
    };
    let serialize = |f: &FairnessLevel| trace_jsonl(&capture(*f).trace, &["swim", "eon"]);
    let serial = run_jobs(capture_jobs(), 1, serialize);
    let pooled = run_jobs(capture_jobs(), 2, serialize);
    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
        assert!(a == b, "job {i}: --jobs 1 and --jobs 2 traces differ");
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let singles = fake_singles(&pair);
    let cfg = cfg();
    let traced = try_run_pair_traced(&pair, FairnessLevel::HALF, &singles, &cfg)
        .expect("traced run succeeds");
    let untraced =
        try_run_pair(&pair, FairnessLevel::HALF, &singles, &cfg).expect("untraced run succeeds");
    assert_eq!(traced.run, untraced, "tracing must be observation-only");
}

#[test]
fn checker_rejects_a_corrupted_real_trace() {
    let traced = capture(FairnessLevel::HALF);
    let good = trace_jsonl(&traced.trace, &["swim", "eon"]);
    check_jsonl(&good).expect("the capture itself validates");
    // Swap the first and last event lines: same events, same counts,
    // but the cycle order breaks.
    let mut lines: Vec<&str> = good.lines().collect();
    let last = lines.len() - 1;
    lines.swap(1, last);
    assert!(
        check_jsonl(&lines.join("\n")).is_err(),
        "reordered events must be caught"
    );
    // Truncation is caught by the header's declared event count.
    let truncated: Vec<&str> = good.lines().take(10).collect();
    assert!(check_jsonl(&truncated.join("\n")).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The recorder's ordering and bounding hold for arbitrary emission
    /// patterns: interleaved future-stamped events, watermark advances
    /// and tiny capacities.
    #[test]
    fn tracer_orders_and_bounds_arbitrary_emissions(
        capacity in 1usize..32,
        ops in prop::collection::vec((0u64..1_000, 0u64..400, 0u8..2), 1..200),
    ) {
        let mut tracer = Tracer::new(TraceConfig {
            capacity,
            retire_sample_period: 10_000,
        });
        let mut emitted = 0u64;
        let mut watermark = 0;
        for (at, lead, kind) in ops {
            // Advance roughly monotonically, emitting at or after the
            // watermark (as the instrumented simulator does).
            watermark = watermark.max(at);
            tracer.advance(watermark, 0);
            let stamp = watermark + lead;
            match kind {
                0 => tracer.emit(stamp, EventKind::L2Miss { line: stamp }),
                _ => tracer.emit(stamp, EventKind::SwitchIn { tid: ThreadId::new(0) }),
            }
            emitted += 1;
        }
        let trace = tracer.take();
        prop_assert!(trace.events.len() <= capacity, "capacity bound");
        prop_assert_eq!(trace.events.len() as u64 + trace.dropped, emitted);
        for w in trace.events.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "released order");
        }
    }
}
