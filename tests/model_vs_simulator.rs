//! Cross-validation: the Section 2 analytical model against the detailed
//! simulator. The paper notes "our empirical results indicate that the
//! analytical model gives adequate approximation" — these tests pin that
//! down with tolerance bands.

use soe_core::runner::{run_pair, run_singles, RunConfig};
use soe_model::{FairnessLevel, SoeModel, SystemParams, ThreadModel};
use soe_workloads::Pair;

fn cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 600_000;
    cfg.measure_cycles = 1_500_000;
    cfg
}

/// Builds the analytical twin of a measured pair from its single-thread
/// references.
fn model_of(singles: &[soe_core::SingleRun]) -> SoeModel {
    let threads = singles
        .iter()
        .map(|s| {
            // CPM from the measured run: execution cycles per miss after
            // removing the memory stall component.
            let cpm = (s.cycles as f64 - s.l2_misses as f64 * 300.0) / s.l2_misses.max(1) as f64;
            ThreadModel::from_ipm_cpm(s.ipm, cpm.max(1.0))
        })
        .collect();
    SoeModel::new(threads, SystemParams::new(300.0, 25.0))
}

#[test]
fn model_predicts_simulated_unfairness_direction_and_magnitude() {
    let pair = Pair {
        a: "apsi",
        b: "swim",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let model = model_of(&singles);

    let predicted = model.analyze(FairnessLevel::NONE);
    let simulated = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);

    // Which thread suffers must agree.
    let pred_slow = predicted.per_thread[0].speedup < predicted.per_thread[1].speedup;
    let sim_slow = simulated.threads[0].speedup < simulated.threads[1].speedup;
    assert_eq!(
        pred_slow, sim_slow,
        "model and simulator disagree on the victim"
    );

    // Fairness within a factor-2 band (the model ignores overlap,
    // sharing and warm-up effects).
    let ratio = simulated.fairness / predicted.fairness.max(1e-9);
    assert!(
        (0.4..=2.5).contains(&ratio),
        "fairness: model {:.3} vs simulated {:.3}",
        predicted.fairness,
        simulated.fairness
    );
}

#[test]
fn model_predicts_simulated_throughput_within_band() {
    let pair = Pair {
        a: "lucas",
        b: "applu",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let model = model_of(&singles);
    for f in [FairnessLevel::NONE, FairnessLevel::PERFECT] {
        let predicted = model.analyze(f).throughput;
        let simulated = run_pair(&pair, f, &singles, &cfg).throughput;
        let ratio = simulated / predicted;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "{}: model {:.3} vs simulated {:.3}",
            f.label(),
            predicted,
            simulated
        );
    }
}

#[test]
fn eq5_predicts_unenforced_fairness_from_cpm() {
    // Eq 5: without enforcement, fairness is set by the CPM ratio — a
    // pure workload property. Verify on a strongly asymmetric pair.
    let pair = Pair { a: "mcf", b: "eon" };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let model = model_of(&singles);
    let eq5 = {
        let cpms: Vec<f64> = model.threads().iter().map(|t| t.cpm() + 300.0).collect();
        (cpms[0] / cpms[1]).min(cpms[1] / cpms[0])
    };
    let simulated = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg).fairness;
    assert!(
        simulated < 3.0 * eq5 + 0.1,
        "Eq 5 predicts {eq5:.3}; simulator measured {simulated:.3}"
    );
    assert!(eq5 < 0.35, "mcf:eon must be predicted unfair, got {eq5}");
    assert!(
        simulated < 0.5,
        "mcf:eon must measure unfair, got {simulated}"
    );
}
