//! End-to-end robustness of the `soe-serve` service: exactly-once
//! crash recovery (SIGKILL mid-load + `--resume`), graceful SIGTERM
//! drain, DRR fairness versus the unbounded-FIFO starvation baseline,
//! typed rejection of malformed input, and the warmup watchdog.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use soe_repro::core::serve::{
    run_scenario, serve, QueueDiscipline, Scenario, ServeConfig, SloReport,
};
use soe_repro::core::{supervise_call, FailureKind, SuperviseOptions};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soe-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One line of the `soe-serve/v1` protocol: a two-thread fairness
/// scenario at the given window sizing.
fn req(id: &str, client: &str, roster: &str, warmup: u64, measure: u64) -> String {
    let names: Vec<String> = roster.split(':').map(|n| format!("\"{n}\"")).collect();
    format!(
        "{{\"proto\":\"soe-serve/v1\",\"id\":\"{id}\",\"client\":\"{client}\",\
         \"scenario\":{{\"roster\":[{}],\"policy\":\"fairness\",\"f\":0.5,\
         \"warmup_cycles\":{warmup},\"measure_cycles\":{measure}}}}}",
        names.join(",")
    )
}

// ----------------------------------------------------------------------
// in-process: fairness, validation, memoization
// ----------------------------------------------------------------------

/// 1 hog flooding 16 requests ahead of 3 polite clients with 4 each —
/// identical cost per request, so fair service is exact interleaving.
fn hog_load() -> String {
    let mut lines = String::new();
    for k in 0..16 {
        lines.push_str(&req(&format!("hog-{k}"), "hog", "gcc:swim", 5_000, 10_000));
        lines.push('\n');
    }
    for c in 0..3 {
        for k in 0..4 {
            lines.push_str(&req(
                &format!("c{c}-{k}"),
                &format!("c{c}"),
                "gcc:swim",
                5_000,
                10_000,
            ));
            lines.push('\n');
        }
    }
    lines
}

fn run_in_process(input: &str, discipline: QueueDiscipline) -> SloReport {
    let mut cfg = ServeConfig::new();
    cfg.workers = 1;
    cfg.capacity = 4;
    // One request costs (5k + 10k) * (2 threads + 1) = 45k units.
    cfg.quantum = 45_000.0;
    cfg.discipline = discipline;
    let mut out: Vec<u8> = Vec::new();
    let outcome = serve(Cursor::new(input.as_bytes().to_vec()), &mut out, &cfg, None).unwrap();
    outcome.report
}

#[test]
fn drr_contains_the_hog_where_fifo_starves() {
    let input = hog_load();
    let drr = run_in_process(&input, QueueDiscipline::DeficitRoundRobin);
    let fifo = run_in_process(&input, QueueDiscipline::UnboundedFifo);

    // DRR: the hog's overflow is shed with backpressure and completions
    // stay near-equal across clients.
    assert!(drr.shed > 0, "bounded queues must shed the hog's flood");
    assert!(
        drr.jain_fairness >= 0.9,
        "DRR jain {:.3} (report: {drr:?})",
        drr.jain_fairness
    );
    for c in drr.clients.iter().filter(|c| c.client.starts_with('c')) {
        assert_eq!(
            c.completed, 4,
            "polite client {} starved under DRR",
            c.client
        );
        assert_eq!(c.shed, 0, "polite client {} shed under DRR", c.client);
    }

    // FIFO: nothing sheds, the hog monopolizes completions, and polite
    // requests wait behind its entire backlog.
    assert_eq!(fifo.shed, 0, "the FIFO baseline never sheds");
    assert!(
        fifo.jain_fairness < 0.7,
        "FIFO jain {:.3} should expose the hog",
        fifo.jain_fairness
    );
    let polite_p99 = |r: &SloReport| -> f64 {
        r.clients
            .iter()
            .filter(|c| c.client.starts_with('c'))
            .map(|c| c.p99_queue_wait)
            .fold(0.0, f64::max)
    };
    assert!(
        polite_p99(&fifo) > polite_p99(&drr),
        "polite p99 queue wait: fifo {:.0} must exceed drr {:.0}",
        polite_p99(&fifo),
        polite_p99(&drr)
    );
}

#[test]
fn malformed_input_gets_typed_errors_never_a_crash() {
    let good = req("ok-1", "alice", "gcc:swim", 5_000, 10_000);
    let input = [
        good.as_str(),
        // Same id again: duplicate.
        good.as_str(),
        // Not JSON at all.
        "][ this is not json",
        // Wrong protocol tag (scenario omitted so parsing succeeds and
        // the protocol check is what rejects it).
        "{\"proto\":\"bogus/9\",\"id\":\"x\",\"client\":\"alice\"}",
        // Well-formed JSON, invalid field (unknown benchmark).
        "{\"proto\":\"soe-serve/v1\",\"id\":\"bad-bench\",\"client\":\"alice\",\
         \"scenario\":{\"roster\":[\"gcc\",\"nonesuch\"],\"policy\":\"fairness\",\
         \"f\":0.5,\"warmup_cycles\":1000,\"measure_cycles\":20000}}",
    ]
    .join("\n");

    let mut cfg = ServeConfig::new();
    cfg.workers = 1;
    let mut out: Vec<u8> = Vec::new();
    let outcome = serve(Cursor::new(input.into_bytes()), &mut out, &cfg, None).unwrap();
    assert_eq!(outcome.report.served, 1);
    assert_eq!(outcome.report.rejected, 4);
    assert_eq!(outcome.pending, 0);

    let text = String::from_utf8(out).unwrap();
    let errors: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"type\":\"error\""))
        .collect();
    assert_eq!(errors.len(), 4, "{text}");
    for code in [
        "\"code\":\"duplicate\"",
        "\"code\":\"parse\"",
        "\"code\":\"proto\"",
        "\"code\":\"field\"",
    ] {
        assert!(
            errors.iter().any(|l| l.contains(code)),
            "missing {code} in {errors:?}"
        );
    }
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"type\":\"result\""))
            .count(),
        1
    );
}

#[test]
fn identical_scenarios_are_memoized_with_identical_results() {
    let dir = tmp_dir("memo");
    let input = [
        req("first", "alice", "gcc:swim", 5_000, 10_000),
        req("second", "bob", "gcc:swim", 5_000, 10_000),
    ]
    .join("\n");
    let mut cfg = ServeConfig::new();
    cfg.workers = 1;
    cfg.memo_dir = Some(dir.join("cache"));
    let mut out: Vec<u8> = Vec::new();
    serve(Cursor::new(input.into_bytes()), &mut out, &cfg, None).unwrap();
    let text = String::from_utf8(out).unwrap();
    let payload = |id: &str| -> String {
        let line = text
            .lines()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_default();
        line.split_once("\"result\":")
            .map(|(_, p)| p.to_string())
            .unwrap_or_default()
    };
    assert!(!payload("first").is_empty());
    assert_eq!(
        payload("first"),
        payload("second"),
        "the memoized result must be byte-identical to the computed one"
    );
    let entries = std::fs::read_dir(dir.join("cache")).unwrap().count();
    assert_eq!(entries, 1, "one scenario, one cache entry");
}

#[test]
fn watchdog_fires_during_warmup() {
    // A scenario whose warmup alone takes far longer than the watchdog:
    // the supervisor must time it out and quarantine, not hang.
    let sc = Scenario {
        roster: vec!["gcc".to_string(), "swim".to_string()],
        policy: "fairness".to_string(),
        f: 0.5,
        timeslice_cycles: 0,
        warmup_cycles: 100_000_000,
        measure_cycles: 10_000,
    };
    let mut opts = SuperviseOptions::quiet(1);
    opts.retries = 0;
    opts.timeout = Some(Duration::from_millis(150));
    let result = supervise_call(
        "req/warmup-hang",
        0,
        &opts,
        Arc::new(move || run_scenario(&sc)),
    );
    let q = result.expect_err("a 100M-cycle warmup cannot beat a 150ms watchdog");
    assert_eq!(q.failures.len(), 1);
    assert_eq!(q.failures[0].kind, FailureKind::TimedOut);
}

// ----------------------------------------------------------------------
// subprocess: kill -9 recovery and SIGTERM drain
// ----------------------------------------------------------------------

fn spawn_serve(journal: &Path, resume: bool, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_soe-serve"));
    cmd.arg("--journal")
        .arg(journal)
        .arg("--quiet")
        .args(["--capacity", "64"])
        .args(extra);
    if resume {
        cmd.arg("--resume");
    }
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    cmd.spawn().unwrap()
}

fn result_lines(text: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for line in text.lines().filter(|l| l.contains("\"type\":\"result\"")) {
        let id = line
            .split_once("\"id\":\"")
            .and_then(|(_, rest)| rest.split_once('"'))
            .map(|(id, _)| id.to_string())
            .unwrap_or_default();
        let prev = map.insert(id.clone(), line.to_string());
        assert!(prev.is_none(), "request {id} answered twice in one stream");
    }
    map
}

fn load(n: usize) -> String {
    (0..n)
        .map(|k| {
            let client = format!("c{}", k % 2);
            req(
                &format!("{client}-{k}"),
                &client,
                "gcc:swim",
                20_000,
                60_000,
            ) + "\n"
        })
        .collect()
}

#[test]
fn sigkill_mid_load_then_resume_answers_exactly_once_byte_identical() {
    let dir = tmp_dir("kill");
    let input = load(14);

    // Reference: the same stream served without interruption.
    let mut reference = spawn_serve(&dir.join("ref.log"), false, &["--workers", "2"]);
    reference
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = reference.wait_with_output().unwrap();
    assert!(out.status.success());
    let expected = result_lines(&String::from_utf8(out.stdout).unwrap());
    assert_eq!(expected.len(), 14);

    // Victim: SIGKILL as soon as three results are out — mid-load, with
    // requests accepted, in flight, and queued.
    let journal = dir.join("victim.log");
    let mut victim = spawn_serve(&journal, false, &["--workers", "2"]);
    victim
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let mut seen = 0;
    let mut reader = BufReader::new(victim.stdout.take().unwrap());
    let mut line = String::new();
    while seen < 3 {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        if line.contains("\"type\":\"result\"") {
            seen += 1;
        }
    }
    victim.kill().unwrap();
    let _ = victim.wait();

    // Resume: the journal replays answered requests verbatim and
    // re-runs the rest — every accepted request answered exactly once,
    // byte-identical to the uninterrupted run.
    let mut resumed = spawn_serve(&journal, true, &["--workers", "2"]);
    drop(resumed.stdin.take());
    let out = resumed.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let replayed = result_lines(&text);
    assert_eq!(
        replayed, expected,
        "resumed stream must be byte-identical to the uninterrupted run"
    );
    let drain = text
        .lines()
        .find(|l| l.contains("\"type\":\"drain\""))
        .expect("resume session must end with a drain line");
    assert!(drain.contains("\"pending\":0"), "{drain}");
}

#[test]
fn sigterm_finishes_in_flight_and_journals_the_rest() {
    let dir = tmp_dir("sigterm");
    let input = load(8);
    let journal = dir.join("graceful.log");

    let mut child = spawn_serve(&journal, false, &["--workers", "1"]);
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    // Wait for the first result so work is genuinely in progress.
    loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "stream ended early"
        );
        if line.contains("\"type\":\"result\"") {
            break;
        }
    }
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(ok.success());

    // Graceful: the stream ends with a drain line, pending work stays
    // journaled, and the exit is clean.
    let mut rest = String::new();
    let mut text = line.clone();
    loop {
        rest.clear();
        if reader.read_line(&mut rest).unwrap() == 0 {
            break;
        }
        text.push_str(&rest);
    }
    let status = child.wait().unwrap();
    assert!(status.success(), "SIGTERM must exit cleanly, got {status}");
    let drain = text
        .lines()
        .last()
        .filter(|l| l.contains("\"type\":\"drain\""))
        .expect("last line must be the drain summary")
        .to_string();
    let served_before = result_lines(&text).len();
    assert!(
        served_before < 8,
        "SIGTERM landed too late to leave pending work"
    );
    assert!(!drain.contains("\"pending\":0"), "{drain}");

    // The next session serves everything exactly once.
    let mut resumed = spawn_serve(&journal, true, &["--workers", "1"]);
    drop(resumed.stdin.take());
    let out = resumed.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(result_lines(&text).len(), 8);
    assert!(
        text.lines()
            .last()
            .is_some_and(|l| l.contains("\"pending\":0")),
        "resume must clear the backlog"
    );
}
