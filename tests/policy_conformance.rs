//! The cross-policy conformance matrix: every discipline registered in
//! [`PolicyFactory::builtin`] must pass the same machine-checked
//! contract at roster sizes 2, 4 and 8 — trace invariants, forced-switch
//! occupancy floors, per-policy bookkeeping conservation, two-run and
//! serial==parallel determinism, and fast-forward invariance. The `registry_and_matrix_agree` guard pins the macro's
//! policy list to the registry, so *registering a new policy without
//! adding it to the matrix fails `cargo test`* — a policy earns its way
//! into the zoo by passing the contract, not by compiling.

use std::cell::RefCell;
use std::rc::Rc;

use soe_core::obs::check_events;
use soe_core::runner::{try_run_multi_named, try_run_multi_with_policy, RunConfig};
use soe_core::{
    FairnessConfig, FairnessPolicy, IslipPolicy, PolicyFactory, PolicySpec, SingleRun,
    UsageFairPolicy, WdrrPolicy,
};
use soe_model::FairnessLevel;
use soe_sim::obs::{EventKind, SharedTracer, Trace, TraceConfig, Tracer};
use soe_sim::{Machine, MachineConfig, MachineStats, SimError, SwitchReason, TraceSource};
use soe_workloads::pairs::group_traces;

/// Eight-thread roster; every contract cell uses a prefix. Mixes
/// memory-bound hogs with compute-bound victims so enforcement has
/// something to enforce at every size.
const ROSTER: [&str; 8] = [
    "swim", "eon", "art", "gcc", "lucas", "mcf", "applu", "mgrid",
];

/// Cycles measured per contract cell (after `20_000 × n` warm-up).
const MEASURE: u64 = 160_000;

/// Contract sizing: small Δ and quota so a 160 k-cycle window sees many
/// windows and forced switches; the quota is scaled so every thread
/// fits in each window at any roster size.
fn sizing(n: usize, f: FairnessLevel) -> FairnessConfig {
    let mut cfg = RunConfig::quick().fairness;
    cfg.target = f;
    cfg.delta = 12_000;
    cfg.max_cycles_quota = 4_000.min(cfg.delta / (n as u64 + 1));
    cfg.min_quota_cycles = 300;
    cfg.record_history = false;
    cfg
}

fn spec(n: usize, f: FairnessLevel) -> PolicySpec {
    PolicySpec::new(n, f, sizing(n, f))
}

/// One driven contract run with the policy still attached: stats and
/// trace cover exactly the measurement window, and the machine is
/// returned so oracles can downcast the post-run policy state.
struct ContractRun {
    stats: MachineStats,
    trace: Trace,
    machine: Machine,
    measure_start: u64,
}

fn run_contract(policy: &str, n: usize, f: FairnessLevel, fast_forward: bool) -> ContractRun {
    let factory = PolicyFactory::builtin();
    let built = factory
        .build(policy, &spec(n, f))
        .unwrap_or_else(|e| panic!("{policy} must build at {n} threads: {e}"));
    let mut mc = MachineConfig::test_config();
    mc.fast_forward = fast_forward;
    let traces: Vec<Box<dyn TraceSource>> = group_traces(&ROSTER[..n])
        .into_iter()
        .map(|t| Box::new(t) as Box<dyn TraceSource>)
        .collect();
    let tracer: SharedTracer = Rc::new(RefCell::new(Tracer::new(TraceConfig::default())));
    let mut m = Machine::new(mc, traces, built);
    m.attach_tracer(Rc::clone(&tracer));
    m.run_cycles(20_000 * n as u64);
    m.reset_stats();
    let measure_start = m.now();
    m.policy_mut().on_measure_start(measure_start);
    tracer.borrow_mut().restart(measure_start);
    m.run_cycles(MEASURE);
    let stats = m.stats().clone();
    let trace = tracer.borrow_mut().take();
    ContractRun {
        stats,
        trace,
        machine: m,
        measure_start,
    }
}

/// Per-thread switch-in→switch-out occupancy episodes from the trace.
/// The leading episode (running at the restart) is anchored at
/// `measure_start`; a trailing open episode is dropped, matching the
/// policies' own accounting.
fn episodes(trace: &Trace, measure_start: u64) -> Vec<(u8, u64, SwitchReason)> {
    let mut out = Vec::new();
    let mut last_in: Option<(u8, u64)> = None;
    let mut leading = true;
    for e in &trace.events {
        match e.kind {
            EventKind::SwitchIn { tid } => {
                last_in = Some((tid.index() as u8, e.at));
                leading = false;
            }
            EventKind::SwitchOut { tid, reason } => {
                if let Some((in_tid, at)) = last_in.take() {
                    assert_eq!(
                        in_tid,
                        tid.index() as u8,
                        "switch-out of a thread that was not switched in"
                    );
                    out.push((in_tid, e.at - at, reason));
                } else if leading {
                    out.push((tid.index() as u8, e.at - measure_start, reason));
                    leading = false;
                }
            }
            _ => {}
        }
    }
    out
}

fn retired_sum(stats: &MachineStats) -> u64 {
    stats.threads.iter().map(|t| t.retired).sum()
}

fn forced_sum(stats: &MachineStats) -> u64 {
    stats.threads.iter().map(|t| t.forced_switches).sum()
}

/// The full contract for one (policy, roster-size) cell.
fn assert_contract(policy: &str, n: usize) {
    let f = FairnessLevel::HALF;
    let r = run_contract(policy, n, f, true);

    // --- Trace invariants: monotone cycles, per-thread switch in/out
    // alternation, miss/fill pairing — the shared stream oracle.
    assert_eq!(r.trace.dropped, 0, "{policy}/{n}: trace ring overflowed");
    let summary = check_events(&r.trace)
        .unwrap_or_else(|e| panic!("{policy}/{n}: trace invariants violated: {e}"));
    assert!(summary.events > 0, "{policy}/{n}: empty trace");

    // --- Liveness: every discipline must switch, and every thread must
    // make progress within the window (no starvation).
    assert!(r.stats.total_switches > 0, "{policy}/{n}: never switched");
    for (i, t) in r.stats.threads.iter().enumerate() {
        assert!(
            t.retired > 0,
            "{policy}/{n}: thread {i} starved (0 retirements in {MEASURE} cycles)"
        );
    }

    // --- Forced-switch floor: no forced switch while the quota (time
    // slice) is unexpired. Occupancy of every forced episode must reach
    // the discipline's floor. Deficit-based disciplines (fairness,
    // wdrr) force at retirement boundaries with no cycle floor, so the
    // oracle applies to the slice/quota disciplines.
    let s = spec(n, f);
    let floor = match policy {
        "timeslice" | "islip" => Some(s.slice_cycles()),
        "ban" => Some(s.fairness.max_cycles_quota),
        _ => None,
    };
    if let Some(floor) = floor {
        let eps = for_drain_slack();
        for (tid, occ, reason) in episodes(&r.trace, r.measure_start) {
            if reason == SwitchReason::Forced {
                assert!(
                    occ + eps >= floor,
                    "{policy}/{n}: thread {tid} forced out after only {occ} cycles \
                     (floor {floor})"
                );
            }
        }
    }

    // --- Per-policy bookkeeping conservation, read back through the
    // machine's policy downcast.
    match policy {
        "islip" => {
            let p = downcast::<IslipPolicy>(&r.machine, policy);
            let switch_ins = r
                .trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::SwitchIn { .. }))
                .count() as u64;
            assert_eq!(
                p.grants(),
                switch_ins,
                "{policy}/{n}: grants must equal observed switch-ins"
            );
            let last_in = r.trace.events.iter().rev().find_map(|e| match e.kind {
                EventKind::SwitchIn { tid } => Some(tid.index()),
                _ => None,
            });
            if let Some(last) = last_in {
                assert_eq!(
                    p.grant_ptr(),
                    last,
                    "{policy}/{n}: pointer off the last grant"
                );
            }
        }
        "ban" => {
            let p = downcast::<UsageFairPolicy>(&r.machine, policy);
            let episode_cycles: u64 = episodes(&r.trace, r.measure_start)
                .iter()
                .map(|(_, occ, _)| occ)
                .sum();
            assert_eq!(
                p.occupied_total(),
                episode_cycles,
                "{policy}/{n}: accounted occupancy must equal traced episode cycles"
            );
            assert!(
                p.occupied_total() <= MEASURE,
                "{policy}/{n}: occupancy exceeds the window"
            );
            assert!(
                p.service().iter().all(|s| s.is_finite() && *s >= 0.0),
                "{policy}/{n}: service went non-finite or negative"
            );
        }
        "wdrr" => {
            let p = downcast::<WdrrPolicy>(&r.machine, policy);
            let hints: u64 = r.stats.threads.iter().map(|t| t.hint_switches).sum();
            assert_eq!(
                p.debited(),
                retired_sum(&r.stats) - hints,
                "{policy}/{n}: every retired instruction must be debited exactly once"
            );
            assert_eq!(
                p.forced_by_deficit() + p.forced_by_guard(),
                forced_sum(&r.stats),
                "{policy}/{n}: forced switches must all be accounted to a cause"
            );
            let cap = s.fairness.deficit_cap;
            for (i, (d, q)) in p.deficits().iter().zip(p.quanta()).enumerate() {
                assert!(
                    *d > -1.0 - 1e-9 && *d <= q * cap + 1e-9,
                    "{policy}/{n}: thread {i} deficit {d} outside (-1, cap×quantum {q}]"
                );
            }
        }
        "fairness" => {
            let p = downcast::<FairnessPolicy>(&r.machine, policy);
            // The mechanism's counters span warm-up too (they are its
            // long-lived state), so they bound the window's count from
            // above.
            assert!(
                p.forced_by_deficit() + p.forced_by_cycle_quota() >= forced_sum(&r.stats),
                "{policy}/{n}: machine saw more forced switches than the mechanism issued"
            );
        }
        "timeslice" => {} // stateless beyond the slice clock
        other => panic!("no conservation oracle for {other:?} — add one to join the zoo"),
    }

    // --- Fast-forward invariance: a tick-by-tick run and a jumping
    // run must be indistinguishable.
    // Every built-in implements `next_decision_at`, so this holds
    // unconditionally for the whole zoo.
    let tick = run_contract(policy, n, f, false);
    assert_eq!(
        tick.stats, r.stats,
        "{policy}/{n}: fast-forward changed the statistics"
    );
    assert_eq!(
        tick.trace, r.trace,
        "{policy}/{n}: fast-forward changed the trace"
    );

    // --- Two-run determinism through the public runner: byte-identical
    // PairRun JSON.
    let cfg = contract_run_config(n, f);
    let singles = fake_singles(n);
    let factory = PolicyFactory::builtin();
    let names = &ROSTER[..n];
    let a = try_run_multi_named(&factory, policy, names, f, &singles, &cfg)
        .unwrap_or_else(|e| panic!("{policy}/{n}: runner failed: {e}"));
    let b = try_run_multi_named(&factory, policy, names, f, &singles, &cfg)
        .unwrap_or_else(|e| panic!("{policy}/{n}: runner failed: {e}"));
    assert_eq!(
        serde_json::to_string(&a).expect("serialize"),
        serde_json::to_string(&b).expect("serialize"),
        "{policy}/{n}: two identical runs serialized differently"
    );
}

/// Switch drain can land the forced switch a drain-latency late in the
/// trace timeline; allow that much slack against the floor.
fn for_drain_slack() -> u64 {
    64
}

fn downcast<'a, T: 'static>(m: &'a Machine, policy: &str) -> &'a T {
    m.policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<T>())
        .unwrap_or_else(|| panic!("{policy} must expose its state via as_any"))
}

fn contract_run_config(n: usize, f: FairnessLevel) -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.machine = MachineConfig::test_config();
    cfg.warmup_cycles = 20_000 * n as u64;
    cfg.measure_cycles = MEASURE;
    cfg.fairness = sizing(n, f);
    cfg
}

/// Synthetic single-thread references: determinism and error-path tests
/// only need consistent denominators, not measured ones.
fn fake_singles(n: usize) -> Vec<SingleRun> {
    ROSTER[..n]
        .iter()
        .map(|name| SingleRun {
            name: (*name).to_string(),
            retired: 1_000_000,
            cycles: 1_000_000,
            ipc_st: 1.0,
            l2_misses: 10_000,
            ipm: 100.0,
        })
        .collect()
}

/// Instantiates the 3-roster contract for one policy as a test module.
macro_rules! conformance {
    ($($modname:ident => $policy:literal),+ $(,)?) => {
        $(
            mod $modname {
                #[test]
                fn roster2() {
                    super::assert_contract($policy, 2);
                }
                #[test]
                fn roster4() {
                    super::assert_contract($policy, 4);
                }
                #[test]
                fn roster8() {
                    super::assert_contract($policy, 8);
                }
            }
        )+

        /// The macro's list, in registry (sorted) order.
        const MATRIX: &[&str] = &[$($policy),+];
    };
}

conformance! {
    ban => "ban",
    fairness => "fairness",
    islip => "islip",
    timeslice => "timeslice",
    wdrr => "wdrr",
}

/// Registering a policy without adding it to the conformance matrix is
/// a test failure: the registry and the macro list must agree exactly.
#[test]
fn registry_and_matrix_agree() {
    let names = PolicyFactory::builtin().names();
    assert_eq!(
        names, MATRIX,
        "policy registry and conformance matrix diverged — every registered \
         policy must appear in the conformance! macro above (and pass it)"
    );
}

/// Serial == parallel: the whole zoo at one roster size through the
/// worker pool at 1 and 2 workers must serialize identically.
#[test]
fn zoo_results_identical_at_any_worker_count() {
    use soe_core::pool::{run_jobs, Job};

    let n = 4;
    let f = FairnessLevel::HALF;
    let cfg = contract_run_config(n, f);
    let singles = fake_singles(n);
    let names = PolicyFactory::builtin().names();
    let run_at = |workers: usize| {
        let jobs: Vec<Job<String>> = names
            .iter()
            .map(|p| Job::new(format!("zoo/{p}"), p.clone()))
            .collect();
        let singles = singles.clone();
        let results = run_jobs(jobs, workers, move |p| {
            let factory = PolicyFactory::builtin();
            try_run_multi_named(&factory, p, &ROSTER[..n], f, &singles, &cfg)
                .map_err(|e| e.to_string())
        });
        let runs: Vec<_> = results
            .into_iter()
            .map(|r| r.expect("zoo run failed"))
            .collect();
        serde_json::to_string(&runs).expect("serialize")
    };
    assert_eq!(run_at(1), run_at(2), "worker count changed the results");
}

// ---------------------------------------------------------------------
// Typed-error paths of the multi-thread runner and the registry.
// ---------------------------------------------------------------------

#[test]
fn singles_length_mismatch_is_a_typed_error() {
    let cfg = contract_run_config(2, FairnessLevel::HALF);
    let singles = fake_singles(1); // 1 reference for a 2-thread roster
    let policy = PolicyFactory::builtin()
        .build("fairness", &spec(2, FairnessLevel::HALF))
        .expect("builds");
    let err = match try_run_multi_with_policy(
        &ROSTER[..2],
        policy,
        Some(FairnessLevel::HALF),
        &singles,
        &cfg,
    ) {
        Err(e) => e,
        Ok(_) => panic!("mismatched singles must not run"),
    };
    match err {
        SimError::InvalidConfig(msg) => {
            assert!(
                msg.contains("1 single-thread reference(s) for a 2-thread roster"),
                "unhelpful message: {msg}"
            );
        }
        other => panic!("expected InvalidConfig, got {other}"),
    }
}

#[test]
fn zero_thread_roster_is_a_typed_error_not_a_panic() {
    let cfg = contract_run_config(2, FairnessLevel::HALF);
    let policy = PolicyFactory::builtin()
        .build("fairness", &spec(2, FairnessLevel::HALF))
        .expect("builds");
    let err = match try_run_multi_with_policy(&[], policy, None, &[], &cfg) {
        Err(e) => e,
        Ok(_) => panic!("an empty roster must not run"),
    };
    match err {
        SimError::InvalidConfig(msg) => {
            assert!(
                msg.contains("at least one thread"),
                "unhelpful message: {msg}"
            );
        }
        other => panic!("expected InvalidConfig, got {other}"),
    }
}

#[test]
fn unknown_benchmark_in_roster_is_a_typed_error() {
    let cfg = contract_run_config(2, FairnessLevel::HALF);
    let singles = fake_singles(2);
    let policy = PolicyFactory::builtin()
        .build("fairness", &spec(2, FairnessLevel::HALF))
        .expect("builds");
    let err = match try_run_multi_with_policy(
        &["swim", "no-such-benchmark"],
        policy,
        None,
        &singles,
        &cfg,
    ) {
        Err(e) => e,
        Ok(_) => panic!("an unknown benchmark must not run"),
    };
    match err {
        SimError::InvalidConfig(msg) => {
            assert!(
                msg.contains("no-such-benchmark"),
                "unhelpful message: {msg}"
            );
        }
        other => panic!("expected InvalidConfig, got {other}"),
    }
}

#[test]
fn unknown_policy_through_the_runner_is_a_typed_error() {
    let cfg = contract_run_config(2, FairnessLevel::HALF);
    let singles = fake_singles(2);
    let factory = PolicyFactory::builtin();
    let err = match try_run_multi_named(
        &factory,
        "lottery",
        &ROSTER[..2],
        FairnessLevel::HALF,
        &singles,
        &cfg,
    ) {
        Err(e) => e,
        Ok(_) => panic!("an unknown policy must not run"),
    };
    match err {
        SimError::InvalidConfig(msg) => {
            assert!(
                msg.contains("lottery") && msg.contains("registered"),
                "unhelpful message: {msg}"
            );
        }
        other => panic!("expected InvalidConfig, got {other}"),
    }
}
