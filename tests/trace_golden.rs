//! Golden digests of the observability capture: the exact bytes of the
//! `--trace` / `--metrics` artifacts for the quick sizing, pinned. Any
//! intentional change to the simulator, the instrumentation or the wire
//! formats must update these values consciously — they exist to catch
//! *unintentional* drift in either the event stream or its
//! serialization.
//!
//! To refresh after a deliberate change, run
//! `GOLDEN_PRINT=1 cargo test -p soe-repro --test trace_golden -- --nocapture`
//! and paste the printed values.

use soe_bench::{observe_pair, Sizing};

/// FNV-1a 64 over the artifact bytes: stable, dependency-free, and
/// sensitive to any byte change anywhere in the stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn quick_capture_artifacts_match_golden_digests() {
    let obs = observe_pair(Sizing::Quick).expect("capture succeeds");
    let got = (
        obs.summary.events,
        obs.summary.dropped,
        fnv1a(obs.jsonl.as_bytes()),
        fnv1a(obs.chrome.as_bytes()),
        fnv1a(obs.series_csv.as_bytes()),
        fnv1a(obs.metrics_csv.as_bytes()),
    );
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "events: {}\ndropped: {}\njsonl: {:#018x}\nchrome: {:#018x}\nseries: {:#018x}\nmetrics: {:#018x}",
            got.0, got.1, got.2, got.3, got.4, got.5
        );
        return;
    }
    assert_eq!(got.0, GOLDEN_EVENTS, "event count drifted");
    assert_eq!(got.1, 0, "the quick capture must not drop events");
    assert_eq!(got.2, GOLDEN_JSONL, "JSONL stream drifted");
    assert_eq!(got.3, GOLDEN_CHROME, "Chrome trace drifted");
    assert_eq!(got.4, GOLDEN_SERIES, "series CSV drifted");
    assert_eq!(got.5, GOLDEN_METRICS, "metrics CSV drifted");
}

const GOLDEN_EVENTS: u64 = 9523;
const GOLDEN_JSONL: u64 = 0x2797_c118_103e_66cd;
const GOLDEN_CHROME: u64 = 0x31c3_9c67_25e4_aff1;
const GOLDEN_SERIES: u64 = 0x27b2_ede3_2e84_3179;
const GOLDEN_METRICS: u64 = 0xab86_d186_9c57_252b;
