//! A miniature version of the full evaluation matrix, asserting the
//! figure-level *shapes* the paper reports (the full-size numbers live in
//! EXPERIMENTS.md; this test keeps them from silently regressing).

use soe_core::runner::{run_pair, run_singles, RunConfig};
use soe_model::FairnessLevel;
use soe_workloads::Pair;

#[test]
fn mini_matrix_reproduces_the_figure_shapes() {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 400_000;
    cfg.measure_cycles = 1_000_000;

    // One extremely unfair pair, one moderately unfair, one naturally
    // fair — a 3-pair cross-section of Figure 6/7/8.
    let pairs = [
        Pair { a: "art", b: "eon" },
        Pair {
            a: "apsi",
            b: "swim",
        },
        Pair {
            a: "applu",
            b: "applu",
        },
    ];
    let levels = [
        FairnessLevel::NONE,
        FairnessLevel::HALF,
        FairnessLevel::PERFECT,
    ];

    let mut all = Vec::new();
    for pair in &pairs {
        let singles = run_singles(pair, &cfg);
        let runs: Vec<_> = levels
            .iter()
            .map(|f| run_pair(pair, *f, &singles, &cfg))
            .collect();
        all.push(runs);
    }

    // Figure 8 shape: fairness is (weakly) monotone in F for every pair,
    // and enforcement reaches at least ~80 % of each target.
    for (pair, runs) in pairs.iter().zip(&all) {
        assert!(
            runs[1].fairness >= runs[0].fairness - 0.05,
            "{}: F=1/2 fairness {} under F=0 {}",
            pair.label(),
            runs[1].fairness,
            runs[0].fairness
        );
        // Small windows (20 Δ periods) leave estimation noise; the
        // full-size runs in EXPERIMENTS.md land much closer to target.
        assert!(
            runs[1].fairness > 0.3,
            "{}: F=1/2 must land near target: {}",
            pair.label(),
            runs[1].fairness
        );
        assert!(
            runs[2].fairness > 0.55,
            "{}: F=1 must approach 1: {}",
            pair.label(),
            runs[2].fairness
        );
    }

    // Figure 8 ordering: the unfair pair is far below the fair pair at F=0.
    assert!(
        all[0][0].fairness < 0.2,
        "art:eon F=0 {}",
        all[0][0].fairness
    );
    assert!(
        all[2][0].fairness > 0.6,
        "applu:applu F=0 {}",
        all[2][0].fairness
    );

    // Figure 7 shape: averaged over the cross-section, enforcement costs
    // bounded throughput, and F=1 never costs more than ~35 % on any pair.
    for (pair, runs) in pairs.iter().zip(&all) {
        let rel = runs[2].throughput / runs[0].throughput;
        assert!(rel > 0.6, "{}: F=1 relative throughput {rel}", pair.label());
    }

    // Figure 6 shape: the naturally fair pair is essentially unaffected
    // by enforcement.
    let fair_rel = all[2][2].throughput / all[2][0].throughput;
    assert!(
        fair_rel > 0.9,
        "enforcement must be nearly free on a fair pair: {fair_rel}"
    );
}
