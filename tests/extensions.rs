//! End-to-end tests of the Section 6 extensions: weighted fairness,
//! measured event latency, pause hints, recorded-trace replay and the
//! prefetcher ablation.

use soe_core::runner::{run_pair_with_policy, run_singles, RunConfig};
use soe_core::{FairnessConfig, FairnessPolicy, MissLatencyMode};
use soe_model::weighted::{weighted_fairness, Weights};
use soe_model::FairnessLevel;
use soe_sim::{Machine, SwitchOnEvent, TraceSource};
use soe_workloads::{spec, LitFile, Pair, PauseOverlay, SyntheticTrace};

fn cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 400_000;
    cfg.measure_cycles = 1_200_000;
    cfg
}

#[test]
fn weighted_enforcement_biases_speedups_toward_the_heavy_thread() {
    // A balanced pair with mild 2:1 weights: the quota math's assumption
    // (switch overhead small relative to the round) holds here, so the
    // achieved speedup ratio should approach the weight ratio. (On
    // extreme pairs heavy weights throttle the light thread into rounds
    // so short that overhead dominates — directionally correct but far
    // from the target, as the model itself predicts.)
    let pair = Pair {
        a: "lucas",
        b: "applu",
    };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let fairness = FairnessConfig {
        target: FairnessLevel::PERFECT,
        ..cfg.fairness
    };
    let uniform = run_pair_with_policy(
        &pair,
        Box::new(FairnessPolicy::new(2, fairness)),
        &singles,
        &cfg,
        Some(FairnessLevel::PERFECT),
    );
    let weights = Weights::new(vec![2.0, 1.0]);
    let weighted = run_pair_with_policy(
        &pair,
        Box::new(FairnessPolicy::new(2, fairness).with_weights(weights.clone())),
        &singles,
        &cfg,
        Some(FairnessLevel::PERFECT),
    );
    let ratio_u = uniform.threads[0].speedup / uniform.threads[1].speedup;
    let ratio_w = weighted.threads[0].speedup / weighted.threads[1].speedup;
    assert!(
        ratio_w > ratio_u * 1.3,
        "2:1 weights must tilt the speedup ratio: uniform {ratio_u:.2}, weighted {ratio_w:.2}"
    );
    assert!(
        (1.4..=3.0).contains(&ratio_w),
        "achieved ratio {ratio_w:.2} should approach the 2:1 target"
    );
    // The weighted run should be roughly weighted-fair.
    let speedups: Vec<f64> = weighted.threads.iter().map(|t| t.speedup).collect();
    let wf = weighted_fairness(&speedups, &weights);
    assert!(wf > 0.5, "weighted fairness {wf:.2}");
}

#[test]
fn measured_latency_mode_matches_fixed_mode_on_l2_miss_events() {
    // With only L2-miss events (whose exposed latency clusters near the
    // configured 300 cycles), measured mode must behave like fixed mode.
    let pair = Pair { a: "art", b: "eon" };
    let cfg = cfg();
    let singles = run_singles(&pair, &cfg);
    let run = |mode: MissLatencyMode| {
        let fairness = FairnessConfig {
            target: FairnessLevel::HALF,
            miss_lat_mode: mode,
            ..cfg.fairness
        };
        run_pair_with_policy(
            &pair,
            Box::new(FairnessPolicy::new(2, fairness)),
            &singles,
            &cfg,
            Some(FairnessLevel::HALF),
        )
    };
    let fixed = run(MissLatencyMode::Fixed);
    let measured = run(MissLatencyMode::Measured);
    assert!(
        (fixed.fairness - measured.fairness).abs() < 0.15,
        "fixed {:.3} vs measured {:.3}",
        fixed.fairness,
        measured.fairness
    );
    assert!(
        (fixed.throughput - measured.throughput).abs() / fixed.throughput < 0.1,
        "throughputs diverged: {:.3} vs {:.3}",
        fixed.throughput,
        measured.throughput
    );
}

#[test]
fn pause_overlay_yields_the_core_between_spin_iterations() {
    // A spinning thread that pauses often shares the core voluntarily
    // even though it never misses.
    let spinner = PauseOverlay::new(
        SyntheticTrace::new(spec::profile("eon").unwrap(), 0x10_0000_0000, 0),
        200,
    );
    let worker = SyntheticTrace::new(spec::profile("eon").unwrap(), 0x20_0000_0000, 0);
    let mut m = Machine::new(
        soe_sim::MachineConfig::default(),
        vec![Box::new(spinner), Box::new(worker)],
        Box::new(SwitchOnEvent::new()),
    );
    m.run_cycles(400_000);
    let s = m.stats();
    assert!(
        s.threads[0].hint_switches > 100,
        "spinner must yield via pause: {:?}",
        s.threads[0]
    );
    // Both threads make progress despite eon's near-zero miss rate.
    assert!(s.threads[1].retired > 10_000, "{:?}", s.threads[1]);
}

#[test]
fn recorded_trace_replay_behaves_like_the_live_trace() {
    // Record 400k instructions of swim, replay alone, and compare the
    // measured IPC to the live trace over the same window.
    let live = SyntheticTrace::new(spec::profile("swim").unwrap(), 0x10_0000_0000, 0);
    let lit = LitFile::record(&live, 0, 400_000);
    let run = |t: Box<dyn TraceSource>| {
        let mut m = Machine::new(
            soe_sim::MachineConfig::default(),
            vec![t],
            Box::new(soe_sim::NeverSwitch::new()),
        );
        m.run_cycles(100_000);
        m.reset_stats();
        let start = m.now();
        m.run_cycles(200_000);
        m.stats().total_retired() as f64 / (m.now() - start) as f64
    };
    let ipc_live = run(Box::new(live));
    let ipc_lit = run(Box::new(lit));
    assert!(
        (ipc_live - ipc_lit).abs() / ipc_live < 0.02,
        "live {ipc_live:.3} vs replay {ipc_lit:.3}"
    );
}

#[test]
fn prefetching_reduces_the_stalls_soe_feeds_on() {
    // With an aggressive stream prefetcher, swim's miss-driven switch
    // rate under SOE collapses — the ablation behind keeping prefetch off
    // in the paper configuration.
    let run = |degree: usize| {
        let mc = soe_sim::MachineConfig {
            l2_prefetch_degree: degree,
            ..soe_sim::MachineConfig::default()
        };
        let pair = Pair {
            a: "swim",
            b: "swim",
        };
        let mut m = Machine::new(mc, pair.boxed_traces(), Box::new(SwitchOnEvent::new()));
        m.run_cycles(300_000);
        m.reset_stats();
        m.run_cycles(500_000);
        (
            m.stats().total_switches,
            m.stats().total_retired(),
            m.hierarchy().stats().prefetches_useful,
        )
    };
    let (sw_off, _, pf_off) = run(0);
    let (sw_on, retired_on, pf_on) = run(8);
    assert_eq!(pf_off, 0);
    assert!(pf_on > 100, "prefetches must be useful: {pf_on}");
    assert!(
        sw_on < sw_off / 2,
        "prefetching must slash miss-driven switches: {sw_on} vs {sw_off}"
    );
    assert!(retired_on > 0);
}
