//! Mechanism behaviour verified through the event trace: the trace is
//! the oracle for time-domain properties that end-of-run aggregates
//! cannot show — window coverage, estimator cadence, occupancy bounds
//! and deficit caps.
//!
//! All tests run an enforced target (the maximum-cycles quota and the
//! deficit mechanism are part of enforcement; with F = 0 the machine is
//! plain event-only SOE and forces nothing).

use soe_core::runner::{try_run_pair_traced, RunConfig, TracedPairRun};
use soe_core::SingleRun;
use soe_model::FairnessLevel;
use soe_sim::obs::EventKind;
use soe_workloads::Pair;

const DELTA: u64 = 100_000;
const QUOTA: u64 = 25_000;
const MEASURE: u64 = 800_000;

/// Mechanism sizing under test: Δ = 100 000 with a 25 000-cycle quota
/// (the paper's 50 000 / 250 000 relation, scaled), eight measured
/// windows.
fn cfg() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.warmup_cycles = 100_000;
    cfg.measure_cycles = MEASURE;
    cfg.fairness.delta = DELTA;
    cfg.fairness.max_cycles_quota = QUOTA;
    cfg
}

fn fake_singles(pair: &Pair) -> Vec<SingleRun> {
    [pair.a, pair.b]
        .iter()
        .map(|n| SingleRun {
            name: n.to_string(),
            retired: 1_000_000,
            cycles: 1_000_000,
            ipc_st: 1.0,
            l2_misses: 1_000,
            ipm: 1_000.0,
        })
        .collect()
}

fn capture(f: FairnessLevel) -> TracedPairRun {
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    try_run_pair_traced(&pair, f, &fake_singles(&pair), &cfg()).expect("traced run succeeds")
}

#[test]
fn paper_parameters_guarantee_window_coverage() {
    // The 50 000-cycle quota makes the guarantee arithmetic: two threads
    // at 50 000 cycles each fit inside one Δ = 250 000 window, so every
    // runnable thread is scheduled (and sampled) at least once per
    // window. The config validator enforces the same relation.
    let paper = RunConfig::paper().fairness;
    assert!(paper.max_cycles_quota * 2 <= paper.delta);
    const { assert!(QUOTA * 2 <= DELTA, "test sizing keeps the same relation") };
    assert!(RunConfig::paper().fairness.check(2).is_ok());
}

#[test]
fn every_thread_is_scheduled_in_every_delta_window() {
    let traced = capture(FairnessLevel::QUARTER);
    let first = traced.trace.events.first().expect("events").at;
    let last_in = traced
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SwitchIn { .. }))
        .map(|e| e.at)
        .max()
        .expect("switch-ins");
    // Full Δ windows on the absolute cycle grid, covered end to end by
    // the measurement (the trailing partial window proves nothing).
    let lo = first.div_ceil(DELTA);
    let hi = last_in / DELTA;
    assert!(hi > lo + 4, "the run must span several full windows");
    let mut seen = vec![[false; 2]; (hi - lo) as usize];
    for e in &traced.trace.events {
        if let EventKind::SwitchIn { tid } = e.kind {
            let w = e.at / DELTA;
            if w >= lo && w < hi {
                seen[(w - lo) as usize][tid.index()] = true;
            }
        }
    }
    for (i, w) in seen.iter().enumerate() {
        assert!(
            w[0] && w[1],
            "window {} (cycles {}..{}): both threads must be scheduled, got {w:?}",
            i,
            (lo + i as u64) * DELTA,
            (lo + i as u64 + 1) * DELTA
        );
    }
}

#[test]
fn estimator_updates_fire_once_per_delta_window() {
    let traced = capture(FairnessLevel::QUARTER);
    // One update per thread per recalculation, both stamped on the same
    // cycle: collect the distinct recalculation cycles.
    let mut recalcs: Vec<u64> = traced
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EstimatorUpdate { .. }))
        .map(|e| e.at)
        .collect();
    assert_eq!(recalcs.len() % 2, 0, "one update per thread per recalc");
    recalcs.dedup();
    assert!(
        recalcs.len() >= 5,
        "eight measured windows must recalculate repeatedly: {recalcs:?}"
    );
    // The policy recalculates at the first each_cycle at or after the
    // boundary, so the cadence is Δ plus a small drift — never less
    // than Δ, never a skipped window.
    const SLACK: u64 = 10_000;
    for pair in recalcs.windows(2) {
        let gap = pair[1] - pair[0];
        assert!(
            (DELTA..=DELTA + SLACK).contains(&gap),
            "recalc gap {gap} outside [{DELTA}, {}]: {recalcs:?}",
            DELTA + SLACK
        );
    }
}

#[test]
fn occupancy_never_exceeds_the_cycle_quota() {
    let traced = capture(FairnessLevel::QUARTER);
    // From each switch-in to the same thread's next switch-out. The
    // quota check runs each cycle, and the switch-out is stamped when
    // the switch initiates, so the bound is tight up to the drain.
    const SLACK: u64 = 2_000;
    let mut open = [None::<u64>; 2];
    let mut longest = 0;
    for e in &traced.trace.events {
        match e.kind {
            EventKind::SwitchIn { tid } => open[tid.index()] = Some(e.at),
            EventKind::SwitchOut { tid, .. } => {
                if let Some(start) = open[tid.index()].take() {
                    let occupancy = e.at - start;
                    longest = longest.max(occupancy);
                    assert!(
                        occupancy <= QUOTA + SLACK,
                        "thread {tid} occupied the core {occupancy} cycles at {}",
                        e.at
                    );
                }
            }
            _ => {}
        }
    }
    assert!(longest > 0, "the trace must contain closed occupancy spans");
}

#[test]
fn quota_expiries_are_followed_by_forced_switch_outs() {
    let traced = capture(FairnessLevel::QUARTER);
    let events = &traced.trace.events;
    let expiries = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CycleQuotaExpiry { .. }))
        .count();
    assert!(
        expiries > 0,
        "swim:eon under enforcement must hit the cycle quota"
    );
    // Every expiry is immediately answered by a forced switch-out of the
    // same thread on the same cycle (emission order within a cycle is
    // the causal order).
    for (i, e) in events.iter().enumerate() {
        if let EventKind::CycleQuotaExpiry { tid } = e.kind {
            let followed = events
                .iter()
                .skip(i + 1)
                .take_while(|n| n.at == e.at)
                .any(|n| {
                    matches!(n.kind, EventKind::SwitchOut { tid: t, reason } if t == tid
                        && reason == soe_sim::SwitchReason::Forced)
                });
            assert!(
                followed,
                "expiry of {tid} at {} not followed by its forced switch-out",
                e.at
            );
        }
    }
}

#[test]
fn deficit_balances_respect_the_configured_cap() {
    let traced = capture(FairnessLevel::HALF);
    let cap = cfg().fairness.deficit_cap;
    let mut grants = 0;
    for e in &traced.trace.events {
        if let EventKind::DeficitGrant {
            tid,
            credited,
            balance,
            quota,
        } = e.kind
        {
            grants += 1;
            assert!(quota > 0.0, "a grant implies a quota in force");
            assert!(
                credited <= quota + 1e-9,
                "thread {tid}: credited {credited} above quota {quota}"
            );
            assert!(
                balance <= quota * cap + 1e-9,
                "thread {tid}: balance {balance} above cap {} (quota {quota})",
                quota * cap
            );
        }
    }
    assert!(grants > 0, "enforcement at F=1/2 must grant deficit quotas");
}
