//! Capacity planning with the analytical model: before committing to an
//! SOE design point, explore fairness/throughput tradeoffs across a
//! workload mix — no simulation required.
//!
//! Scenario: a network appliance co-schedules a latency-sensitive
//! control-plane thread with a memory-hungry telemetry scrubber. How much
//! fairness can be enforced before throughput drops below budget, and
//! what switch quota does the hardware need?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use soe_repro::model::sweep::f_sweep;
use soe_repro::model::{FairnessLevel, SoeModel, SystemParams, ThreadModel};

fn main() {
    // Thread characteristics from profiling (instructions per last-level
    // miss, and IPC excluding miss stalls).
    let control_plane = ThreadModel::new(2.2, 9_000.0); // cache-friendly
    let scrubber = ThreadModel::new(1.6, 700.0); // streams through memory
    let machine = SystemParams::new(300.0, 25.0);
    let model = SoeModel::new(vec![control_plane, scrubber], machine);

    println!("single-thread IPCs: {:?}\n", model.ipc_st());
    println!(
        "{:>5} {:>11} {:>10} {:>14} {:>14} {:>12}",
        "F", "throughput", "fairness", "IPSw[ctrl]", "IPSw[scrub]", "rel. tput"
    );
    for p in f_sweep(&model, 10) {
        let a = model.analyze(FairnessLevel::new(p.f));
        println!(
            "{:>5.2} {:>11.3} {:>10.3} {:>14.0} {:>14.0} {:>11.1}%",
            p.f,
            p.throughput,
            p.fairness,
            a.per_thread[0].ipsw,
            a.per_thread[1].ipsw,
            p.relative * 100.0
        );
    }

    // Pick the highest F that keeps ≥97% of the unenforced throughput —
    // the paper's recommendation lands near F = 1/2.
    let pick = f_sweep(&model, 100)
        .into_iter()
        .rev()
        .find(|p| p.relative >= 0.97)
        .expect("F = 0 always qualifies");
    println!(
        "\nchosen design point: F = {:.2} -> fairness {:.2} at {:.1}% relative throughput",
        pick.f,
        pick.fairness,
        pick.relative * 100.0
    );
    let a = model.analyze(FairnessLevel::new(pick.f));
    println!(
        "hardware quota: force the control-plane thread out every {:.0} instructions\n\
         (the scrubber keeps its natural miss-driven switching)",
        a.per_thread[0].ipsw
    );
}
