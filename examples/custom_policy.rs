//! Extending the system: implement a custom switch policy against the
//! simulator's `SwitchPolicy` trait and compare it with the paper's
//! mechanism.
//!
//! The custom policy here is *round-robin with a retirement budget*: each
//! thread may retire at most N instructions per turn — a plausible-sounding
//! alternative that, like time slicing, equalizes the wrong quantity
//! (instruction counts rather than slowdowns).
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use soe_repro::core::runner::{run_pair, run_pair_with_policy, run_singles, RunConfig};
use soe_repro::model::FairnessLevel;
use soe_repro::sim::{Cycle, SwitchDecision, SwitchPolicy, ThreadId};
use soe_repro::workloads::Pair;

/// Switch after `budget` retired instructions (and on misses, as always).
struct RetirementBudget {
    budget: u64,
    retired_this_turn: u64,
    name: String,
}

impl RetirementBudget {
    fn new(budget: u64) -> Self {
        Self {
            budget,
            retired_this_turn: 0,
            name: format!("retire-budget({budget})"),
        }
    }
}

impl SwitchPolicy for RetirementBudget {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_switch_in(&mut self, _tid: ThreadId, _now: Cycle) {
        self.retired_this_turn = 0;
    }
    fn after_retire(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
        self.retired_this_turn += 1;
        if self.retired_this_turn >= self.budget {
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }
}

fn main() {
    let pair = Pair { a: "art", b: "eon" };
    let cfg = RunConfig::quick();
    let singles = run_singles(&pair, &cfg);
    println!(
        "pair {}: IPC_ST = {:.3} / {:.3}\n",
        pair.label(),
        singles[0].ipc_st,
        singles[1].ipc_st
    );

    println!(
        "{:<22} {:>10} {:>9} {:>12} {:>12}",
        "policy", "IPC_SOE", "fairness", "speedup[a]", "speedup[b]"
    );
    let show = |r: &soe_repro::core::PairRun| {
        println!(
            "{:<22} {:>10.3} {:>9.3} {:>12.3} {:>12.3}",
            r.policy, r.throughput, r.fairness, r.threads[0].speedup, r.threads[1].speedup
        );
    };

    // The custom policy at several budgets...
    for budget in [500, 2_000, 10_000] {
        let r = run_pair_with_policy(
            &pair,
            Box::new(RetirementBudget::new(budget)),
            &singles,
            &cfg,
            None,
        );
        show(&r);
    }
    // ...versus the paper's mechanism.
    for f in [FairnessLevel::NONE, FairnessLevel::HALF] {
        let r = run_pair(&pair, f, &singles, &cfg);
        show(&r);
    }

    println!(
        "\nEqual retirement budgets equalize instruction *counts*, so the missy thread\n\
         (which needs more wall-clock per instruction) is still slowed far more than\n\
         the compute thread. The mechanism instead equalizes *slowdowns*, because its\n\
         quota is proportional to each thread's estimated stand-alone IPC (Eq 9)."
    );
}
