//! Extending the system: implement a custom switch policy against the
//! simulator's `SwitchPolicy` trait, register it in the policy registry,
//! and compare it with the paper's mechanism through the same runner
//! every registered discipline uses.
//!
//! The custom policy here is *round-robin with a retirement budget*: each
//! thread may retire at most N instructions per turn — a plausible-sounding
//! alternative that, like time slicing, equalizes the wrong quantity
//! (instruction counts rather than slowdowns).
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use soe_repro::core::runner::{run_singles, try_run_multi_named, RunConfig};
use soe_repro::core::{PolicyError, PolicyFactory, PolicySpec};
use soe_repro::model::FairnessLevel;
use soe_repro::sim::{Cycle, SwitchDecision, SwitchPolicy, ThreadId};
use soe_repro::workloads::Pair;

/// Switch after `budget` retired instructions (and on misses, as always).
struct RetirementBudget {
    budget: u64,
    retired_this_turn: u64,
    name: String,
}

impl RetirementBudget {
    fn new(budget: u64) -> Self {
        Self {
            budget,
            retired_this_turn: 0,
            name: format!("retire-budget({budget})"),
        }
    }
}

impl SwitchPolicy for RetirementBudget {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_switch_in(&mut self, _tid: ThreadId, _now: Cycle) {
        self.retired_this_turn = 0;
    }
    fn after_retire(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
        self.retired_this_turn += 1;
        if self.retired_this_turn >= self.budget {
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }
}

fn main() {
    let pair = Pair { a: "art", b: "eon" };
    let roster = [pair.a, pair.b];
    let cfg = RunConfig::quick();
    let singles = run_singles(&pair, &cfg);
    println!(
        "pair {}: IPC_ST = {:.3} / {:.3}\n",
        pair.label(),
        singles[0].ipc_st,
        singles[1].ipc_st
    );

    // Register the custom discipline alongside the built-ins. The builder
    // derives its budget from the registry's uniform F→knob translation
    // (the same instruction quantum `wdrr` uses), so `F` sweeps the
    // budget exactly as it sweeps every other discipline's aggressiveness.
    let mut factory = PolicyFactory::builtin();
    factory
        .register("retire-budget", |spec: &PolicySpec| {
            Ok(Box::new(RetirementBudget::new(
                spec.quantum_instructions().max(1.0) as u64
            )) as Box<dyn SwitchPolicy>)
        })
        .expect("the name is free");

    // Registering a taken name is a typed error, not a silent overwrite.
    let dup = factory.register("retire-budget", |_spec: &PolicySpec| {
        unreachable!("never built")
    });
    assert!(matches!(dup, Err(PolicyError::Duplicate { .. })));

    // An unregistered name is a typed error, not a panic — and it names
    // the alternatives.
    let mut sizing = cfg.fairness;
    sizing.target = FairnessLevel::HALF;
    let spec = PolicySpec::new(roster.len(), FairnessLevel::HALF, sizing);
    match factory.build("no-such-policy", &spec) {
        Err(PolicyError::Unknown { name, known }) => {
            println!("build({name:?}) -> unknown policy; registered: {known:?}\n");
        }
        Err(other) => panic!("expected PolicyError::Unknown, got {other}"),
        Ok(_) => panic!("an unregistered name must not build"),
    }

    println!(
        "{:<22} {:>6} {:>10} {:>9} {:>12} {:>12}",
        "policy", "F", "IPC_SOE", "fairness", "speedup[a]", "speedup[b]"
    );
    let show = |f: FairnessLevel, r: &soe_repro::core::PairRun| {
        println!(
            "{:<22} {:>6} {:>10.3} {:>9.3} {:>12.3} {:>12.3}",
            r.policy,
            f.label(),
            r.throughput,
            r.fairness,
            r.threads[0].speedup,
            r.threads[1].speedup
        );
    };

    // Every registered discipline — the custom one included — through
    // the same runner, at matched aggressiveness.
    for f in [FairnessLevel::NONE, FairnessLevel::HALF] {
        for name in factory.names() {
            let r = try_run_multi_named(&factory, &name, &roster, f, &singles, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            show(f, &r);
        }
        println!();
    }

    println!(
        "Equal retirement budgets equalize instruction *counts*, so the missy thread\n\
         (which needs more wall-clock per instruction) is still slowed far more than\n\
         the compute thread. The mechanism instead equalizes *slowdowns*, because its\n\
         quota is proportional to each thread's estimated stand-alone IPC (Eq 9)."
    );
}
