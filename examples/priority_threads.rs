//! Weighted (prioritized) fairness: give a latency-sensitive foreground
//! thread a 2:1 service guarantee over a background thread — the
//! proportional-share extension of the paper's mechanism.
//!
//! ```sh
//! cargo run --release --example priority_threads
//! ```

use soe_repro::core::runner::{run_pair_with_policy, run_singles, RunConfig};
use soe_repro::core::{FairnessConfig, FairnessPolicy};
use soe_repro::model::weighted::{weighted_fairness, Weights};
use soe_repro::model::FairnessLevel;
use soe_repro::workloads::Pair;

fn main() {
    // Foreground: lucas (FP kernel). Background: applu (comparable FP
    // code). Both would get ~equal service under plain fairness.
    let pair = Pair {
        a: "lucas",
        b: "applu",
    };
    let cfg = RunConfig::quick();
    let singles = run_singles(&pair, &cfg);
    println!(
        "references: {} IPC_ST {:.3}, {} IPC_ST {:.3}\n",
        singles[0].name, singles[0].ipc_st, singles[1].name, singles[1].ipc_st
    );

    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>14}",
        "policy", "IPC_SOE", "speedup[fg]", "speedup[bg]", "speedup ratio"
    );
    for (label, weights) in [
        ("uniform (paper Eq 4/9)", Weights::uniform(2)),
        ("weighted 2:1", Weights::new(vec![2.0, 1.0])),
        ("weighted 4:1", Weights::new(vec![4.0, 1.0])),
    ] {
        let fairness = FairnessConfig {
            target: FairnessLevel::PERFECT,
            ..cfg.fairness
        };
        let policy = FairnessPolicy::new(2, fairness).with_weights(weights.clone());
        let r = run_pair_with_policy(&pair, Box::new(policy), &singles, &cfg, None);
        let speedups: Vec<f64> = r.threads.iter().map(|t| t.speedup).collect();
        println!(
            "{:<28} {:>10.3} {:>12.3} {:>12.3} {:>14.2}  (weighted fairness {:.2})",
            label,
            r.throughput,
            speedups[0],
            speedups[1],
            speedups[0] / speedups[1],
            weighted_fairness(&speedups, &weights),
        );
    }
    println!(
        "\nThe mechanism's quota (Eq 9) generalizes cleanly: scaling a thread's quota\n\
         by its weight bounds the spread of weight-normalized speedups, throttling the\n\
         background thread proportionally without starving it. Note the stabilizer\n\
         floor (FairnessConfig::min_quota_cycles) caps how hard the background thread\n\
         can be squeezed, so extreme weight ratios saturate — the same estimation-\n\
         accuracy guardrail the paper motivates for strict enforcement (Section 6)."
    );
}
