//! Figure 1/2-style intuition: an execution timeline of two threads
//! sharing an SOE core, showing who owns the core, the switch reasons,
//! and the growing imbalance when no fairness is enforced.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use soe_repro::sim::{
    Cycle, Machine, MachineConfig, SwitchDecision, SwitchPolicy, SwitchReason, ThreadId,
};
use soe_repro::workloads::Pair;

/// Wraps plain switch-on-event behaviour and logs every switch.
struct LoggingSoe {
    log: Vec<(Cycle, ThreadId, SwitchReason)>,
}

impl SwitchPolicy for LoggingSoe {
    fn name(&self) -> &str {
        "logging-soe"
    }
    fn on_switch_out(&mut self, tid: ThreadId, now: Cycle, reason: SwitchReason) {
        self.log.push((now, tid, reason));
    }
    fn on_miss_stall(&mut self, _tid: ThreadId, _now: Cycle) -> SwitchDecision {
        SwitchDecision::Switch
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

fn main() {
    let pair = Pair { a: "mcf", b: "eon" };
    let mut m = Machine::new(
        MachineConfig::default(),
        pair.boxed_traces(),
        Box::new(LoggingSoe { log: Vec::new() }),
    );
    let horizon = 400_000;
    m.run_cycles(horizon);

    let log = &m
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<LoggingSoe>())
        .expect("logging policy")
        .log;

    println!(
        "SOE timeline for {} over {horizon} cycles (no fairness):\n",
        pair.label()
    );
    // Render an ASCII occupancy strip: one character per bucket, showing
    // which thread owned the core.
    let buckets = 100usize;
    let bucket_len = horizon / buckets as u64;
    let mut strip = vec!['?'; buckets];
    let mut owner = ThreadId::new(0);
    let mut idx = 0usize;
    let mut cursor: Cycle = 0;
    for (at, tid, _) in log {
        while cursor < *at && idx < buckets {
            strip[idx] = if owner.index() == 0 { 'a' } else { 'B' };
            idx += 1;
            cursor += bucket_len;
        }
        owner = ThreadId::new(((tid.index() + 1) % 2) as u8);
    }
    while idx < buckets {
        strip[idx] = if owner.index() == 0 { 'a' } else { 'B' };
        idx += 1;
    }
    println!("  core: {}", strip.iter().collect::<String>());
    println!(
        "        (a = {} [missy], B = {} [compute])\n",
        pair.a, pair.b
    );

    let switches_a = log.iter().filter(|(_, t, _)| t.index() == 0).count();
    let switches_b = log.iter().filter(|(_, t, _)| t.index() == 1).count();
    let s = m.stats();
    println!(
        "  switches out of {}: {switches_a}; out of {}: {switches_b}",
        pair.a, pair.b
    );
    println!(
        "  instructions retired: {} = {}, {} = {}",
        pair.a, s.threads[0].retired, pair.b, s.threads[1].retired
    );
    println!(
        "  average switch latency: {:.1} cycles\n",
        s.avg_switch_latency()
    );
    println!(
        "Every time {a} misses, {b} takes over and runs for thousands of cycles —\n\
         {a}'s effective miss latency is set by {b}'s behaviour, not by the memory.\n\
         That asymmetry is the fairness problem the paper's mechanism corrects.",
        a = pair.a,
        b = pair.b
    );
}
