//! Quickstart: run one unfair thread pair under plain SOE, watch one
//! thread starve, then enforce fairness and watch it recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use soe_repro::core::runner::{run_pair, run_singles, RunConfig};
use soe_repro::model::FairnessLevel;
use soe_repro::workloads::Pair;

fn main() {
    // swim streams through memory (a last-level miss every ~600
    // instructions); eon almost never misses. Under plain switch-on-event
    // multithreading, eon keeps the core whenever swim stalls — swim's
    // "miss latency" becomes however long eon chooses to run.
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let cfg = RunConfig::quick();

    println!("measuring single-thread references (IPC_ST)...");
    let singles = run_singles(&pair, &cfg);
    for s in &singles {
        println!(
            "  {:<6} IPC_ST = {:.3}  (one L2 miss per {:.0} instructions)",
            s.name, s.ipc_st, s.ipm
        );
    }

    println!(
        "\nrunning {} under SOE at each fairness level...",
        pair.label()
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "F", "IPC_SOE", "fairness", "speedup[a]", "speedup[b]", "forced"
    );
    for f in FairnessLevel::paper_levels() {
        let r = run_pair(&pair, f, &singles, &cfg);
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.3} {:>12.3} {:>9}",
            f.label(),
            r.throughput,
            r.fairness,
            r.threads[0].speedup,
            r.threads[1].speedup,
            r.forced_switches
        );
    }
    println!(
        "\nReading the table: at F=0 thread a (swim) runs far below its solo speed while\n\
         thread b (eon) is barely affected. Raising the enforced fairness F narrows the\n\
         speedup gap at a small throughput cost — the paper's central tradeoff."
    );
}
