//! Criterion microbenchmarks of the analytical model: the math that the
//! fairness engine re-runs every Δ cycles must be cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soe_model::sweep::{f_sweep, figure3_configs};
use soe_model::{
    estimate_thread, ipsw_quotas, CounterSample, FairnessLevel, SoeModel, SystemParams, ThreadModel,
};
use std::hint::black_box;

fn threads(n: usize) -> Vec<ThreadModel> {
    (0..n)
        .map(|i| ThreadModel::new(1.0 + i as f64 * 0.3, 500.0 * (i + 1) as f64))
        .collect()
}

fn bench_analyze(c: &mut Criterion) {
    let mut g = c.benchmark_group("model/analyze");
    for n in [2usize, 4, 8, 16] {
        let model = SoeModel::new(threads(n), SystemParams::default());
        g.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| black_box(m.analyze(FairnessLevel::HALF)));
        });
    }
    g.finish();
}

fn bench_quotas(c: &mut Criterion) {
    let t = threads(4);
    let params = SystemParams::default();
    c.bench_function("model/ipsw_quotas/4-threads", |b| {
        b.iter(|| black_box(ipsw_quotas(&t, params, FairnessLevel::QUARTER)));
    });
}

fn bench_estimate(c: &mut Criterion) {
    let sample = CounterSample {
        instrs: 123_456,
        cycles: 98_765,
        misses: 321,
    };
    c.bench_function("model/estimate_thread", |b| {
        b.iter(|| black_box(estimate_thread(sample, 300.0)));
    });
}

fn bench_sweep(c: &mut Criterion) {
    let cfg = figure3_configs().remove(0);
    c.bench_function("model/f_sweep/20-steps", |b| {
        b.iter(|| black_box(f_sweep(&cfg.model, 20)));
    });
}

criterion_group!(
    benches,
    bench_analyze,
    bench_quotas,
    bench_estimate,
    bench_sweep
);
criterion_main!(benches);
