//! Criterion benchmarks of the simulator substrate: simulated cycles per
//! second for representative workload classes, plus the memory-hierarchy
//! and branch-predictor hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soe_sim::config::PredictorConfig;
use soe_sim::frontend::Gshare;
use soe_sim::mem::Hierarchy;
use soe_sim::{AluTrace, Machine, MachineConfig, NeverSwitch, SwitchOnEvent};
use soe_workloads::{spec, Pair, SyntheticTrace};
use std::hint::black_box;

const CYCLES: u64 = 50_000;

fn machine_for(name: &str) -> Machine {
    let t = SyntheticTrace::new(spec::profile(name).expect("known"), 0x10_0000_0000, 0);
    Machine::new(
        MachineConfig::default(),
        vec![Box::new(t)],
        Box::new(NeverSwitch::new()),
    )
}

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/single-thread");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    for name in ["eon", "gcc", "mcf"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, n| {
            // A warmed machine per batch; run_cycles(CYCLES) per iter.
            let mut m = machine_for(n);
            m.run_cycles(200_000);
            b.iter(|| {
                m.run_cycles(CYCLES);
                black_box(m.stats().total_retired())
            });
        });
    }
    g.bench_function("alu-peak", |b| {
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![Box::new(AluTrace::new())],
            Box::new(NeverSwitch::new()),
        );
        m.run_cycles(100_000);
        b.iter(|| {
            m.run_cycles(CYCLES);
            black_box(m.stats().total_retired())
        });
    });
    g.finish();
}

fn bench_soe_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/soe-pair");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    for pair in [
        Pair { a: "gcc", b: "eon" },
        Pair {
            a: "mcf",
            b: "swim",
        },
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(pair.label()), &pair, |b, p| {
            let mut m = Machine::new(
                MachineConfig::default(),
                p.boxed_traces(),
                Box::new(SwitchOnEvent::new()),
            );
            m.run_cycles(200_000);
            b.iter(|| {
                m.run_cycles(CYCLES);
                black_box(m.stats().total_switches)
            });
        });
    }
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/hierarchy");
    g.bench_function("l1-hit", |b| {
        let mut h = Hierarchy::new(&MachineConfig::default());
        h.access_data(0, 0x1000, false);
        let mut now = 1_000u64;
        b.iter(|| {
            now += 4;
            black_box(h.access_data(now, 0x1000, false))
        });
    });
    g.bench_function("l2-miss-stream", |b| {
        let mut h = Hierarchy::new(&MachineConfig::default());
        let mut now = 0u64;
        let mut addr = 0x100_0000u64;
        b.iter(|| {
            now += 400;
            addr += 64;
            black_box(h.access_data(now, addr, false))
        });
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let cfg = PredictorConfig {
        history_bits: 12,
        pht_bits: 14,
        btb_entries: 2048,
        mispredict_penalty: 14,
        kind: Default::default(),
    };
    c.bench_function("sim/gshare/predict_and_train", |b| {
        let mut p = Gshare::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(p.predict_and_train(0x40 + (i % 64) * 4, i.is_multiple_of(3)))
        });
    });
}

criterion_group!(
    benches,
    bench_single_thread,
    bench_soe_pair,
    bench_hierarchy,
    bench_predictor
);
criterion_main!(benches);
