//! Criterion benchmarks of the fairness mechanism's hot paths: the
//! per-retirement deficit-counter update, the per-cycle policy hook and
//! the Δ-periodic recalculation. These run inside the simulated
//! machine's innermost loop, so they must be a handful of nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use soe_core::{DeficitCounter, Estimator, FairnessConfig, FairnessPolicy};
use soe_model::{CounterSample, FairnessLevel};
use soe_sim::{SwitchPolicy, ThreadId};
use std::hint::black_box;

fn bench_deficit(c: &mut Criterion) {
    c.bench_function("policy/deficit/on_retire", |b| {
        let mut d = DeficitCounter::new(2.0);
        d.set_quota(Some(1e12)); // effectively never exhausts
        d.on_switch_in();
        b.iter(|| black_box(d.on_retire()));
    });
}

fn bench_after_retire(c: &mut Criterion) {
    c.bench_function("policy/fairness/after_retire", |b| {
        let mut p = FairnessPolicy::paper(2, FairnessLevel::HALF);
        p.on_switch_in(ThreadId::new(0), 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(p.after_retire(ThreadId::new(0), now))
        });
    });
}

fn bench_each_cycle(c: &mut Criterion) {
    c.bench_function("policy/fairness/each_cycle", |b| {
        let mut p = FairnessPolicy::new(
            2,
            FairnessConfig {
                // A huge delta so the recalculation never triggers inside
                // the benchmark loop — this measures the common path.
                delta: u64::MAX / 4,
                max_cycles_quota: u64::MAX / 8,
                ..FairnessConfig::paper(FairnessLevel::HALF)
            },
        );
        p.on_switch_in(ThreadId::new(0), 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(p.each_cycle(ThreadId::new(0), now))
        });
    });
}

fn bench_recalc(c: &mut Criterion) {
    c.bench_function("policy/estimator/recalc/2-threads", |b| {
        let mut e = Estimator::new(2, 1, 300.0, false);
        let mut now = 0u64;
        let mut s = [CounterSample::default(); 2];
        b.iter(|| {
            now += 250_000;
            s[0].instrs += 200_000;
            s[0].cycles += 180_000;
            s[0].misses += 40;
            s[1].instrs += 50_000;
            s[1].cycles += 60_000;
            s[1].misses += 400;
            black_box(e.recalc(now, &s, FairnessLevel::HALF))
        });
    });
}

criterion_group!(
    benches,
    bench_deficit,
    bench_after_retire,
    bench_each_cycle,
    bench_recalc
);
criterion_main!(benches);
