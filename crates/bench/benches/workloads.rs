//! Criterion benchmarks of the workload layer: micro-op generation is on
//! the simulator's critical path (one call per fetched micro-op, plus
//! replays), so it must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soe_sim::TraceSource;
use soe_workloads::{analyze_trace, spec, LitFile, SyntheticTrace};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/uop_at");
    g.throughput(Throughput::Elements(1));
    for name in ["eon", "gcc", "mcf"] {
        let t = SyntheticTrace::new(spec::profile(name).expect("known"), 0x10_0000_0000, 0);
        g.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(t.uop_at(i))
            });
        });
    }
    g.finish();
}

fn bench_litfile(c: &mut Criterion) {
    let t = SyntheticTrace::new(spec::profile("swim").expect("known"), 0x10_0000_0000, 0);
    let lit = LitFile::record(&t, 0, 64 * 1024);
    c.bench_function("workloads/litfile/replay", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(lit.uop_at(i))
        });
    });
    c.bench_function("workloads/litfile/encode-64k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64 * 1024 * 25);
            lit.write_to(&mut buf).expect("write");
            black_box(buf.len())
        });
    });
}

fn bench_analysis(c: &mut Criterion) {
    let t = SyntheticTrace::new(spec::profile("gcc").expect("known"), 0x10_0000_0000, 0);
    c.bench_function("workloads/analyze-50k", |b| {
        b.iter(|| black_box(analyze_trace(&t, 0, 50_000)));
    });
}

criterion_group!(benches, bench_generation, bench_litfile, bench_analysis);
criterion_main!(benches);
