//! Extension experiment: SOE throughput and fairness as the thread count
//! grows (the paper's equations are N-thread; Eickemeyer et al., cited in
//! Section 1.1, report SOE throughput saturating around three threads).
//!
//! One memory-bound thread is added at a time on top of a compute thread;
//! once the combined compute between misses covers the memory latency,
//! additional threads stop helping and only add switch overhead and cache
//! pressure.

use soe_bench::{banner, run_config, run_supervised, write_observability, Cli};
use soe_core::pool::Job;
use soe_core::runner::{try_run_multi_named, try_run_single};
use soe_core::PolicyFactory;
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Table};
use soe_workloads::{spec, SyntheticTrace};

/// Memory-bound, small-footprint threads: the workloads SOE exists for
/// (each spends most of its solo time stalled on memory).
const ROSTER: [&str; 6] = ["swim", "art", "lucas", "mcf", "applu", "mgrid"];

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    // `--policy` swaps the enforcement discipline for the whole sweep;
    // the fairness column still sweeps F through the policy's knobs.
    let policy = cli.policy_or_exit("fairness");
    banner(
        &format!("Thread-count sweep: SOE throughput vs number of threads (policy: {policy})"),
        sizing,
    );
    write_observability(&cli);
    let cfg = run_config(sizing);
    let roster = ROSTER;

    // Single-thread references, measured once each. Seeds are a pure
    // function of the roster position, so pooling cannot change them.
    let single_jobs: Vec<Job<usize>> = roster
        .iter()
        .enumerate()
        .map(|(i, name)| Job::new(format!("single/{name}"), i))
        .collect();
    let singles = run_supervised(single_jobs, &cli, move |i| {
        let name = ROSTER[*i];
        let profile = spec::profile(name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        let trace = SyntheticTrace::new(profile, (*i as u64 + 1) * 0x10_0000_0000, 0);
        try_run_single(Box::new(trace), &cfg).map_err(|e| e.to_string())
    });

    // Sweep: every (thread count, fairness level) is independent once
    // the references exist, so the whole grid goes into one job list.
    let levels = [FairnessLevel::NONE, FairnessLevel::HALF];
    let sweep_jobs: Vec<Job<(usize, FairnessLevel)>> = (1..=roster.len())
        .flat_map(|n| {
            levels
                .iter()
                .map(move |f| Job::new(format!("{n}-threads@{}", f.label()), (n, *f)))
        })
        .collect();
    let job_singles = singles.clone();
    let job_policy = policy.clone();
    let runs = run_supervised(sweep_jobs, &cli, move |(n, f)| {
        let n = *n;
        // The max-cycles quota must leave room for every thread within
        // each Δ window; scale it down as the thread count grows.
        let mut cfg_n = cfg;
        cfg_n.fairness.max_cycles_quota = cfg
            .fairness
            .max_cycles_quota
            .min(cfg.fairness.delta / (n as u64 + 1));
        // Every thread needs its share of warm-up.
        cfg_n.warmup_cycles = cfg.warmup_cycles * n as u64;
        let factory = PolicyFactory::builtin();
        try_run_multi_named(
            &factory,
            &job_policy,
            &ROSTER[..n],
            *f,
            &job_singles[..n],
            &cfg_n,
        )
        .map_err(|e| e.to_string())
    });

    let mut t = Table::new(vec![
        "threads".into(),
        "mix".into(),
        "IPC_SOE (F=0)".into(),
        "speedup vs ST".into(),
        "fairness (F=0)".into(),
        "fairness (F=1/2)".into(),
        "IPC (F=1/2)".into(),
    ]);
    for c in 2..7 {
        t.align(c, Align::Right);
    }
    for (n, pair) in (1..=roster.len()).zip(runs.chunks(levels.len())) {
        let (f0, fh) = (&pair[0], &pair[1]);
        t.row(vec![
            n.to_string(),
            roster[..n].join(":"),
            fnum(f0.throughput, 3),
            format!("{:+.1}%", (f0.soe_speedup - 1.0) * 100.0),
            fnum(f0.fairness, 3),
            fnum(fh.fairness, 3),
            fnum(fh.throughput, 3),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: adding a second/third thread hides miss stalls and lifts\n\
         throughput; beyond that, shared-L1/L2 interference and switch overhead on\n\
         this 32 KiB-L1 machine eat the gains (cf. Eickemeyer et al.'s maximum near\n\
         three threads). Fairness enforcement keeps working at every N."
    );
}
