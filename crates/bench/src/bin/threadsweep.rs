//! Extension experiment: SOE throughput and fairness as the thread count
//! grows (the paper's equations are N-thread; Eickemeyer et al., cited in
//! Section 1.1, report SOE throughput saturating around three threads).
//!
//! One memory-bound thread is added at a time on top of a compute thread;
//! once the combined compute between misses covers the memory latency,
//! additional threads stop helping and only add switch overhead and cache
//! pressure.

use soe_bench::{banner, jobs_from_args, run_config, sizing_from_args};
use soe_core::pool::{run_jobs, Job};
use soe_core::runner::{run_multi, run_single};
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Table};
use soe_workloads::{spec, SyntheticTrace};

fn main() {
    let sizing = sizing_from_args();
    banner(
        "Thread-count sweep: SOE throughput vs number of threads",
        sizing,
    );
    let cfg = run_config(sizing);
    let workers = jobs_from_args();

    // Memory-bound, small-footprint threads: the workloads SOE exists
    // for (each spends most of its solo time stalled on memory).
    let roster = ["swim", "art", "lucas", "mcf", "applu", "mgrid"];

    // Single-thread references, measured once each. Seeds are a pure
    // function of the roster position, so pooling cannot change them.
    let single_jobs: Vec<Job<usize>> = roster
        .iter()
        .enumerate()
        .map(|(i, name)| Job::new(format!("single {name}"), i))
        .collect();
    let singles = run_jobs(single_jobs, workers, |i| {
        let profile = spec::profile(roster[*i]).expect("known benchmark");
        let trace = SyntheticTrace::new(profile, (*i as u64 + 1) * 0x10_0000_0000, 0);
        run_single(Box::new(trace), &cfg)
    });

    // Sweep: every (thread count, fairness level) is independent once
    // the references exist, so the whole grid goes into one job list.
    let levels = [FairnessLevel::NONE, FairnessLevel::HALF];
    let sweep_jobs: Vec<Job<(usize, FairnessLevel)>> = (1..=roster.len())
        .flat_map(|n| {
            levels
                .iter()
                .map(move |f| Job::new(format!("{n} threads @ {}", f.label()), (n, *f)))
        })
        .collect();
    let singles_ref = &singles;
    let runs = run_jobs(sweep_jobs, workers, move |(n, f)| {
        let n = *n;
        // The max-cycles quota must leave room for every thread within
        // each Δ window; scale it down as the thread count grows.
        let mut cfg_n = cfg;
        cfg_n.fairness.max_cycles_quota = cfg
            .fairness
            .max_cycles_quota
            .min(cfg.fairness.delta / (n as u64 + 1));
        // Every thread needs its share of warm-up.
        cfg_n.warmup_cycles = cfg.warmup_cycles * n as u64;
        run_multi(&roster[..n], *f, &singles_ref[..n], &cfg_n)
    });

    let mut t = Table::new(vec![
        "threads".into(),
        "mix".into(),
        "IPC_SOE (F=0)".into(),
        "speedup vs ST".into(),
        "fairness (F=0)".into(),
        "fairness (F=1/2)".into(),
        "IPC (F=1/2)".into(),
    ]);
    for c in 2..7 {
        t.align(c, Align::Right);
    }
    for (n, pair) in (1..=roster.len()).zip(runs.chunks(levels.len())) {
        let (f0, fh) = (&pair[0], &pair[1]);
        t.row(vec![
            n.to_string(),
            roster[..n].join(":"),
            fnum(f0.throughput, 3),
            format!("{:+.1}%", (f0.soe_speedup - 1.0) * 100.0),
            fnum(f0.fairness, 3),
            fnum(fh.fairness, 3),
            fnum(fh.throughput, 3),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: adding a second/third thread hides miss stalls and lifts\n\
         throughput; beyond that, shared-L1/L2 interference and switch overhead on\n\
         this 32 KiB-L1 machine eat the gains (cf. Eickemeyer et al.'s maximum near\n\
         three threads). Fairness enforcement keeps working at every N."
    );
}
