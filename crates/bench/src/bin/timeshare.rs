//! Section 6 — why simple time sharing is ineffective: the analytical
//! example (400-cycle slices on the Table 2 scenario) and a simulated
//! comparison of time-slice quotas against the fairness mechanism.

use soe_bench::{banner, run_config, sizing_from_args};
use soe_core::runner::{run_pair, run_pair_timeslice, run_singles};
use soe_model::example::table2_scenario;
use soe_model::timeshare::time_share;
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Table};
use soe_workloads::Pair;

fn main() {
    let sizing = sizing_from_args();
    banner(
        "Section 6: simple time sharing vs the fairness mechanism",
        sizing,
    );

    // --- Analytical part: the paper's exact example -------------------
    println!("Analytical example (Table 2 scenario, 400-cycle slices):");
    let model = table2_scenario();
    let ts = time_share(&model, 400.0);
    println!(
        "  time sharing: speedups {:.2} / {:.2}, fairness {:.2} (paper: 0.5 / 0.8 -> 0.6)",
        ts.per_thread[0].speedup, ts.per_thread[1].speedup, ts.fairness
    );
    let enforced = model.analyze(FairnessLevel::PERFECT);
    println!(
        "  mechanism (F=1): speedups {:.2} / {:.2}, fairness {:.2} (paper: 0.63 / 0.63 -> 1.0)\n",
        enforced.per_thread[0].speedup, enforced.per_thread[1].speedup, enforced.fairness
    );

    // --- Simulated part ------------------------------------------------
    let cfg = run_config(sizing);
    let pair = Pair { a: "gcc", b: "eon" };
    println!("Simulated comparison on {} :", pair.label());
    let singles = run_singles(&pair, &cfg);

    let mut t = Table::new(vec![
        "policy".into(),
        "throughput".into(),
        "fairness".into(),
        "speedup[gcc]".into(),
        "speedup[eon]".into(),
        "switches".into(),
    ]);
    for c in 1..6 {
        t.align(c, Align::Right);
    }
    let mut add = |r: &soe_core::PairRun| {
        t.row(vec![
            r.policy.clone(),
            fnum(r.throughput, 3),
            fnum(r.fairness, 3),
            fnum(r.threads[0].speedup, 3),
            fnum(r.threads[1].speedup, 3),
            r.total_switches.to_string(),
        ]);
    };
    for quota in [400, 2_000, 10_000, 50_000] {
        add(&run_pair_timeslice(&pair, quota, &singles, &cfg));
    }
    for f in [
        FairnessLevel::NONE,
        FairnessLevel::HALF,
        FairnessLevel::PERFECT,
    ] {
        add(&run_pair(&pair, f, &singles, &cfg));
    }
    println!("{t}");
    println!(
        "Small time slices pay frequent pipeline drains for mediocre fairness; large\n\
         slices keep throughput but leave execution unfair. The mechanism hits the\n\
         target fairness at a fraction of the switches."
    );
}
