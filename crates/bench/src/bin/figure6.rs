//! Figure 6 — throughput of the 16 thread combinations: per-thread
//! stacked `IPC_SOE` at F = 0, 1/4, 1/2, 1, next to the single-thread
//! IPCs, plus the average SOE speedup over single thread.

use soe_bench::{banner, experiments::full_results, write_observability, Cli};
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Summary, Table};

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    banner("Figure 6: IPC_SOE per pair and fairness level", sizing);
    write_observability(&cli);
    let results = full_results(sizing, &cli);

    let mut t = Table::new(vec![
        "pair".into(),
        "IPC_ST[0]".into(),
        "IPC_ST[1]".into(),
        "F=0 (t0+t1)".into(),
        "F=1/4".into(),
        "F=1/2".into(),
        "F=1".into(),
    ]);
    for c in 1..7 {
        t.align(c, Align::Right);
    }
    for p in &results.pairs {
        let stacked = |i: usize| {
            let r = &p.runs[i];
            format!(
                "{} ({}+{})",
                fnum(r.throughput, 2),
                fnum(r.threads[0].ipc_soe, 2),
                fnum(r.threads[1].ipc_soe, 2)
            )
        };
        t.row(vec![
            p.label.clone(),
            fnum(p.singles[0].ipc_st, 2),
            fnum(p.singles[1].ipc_st, 2),
            stacked(0),
            stacked(1),
            stacked(2),
            stacked(3),
        ]);
    }
    println!("{t}");

    println!("\nAverage SOE speedup over single thread (paper: 24%, 21%, 19%, 15%):");
    for (i, f) in FairnessLevel::paper_levels().iter().enumerate() {
        let s: Summary = results
            .pairs
            .iter()
            .map(|p| p.runs[i].soe_speedup)
            .collect();
        println!(
            "  {}: {:+.1}%  (min {:+.1}%, max {:+.1}%)",
            f.label(),
            (s.mean() - 1.0) * 100.0,
            (s.min().unwrap_or(1.0) - 1.0) * 100.0,
            (s.max().unwrap_or(1.0) - 1.0) * 100.0
        );
    }
}
