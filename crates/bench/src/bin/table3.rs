//! Table 3 — the simulated machine parameters.

use soe_bench::{banner, sizing_from_args};
use soe_sim::MachineConfig;
use soe_stats::Table;

fn main() {
    banner("Table 3: simulated machine parameters", sizing_from_args());
    let c = MachineConfig::default();
    let p = c.pipeline;
    let mut t = Table::new(vec!["parameter".into(), "value".into()]);
    let rows: Vec<(&str, String)> = vec![
        (
            "fetch / rename / issue / retire width",
            format!(
                "{} / {} / {} / {}",
                p.fetch_width, p.rename_width, p.issue_width, p.retire_width
            ),
        ),
        ("ROB / RS", format!("{} / {}", p.rob_size, p.rs_size)),
        (
            "load / store buffers",
            format!("{} / {}", p.load_buffer, p.store_buffer),
        ),
        ("front-end depth", format!("{} cycles", p.frontend_depth)),
        (
            "ALU / MUL / DIV units",
            format!("{} / {} / {}", p.alu_units, p.mul_units, p.div_units),
        ),
        (
            "load / store ports",
            format!("{} / {}", p.load_ports, p.store_ports),
        ),
        (
            "branch predictor",
            format!(
                "gshare, {}-bit history, {}-entry PHT, {}-entry BTB, {}-cycle redirect",
                c.predictor.history_bits,
                1u64 << c.predictor.pht_bits,
                c.predictor.btb_entries,
                c.predictor.mispredict_penalty
            ),
        ),
        (
            "L1I",
            format!(
                "{} KiB, {}-way, {}-cycle",
                c.l1i.capacity() / 1024,
                c.l1i.ways,
                c.l1i.hit_latency
            ),
        ),
        (
            "L1D",
            format!(
                "{} KiB, {}-way, {}-cycle, {} MSHRs",
                c.l1d.capacity() / 1024,
                c.l1d.ways,
                c.l1d.hit_latency,
                c.l1d.mshrs
            ),
        ),
        (
            "L2 (unified, last level)",
            format!(
                "{} MiB, {}-way, {}-cycle, {} MSHRs",
                c.l2.capacity() / (1024 * 1024),
                c.l2.ways,
                c.l2.hit_latency,
                c.l2.mshrs
            ),
        ),
        (
            "i/d TLBs",
            format!(
                "{} entries each, 4 KiB pages, {}-cycle walk",
                c.itlb.entries, c.itlb.walk_latency
            ),
        ),
        (
            "bus",
            format!(
                "pipelined, one transfer / {} cycles",
                c.bus_cycles_per_transfer
            ),
        ),
        (
            "memory latency",
            format!("{} cycles (75 ns at 4 GHz)", c.mem_latency),
        ),
        (
            "thread switch",
            format!(
                "{}-cycle drain + pipeline refill (≈25 cycles observed)",
                c.soe.drain_latency
            ),
        ),
        (
            "fairness mechanism",
            "Δ = 250 000 cycles, max cycles quota = 50 000".to_string(),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    println!("{t}");
}
