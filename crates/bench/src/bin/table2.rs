//! Table 2 — the paper's worked example of two threads with and without
//! fairness enforcement (analytical model, exact reproduction).

use soe_bench::{banner, sizing_from_args};
use soe_model::example::{table2_rows, table2_scenario};
use soe_stats::{fnum, Align, Table};

fn main() {
    banner(
        "Table 2: two-thread SOE example, with and without fairness",
        sizing_from_args(),
    );
    let model = table2_scenario();
    println!(
        "Scenario: IPC_no_miss = 2.5 (both), Miss_lat = {}, Switch_lat = {}, IPM = [15000, 1000]\n",
        model.params().miss_lat,
        model.params().switch_lat
    );

    let mut t = Table::new(vec![
        "F".into(),
        "IPSw_1".into(),
        "IPSw_2".into(),
        "IPC_ST_1".into(),
        "IPC_ST_2".into(),
        "IPC_SOE_1".into(),
        "IPC_SOE_2".into(),
        "slowdown_1".into(),
        "slowdown_2".into(),
        "fairness".into(),
        "IPC_SOE".into(),
    ]);
    for c in 1..11 {
        t.align(c, Align::Right);
    }
    for row in table2_rows() {
        let p = &row.per_thread;
        t.row(vec![
            row.target.label(),
            fnum(p[0].ipsw, 0),
            fnum(p[1].ipsw, 0),
            fnum(p[0].ipc_st, 2),
            fnum(p[1].ipc_st, 2),
            fnum(p[0].ipc_soe, 2),
            fnum(p[1].ipc_soe, 2),
            fnum(1.0 / p[0].speedup, 2),
            fnum(1.0 / p[1].speedup, 2),
            fnum(row.fairness, 2),
            fnum(row.throughput, 2),
        ]);
    }
    println!("{t}");
    println!(
        "Paper checkpoints: F=0 slowdowns 1.02 / 9.2 (fairness 0.11); F=1 forces thread 1 to\n\
         switch every ~1667 instructions and equalizes slowdowns at 1.59 (speedup 0.63)."
    );
}
