//! Miss-source diagnostic: decomposes a profile's L2 misses into data,
//! page-walk and instruction-fetch components by selectively disabling
//! each memory-behaviour knob. Used to verify workload calibration.

use soe_sim::{Machine, MachineConfig, NeverSwitch};
use soe_workloads::{spec, Profile, SyntheticTrace};

fn run(label: &str, profile: Profile) {
    let t = SyntheticTrace::new(profile, 0x10_0000_0000, 0);
    let mut m = Machine::new(
        MachineConfig::default(),
        vec![Box::new(t)],
        Box::new(NeverSwitch::new()),
    );
    m.run_cycles(2_000_000);
    let before = m.hierarchy().stats();
    let r0 = m.stats().total_retired();
    m.run_cycles(4_000_000);
    let after = m.hierarchy().stats();
    let retired = m.stats().total_retired() - r0;
    let data = after.data_l2_misses - before.data_l2_misses;
    let walk = after.walk_l2_misses - before.walk_l2_misses;
    let ifetch = after.ifetch_l2_misses - before.ifetch_l2_misses;
    println!(
        "{label:<24} instrs {retired:>9}  data {data:>6}  walk {walk:>5}  ifetch {ifetch:>4}  -> IPM {}",
        retired / (data + walk).max(1)
    );
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .filter(|a| a != "--quick")
        .unwrap_or_else(|| "eon".to_string());
    let base = spec::profile(&name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    run(&format!("{name} baseline"), base.clone());
    let mut p = base.clone();
    p.mem.warm_load_prob = 0.0;
    run(&format!("{name} no-warm"), p);
    let mut p = base.clone();
    p.mem.cold_store_prob = 0.0;
    run(&format!("{name} no-cold-store"), p);
    let mut p = base.clone();
    p.mem.cold_load_prob = 0.0;
    run(&format!("{name} no-cold-load"), p);
    let mut p = base;
    p.mem.warm_load_prob = 0.0;
    p.mem.cold_store_prob = 0.0;
    p.mem.cold_load_prob = 0.0;
    run(&format!("{name} bare"), p);
}
