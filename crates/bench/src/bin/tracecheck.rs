//! Validates a captured `soe-trace/1` JSONL file: wire-format
//! well-formedness plus every stream invariant (cycle order, switch
//! alternation, miss/fill pairing, monotone retire samples).
//!
//! Usage: `tracecheck <trace.jsonl>`. Exits 0 and prints a summary when
//! the trace is valid, 1 with the violation when it is not, and 2 on
//! usage or I/O errors. CI runs this against the smoke capture.

use soe_core::obs::check_jsonl;

fn main() {
    let mut args = std::env::args().skip(1);
    let (path, extra) = (args.next(), args.next());
    let path = match (path, extra) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: tracecheck <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    match check_jsonl(&text) {
        Ok(summary) => {
            println!(
                "{path}: OK — {} events ({} dropped), cycles {}..{}",
                summary.events,
                summary.dropped,
                summary.first_at.unwrap_or(0),
                summary.last_at.unwrap_or(0),
            );
            for (kind, count) in &summary.by_kind {
                println!("  {kind:<18} {count}");
            }
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
