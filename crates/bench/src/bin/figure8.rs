//! Figure 8 — achieved fairness with and without enforcement: per-run
//! values ordered by the F = 0 fairness (left), and the truncated
//! averages `min(F, achieved)` with standard deviations (right).

use soe_bench::{banner, experiments::full_results, save_svg, write_observability, Cli};
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Summary, Table};

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    banner(
        "Figure 8: achieved fairness with and without enforcement",
        sizing,
    );
    write_observability(&cli);
    let results = full_results(sizing, &cli);

    // Order runs by their achieved fairness without enforcement, as the
    // paper does.
    let mut order: Vec<usize> = (0..results.pairs.len()).collect();
    order.sort_by(|a, b| {
        results.pairs[*a].runs[0]
            .fairness
            .partial_cmp(&results.pairs[*b].runs[0].fairness)
            .expect("finite fairness")
    });

    let mut t = Table::new(vec![
        "pair (ordered by F=0 fairness)".into(),
        "F=0".into(),
        "F=1/4".into(),
        "F=1/2".into(),
        "F=1".into(),
    ]);
    for c in 1..5 {
        t.align(c, Align::Right);
    }
    for idx in &order {
        let p = &results.pairs[*idx];
        t.row(vec![
            p.label.clone(),
            fnum(p.runs[0].fairness, 3),
            fnum(p.runs[1].fairness, 3),
            fnum(p.runs[2].fairness, 3),
            fnum(p.runs[3].fairness, 3),
        ]);
    }
    println!("{t}");

    let mut svg_series = Vec::new();
    for (i, f) in FairnessLevel::paper_levels().iter().enumerate() {
        let mut ts = soe_stats::TimeSeries::new(f.label());
        for (rank, idx) in order.iter().enumerate() {
            ts.push(rank as f64, results.pairs[*idx].runs[i].fairness);
        }
        svg_series.push(ts);
    }
    save_svg(
        "figure8",
        &soe_stats::svg::line_chart(
            &svg_series,
            "Figure 8: achieved fairness per run (ordered by F=0 fairness)",
            "run (ordered by F=0 fairness)",
            "achieved fairness",
        ),
    );

    // Right panel: average of min(F, achieved) — truncation removes the
    // bias of runs that are fair even without enforcement.
    println!("\nAverage achieved fairness, truncated to the target (right panel):");
    for (i, f) in FairnessLevel::paper_levels().iter().enumerate() {
        let s: Summary = results
            .pairs
            .iter()
            .map(|p| {
                let a = p.runs[i].fairness;
                if f.is_enforced() {
                    a.min(f.get())
                } else {
                    a
                }
            })
            .collect();
        println!(
            "  {}: mean {:.3}, std {:.3}{}",
            f.label(),
            s.mean(),
            s.std_dev(),
            if f.is_enforced() {
                format!("  (target {:.2})", f.get())
            } else {
                String::new()
            }
        );
    }

    // The abstract's headline: over a third of F=0 runs are badly unfair.
    let bad = results
        .pairs
        .iter()
        .filter(|p| p.runs[0].fairness < 0.1)
        .count();
    println!(
        "\n{} of {} F=0 runs have fairness < 0.1 (paper: over a third of runs, \
         one thread 10-100x slower)",
        bad,
        results.pairs.len()
    );
    for p in &results.pairs {
        let r = &p.runs[0];
        if r.fairness < 0.1 {
            let slow = r
                .threads
                .iter()
                .map(|t| 1.0 / t.speedup.max(1e-9))
                .fold(0.0f64, f64::max);
            println!(
                "  {}: fairness {:.3}, slowest thread {:.0}x slower",
                p.label, r.fairness, slow
            );
        }
    }
}
