//! Figure 7 — throughput degradation caused by fairness enforcement
//! (normalized to F = 0) and forced thread switches per 1 000 cycles.

use soe_bench::{banner, experiments::full_results, save_svg, write_observability, Cli};
use soe_stats::{fnum, pearson, Align, Summary, Table};

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    banner(
        "Figure 7: throughput degradation and forced switches per 1000 cycles",
        sizing,
    );
    write_observability(&cli);
    let results = full_results(sizing, &cli);

    let mut t = Table::new(vec![
        "pair".into(),
        "rel F=1/4".into(),
        "rel F=1/2".into(),
        "rel F=1".into(),
        "fsw/kc F=1/4".into(),
        "fsw/kc F=1/2".into(),
        "fsw/kc F=1".into(),
    ]);
    for c in 1..7 {
        t.align(c, Align::Right);
    }
    let mut rel = [Summary::new(), Summary::new(), Summary::new()];
    for p in &results.pairs {
        let base = p.runs[0].throughput;
        let mut row = vec![p.label.clone()];
        for i in 1..4 {
            let r = p.runs[i].throughput / base;
            rel[i - 1].push(r);
            row.push(fnum(r, 4));
        }
        for i in 1..4 {
            row.push(fnum(p.runs[i].forced_per_kcycle, 3));
        }
        t.row(row);
    }
    println!("{t}");

    save_svg(
        "figure7",
        &soe_stats::svg::bar_chart(
            &rel.iter()
                .zip(["F=1/4", "F=1/2", "F=1"])
                .map(|(s, l)| (l.to_string(), (1.0 - s.mean()) * 100.0))
                .collect::<Vec<_>>(),
            "Figure 7: average throughput degradation vs F",
            "degradation (%)",
        ),
    );
    println!("\nAverage throughput degradation (paper: 2.2%, 3.7%, 7.2%):");
    for (s, label) in rel.iter().zip(["F=1/4", "F=1/2", "F=1"]) {
        println!(
            "  {label}: {:.1}% (worst pair {:.1}%)",
            (1.0 - s.mean()) * 100.0,
            (1.0 - s.min().unwrap_or(1.0)) * 100.0
        );
    }

    // Correlation between forced switches and throughput loss, which the
    // paper calls out as high. Pairs where enforcement *helps* (the
    // Figure 3 improvement region, e.g. swim:bzip2) anticorrelate, so the
    // strength is reported both with and without them.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut xs_deg = Vec::new();
    let mut ys_deg = Vec::new();
    for p in &results.pairs {
        let base = p.runs[0].throughput;
        let improves = p.runs[3].throughput > base;
        for i in 1..4 {
            let x = p.runs[i].forced_per_kcycle;
            let y = 1.0 - p.runs[i].throughput / base;
            xs.push(x);
            ys.push(y);
            if !improves {
                xs_deg.push(x);
                ys_deg.push(y);
            }
        }
    }
    println!(
        "\ncorrelation(forced switches per kcycle, throughput loss) = {:.2} over all pairs,\n\
         {:.2} over degrading pairs (paper: \"high correlation\")",
        pearson(&xs, &ys),
        pearson(&xs_deg, &ys_deg)
    );
}
