//! Figure 5 — detailed examination of the gcc:eon pair: estimated vs
//! real single-thread IPC (top), per-thread speedups with and without
//! enforcement (middle), and achieved fairness over time (bottom),
//! with fairness enforced to F = 1/4.

use soe_bench::{banner, run_config, run_supervised, save_svg, write_observability, Cli};
use soe_core::pool::Job;
use soe_core::runner::try_run_single;
use soe_core::timeseries::{estimated_ipc_st_series, fairness_series, speedup_series};
use soe_core::{FairnessConfig, FairnessPolicy, SingleRun, WindowRecord};
use soe_model::FairnessLevel;
use soe_sim::Machine;
use soe_stats::chart::line_chart;
use soe_workloads::Pair;

/// The three independent measurements behind the figure.
enum Task {
    Singles,
    Records(FairnessLevel),
}

enum Measured {
    Singles([SingleRun; 2]),
    Records(Vec<WindowRecord>),
}

fn run_with_records(
    pair: &Pair,
    f: FairnessLevel,
    cfg: &soe_core::runner::RunConfig,
) -> Result<Vec<WindowRecord>, String> {
    // A dedicated run that keeps the policy alive so its history can be
    // extracted afterwards.
    let fairness = FairnessConfig {
        target: f,
        record_history: true,
        ..cfg.fairness
    };
    let mut m = Machine::new(
        cfg.machine,
        pair.boxed_traces(),
        Box::new(FairnessPolicy::new(2, fairness)),
    );
    m.try_run_cycles(cfg.warmup_cycles, cfg.stall_window)
        .map_err(|e| e.to_string())?;
    m.try_run_cycles(cfg.measure_cycles, cfg.stall_window)
        .map_err(|e| e.to_string())?;
    Ok(m.policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<FairnessPolicy>())
        .expect("fairness policy")
        .records()
        .to_vec())
}

/// Rebuilds a series under a new display name (for combined charts).
fn rename(ts: soe_stats::TimeSeries, name: &str) -> soe_stats::TimeSeries {
    let mut out = soe_stats::TimeSeries::new(name);
    for (x, y) in ts.iter() {
        out.push(x, y);
    }
    out
}

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    banner(
        "Figure 5: gcc:eon — IPC_ST estimation, speedups and achieved fairness (F = 1/4)",
        sizing,
    );
    write_observability(&cli);
    let cfg = run_config(sizing);
    let pair = Pair { a: "gcc", b: "eon" };

    // The references and the two recorded runs are independent; run
    // them supervised. Order is preserved, so destructuring below is
    // safe.
    let jobs = vec![
        Job::new("singles-gcc,eon".to_string(), Task::Singles),
        Job::new(
            "records@F=0".to_string(),
            Task::Records(FairnessLevel::NONE),
        ),
        Job::new(
            "records@F=1/4".to_string(),
            Task::Records(FairnessLevel::QUARTER),
        ),
    ];
    let job_pair = pair.clone();
    let mut out = run_supervised(jobs, &cli, move |task| match task {
        Task::Singles => {
            let (a, b) = job_pair.traces();
            Ok(Measured::Singles([
                try_run_single(Box::new(a), &cfg).map_err(|e| e.to_string())?,
                try_run_single(Box::new(b), &cfg).map_err(|e| e.to_string())?,
            ]))
        }
        Task::Records(f) => Ok(Measured::Records(run_with_records(&job_pair, *f, &cfg)?)),
    })
    .into_iter();
    let (
        Some(Measured::Singles(singles)),
        Some(Measured::Records(recs_f0)),
        Some(Measured::Records(recs_fq)),
    ) = (out.next(), out.next(), out.next())
    else {
        unreachable!("pool preserves submission order");
    };

    let ipc_st_real = [singles[0].ipc_st, singles[1].ipc_st];
    println!(
        "real IPC_ST: gcc = {:.3}, eon = {:.3}\n",
        ipc_st_real[0], ipc_st_real[1]
    );

    println!("--- top panel: estimated IPC_ST while running in SOE (F = 1/4) ---");
    for ts in estimated_ipc_st_series(&recs_fq, &["gcc", "eon"]) {
        println!("{}\n", line_chart(&ts, 6, 64));
        println!(
            "   mean estimate {:.3} (real {:.3})\n",
            ts.mean_y(),
            if ts.name().contains("gcc") {
                ipc_st_real[0]
            } else {
                ipc_st_real[1]
            }
        );
    }

    println!("--- middle panel: per-thread speedups ---");
    for (label, recs) in [("F=0", &recs_f0), ("F=1/4", &recs_fq)] {
        println!("[{label}]");
        for ts in speedup_series(recs, &["gcc", "eon"], &ipc_st_real) {
            println!(
                "  {}: mean speedup {:.3} (min {:.3}, max {:.3})",
                ts.name(),
                ts.mean_y(),
                ts.min_y().unwrap_or(0.0),
                ts.max_y().unwrap_or(0.0)
            );
        }
    }

    println!("\n--- bottom panel: achieved fairness over time ---");
    for (label, recs) in [("F=0", &recs_f0), ("F=1/4", &recs_fq)] {
        let ts = fairness_series(recs, &ipc_st_real);
        println!("[{label}] mean achieved fairness {:.3}", ts.mean_y());
        println!("{}\n", line_chart(&ts, 6, 64));
    }

    save_svg(
        "figure5_estimates",
        &soe_stats::svg::line_chart(
            &estimated_ipc_st_series(&recs_fq, &["gcc", "eon"]),
            "Figure 5 (top): estimated IPC_ST under SOE, F = 1/4",
            "cycle",
            "estimated IPC_ST",
        ),
    );
    save_svg(
        "figure5_speedups",
        &soe_stats::svg::line_chart(
            &speedup_series(&recs_fq, &["gcc", "eon"], &ipc_st_real),
            "Figure 5 (middle): per-thread speedups, F = 1/4",
            "cycle",
            "speedup",
        ),
    );
    save_svg(
        "figure5_fairness",
        &soe_stats::svg::line_chart(
            &[
                {
                    let mut t = fairness_series(&recs_f0, &ipc_st_real);
                    t = rename(t, "F=0");
                    t
                },
                {
                    let mut t = fairness_series(&recs_fq, &ipc_st_real);
                    t = rename(t, "F=1/4");
                    t
                },
            ],
            "Figure 5 (bottom): achieved fairness over time",
            "cycle",
            "achieved fairness",
        ),
    );

    let gcc_f0: f64 = speedup_series(&recs_f0, &["gcc", "eon"], &ipc_st_real)[0].mean_y();
    let gcc_fq: f64 = speedup_series(&recs_fq, &["gcc", "eon"], &ipc_st_real)[0].mean_y();
    println!(
        "gcc speedup improves {:.1}x when fairness is enforced to 1/4 \
         (paper: \"20 times faster than without fairness enforcement\")",
        gcc_fq / gcc_f0.max(1e-9)
    );
}
