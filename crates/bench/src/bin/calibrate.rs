//! Workload calibration: runs every named profile alone on the simulated
//! machine and reports its measured single-thread characteristics
//! (`IPC_ST`, `IPM`, branch mispredict rate, cache miss rates), next to
//! the profile's targets.
//!
//! Not a paper table per se, but the ground truth behind the DESIGN.md
//! substitution argument: the profiles must span the same
//! (IPC, IPM) spectrum as the SPEC workloads the paper used.

use soe_bench::{banner, run_config, sizing_from_args};
use soe_core::runner::run_single;
use soe_sim::{Machine, MachineConfig, NeverSwitch};
use soe_stats::{fnum, Align, Table};
use soe_workloads::{spec, SyntheticTrace};

fn main() {
    let sizing = sizing_from_args();
    banner("Workload calibration (single-thread references)", sizing);
    let cfg = run_config(sizing);

    let mut table = Table::new(vec![
        "benchmark".into(),
        "IPC_ST".into(),
        "IPM (measured)".into(),
        "IPM (target)".into(),
        "CPM (derived)".into(),
        "mispredict %".into(),
        "L1D miss %".into(),
        "L2 miss %".into(),
    ]);
    for c in 1..8 {
        table.align(c, Align::Right);
    }

    for name in spec::NAMES {
        let Some(profile) = spec::profile(name) else {
            eprintln!("error: spec::NAMES lists {name:?} but spec::profile does not know it");
            std::process::exit(1);
        };
        let target_ipm = profile.target_ipm();
        let trace = SyntheticTrace::new(profile, 0x10_0000_0000, 0);

        // Full single run for IPC/IPM.
        let s = run_single(Box::new(trace.clone()), &cfg);

        // A second short run for the microarchitectural rates.
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![Box::new(trace)],
            Box::new(NeverSwitch::new()),
        );
        m.run_cycles(cfg.warmup_cycles + cfg.measure_cycles / 2);
        let mp = m.predictor_stats().mispredict_rate() * 100.0;
        let l1d = m.hierarchy().l1d_stats().miss_rate() * 100.0;
        let l2 = m.hierarchy().l2_stats().miss_rate() * 100.0;

        let cpm =
            s.cycles as f64 / s.l2_misses.max(1) as f64 - 300.0 * (s.l2_misses > 0) as u64 as f64;
        table.row(vec![
            s.name.clone(),
            fnum(s.ipc_st, 3),
            fnum(s.ipm, 0),
            fnum(target_ipm, 0),
            fnum(cpm.max(0.0), 0),
            fnum(mp, 2),
            fnum(l1d, 2),
            fnum(l2, 2),
        ]);
    }
    println!("{table}");
    println!("CPM derived as cycles/miss minus the 300-cycle memory latency.");
}
