//! soe-perf — host-performance benchmark harness.
//!
//! Measures how fast the simulator runs on the host (Msim-cycles/s and
//! retired KIPS) over a fixed, deterministic workload roster, and
//! writes the measurements as `BENCH_10.json` for cross-commit
//! comparison. Simulated results are untouched by definition: the
//! roster reuses the ordinary runners; only wall-clock is added.
//!
//! `--profile` switches to a diagnostic mode that runs the roster once
//! on directly-constructed machines and reports the event calendar's
//! per-kind counters (scheduled, dispatched, superseded) plus dispatch
//! rates — the observability window into the discrete-event core.
//!
//! Host timing (`std::time::Instant`) is allowed here — soe-lint bans
//! it in the `sim`/`core` crates so simulated behaviour can never
//! depend on the host clock, and the bench crate is the one place
//! wall-clock measurement belongs.
//!
//! # Output schema (`soe-perf/v1`)
//!
//! ```json
//! {
//!   "schema": "soe-perf/v1",
//!   "quick": false,
//!   "repeats": 3,
//!   "entries": [
//!     { "name": "pair:gcc:eon@F=0", "kind": "pair",
//!       "sim_cycles": 4500000, "retired": 5100000, "wall_s": 0.81,
//!       "msim_cycles_per_s": 5.55, "retired_kips": 6296.3 }
//!   ],
//!   "totals": { "name": "totals", "kind": "totals", "...": "..." }
//! }
//! ```
//!
//! Each entry's `wall_s` is the **minimum** over `repeats` runs (the
//! least-noise estimator for a deterministic workload); `sim_cycles`
//! and `retired` count one run's simulated work (for pair entries,
//! the two single-thread references plus the pair run). `totals` sums
//! the roster. Compare two commits by checking out each, running
//! `cargo run --release --bin perf`, and diffing `msim_cycles_per_s`;
//! the harness also prints an informational comparison against the
//! committed `BENCH_10.json` (or `--baseline PATH`) when one exists.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use soe_core::runner::{try_run_pair, try_run_single, RunConfig};
use soe_model::FairnessLevel;
use soe_workloads::pairs::{paper_pairs, Pair};

const SCHEMA: &str = "soe-perf/v1";
const DEFAULT_OUT: &str = "BENCH_10.json";

const USAGE: &str = "\
soe-perf: host-throughput benchmark over a fixed workload roster

USAGE: perf [--quick] [--repeats N] [--out PATH] [--baseline PATH]
            [--gate PCT] [--profile]

  --quick          1 repeat per roster entry (CI sizing; default 3)
  --repeats N      explicit repeat count (minimum wall time wins)
  --out PATH       where to write the JSON report (default BENCH_10.json)
  --baseline PATH  compare against this report (default BENCH_10.json)
  --gate PCT       exit nonzero unless roster totals are within ±PCT%
                   of the baseline (the CI regression gate); requires
                   a readable baseline report
  --profile        report per-event-kind calendar counters over the
                   roster instead of measuring throughput (no JSON)";

/// One measured roster entry (also reused for the roster totals).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    name: String,
    kind: String,
    sim_cycles: u64,
    retired: u64,
    wall_s: f64,
    msim_cycles_per_s: f64,
    retired_kips: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    quick: bool,
    repeats: usize,
    entries: Vec<Entry>,
    totals: Entry,
}

fn entry(name: String, kind: &str, sim_cycles: u64, retired: u64, wall_s: f64) -> Entry {
    Entry {
        name,
        kind: kind.to_string(),
        sim_cycles,
        retired,
        wall_s: round3(wall_s),
        msim_cycles_per_s: round3(sim_cycles as f64 / wall_s / 1e6),
        retired_kips: round3(retired as f64 / wall_s / 1e3),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("soe-perf: {msg}");
    std::process::exit(1);
}

fn find_pair<'a>(pairs: &'a [Pair], label: &str) -> &'a Pair {
    pairs
        .iter()
        .find(|p| p.label() == label)
        .unwrap_or_else(|| die(&format!("roster pair {label} missing from paper_pairs()")))
}

/// Runs one single-thread roster workload; returns (sim_cycles, retired).
fn run_single_entry(pair: &Pair, cfg: &RunConfig) -> (u64, u64) {
    let (a, _) = pair.traces();
    let r = try_run_single(Box::new(a), cfg)
        .unwrap_or_else(|e| die(&format!("single {}: {e}", pair.a)));
    (r.cycles, r.retired)
}

/// Runs one SOE pair roster workload (singles + pair, as an experiment
/// would); returns (sim_cycles, retired) across all three runs.
fn run_pair_entry(pair: &Pair, f: FairnessLevel, cfg: &RunConfig) -> (u64, u64) {
    let (a, b) = pair.traces();
    let singles = [
        try_run_single(Box::new(a), cfg)
            .unwrap_or_else(|e| die(&format!("pair {} singles: {e}", pair.label()))),
        try_run_single(Box::new(b), cfg)
            .unwrap_or_else(|e| die(&format!("pair {} singles: {e}", pair.label()))),
    ];
    let r = try_run_pair(pair, f, &singles, cfg)
        .unwrap_or_else(|e| die(&format!("pair {}: {e}", pair.label())));
    let retired: u64 = r.threads.iter().map(|t| t.retired).sum();
    (
        singles[0].cycles + singles[1].cycles + r.cycles,
        singles[0].retired + singles[1].retired + retired,
    )
}

fn main() {
    let mut repeats: usize = 3;
    let mut out = DEFAULT_OUT.to_string();
    let mut baseline = DEFAULT_OUT.to_string();
    let mut profile = false;
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--quick" => repeats = 1,
            "--profile" => profile = true,
            "--repeats" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--repeats needs a value"));
                repeats = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    die(&format!("--repeats expects a positive count, got {v:?}"))
                });
            }
            "--gate" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--gate needs a percentage"));
                gate = Some(
                    v.parse()
                        .ok()
                        .filter(|&p: &f64| p > 0.0)
                        .unwrap_or_else(|| {
                            die(&format!("--gate expects a positive percentage, got {v:?}"))
                        }),
                );
            }
            "--out" => out = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--baseline" => {
                baseline = args
                    .next()
                    .unwrap_or_else(|| die("--baseline needs a path"));
            }
            other => die(&format!("unknown flag {other:?} (try --help)")),
        }
    }

    let previous = load_report(&baseline);
    let cfg = RunConfig::quick();
    let pairs = paper_pairs();

    if profile {
        run_calendar_profile(&pairs, &cfg);
        return;
    }

    // The fixed roster: two contrasting single-thread workloads
    // (memory-bound swim, branchy gcc) and two SOE pairs at F = 0 and
    // an enforced F = 1/2, exercising the stall/jump path, the switch
    // machinery and the fairness engine. Deliberately small and
    // stable: the value of a trajectory of `BENCH_*.json` files lies
    // in every commit measuring the same work.
    type Job<'a> = (String, &'static str, Box<dyn Fn() -> (u64, u64) + 'a>);
    let jobs: Vec<Job<'_>> = vec![
        {
            let p = find_pair(&pairs, "swim:bzip2");
            (
                format!("single:{}", p.a),
                "single",
                Box::new(move || run_single_entry(p, &cfg)),
            )
        },
        {
            let p = find_pair(&pairs, "gcc:eon");
            (
                format!("single:{}", p.a),
                "single",
                Box::new(move || run_single_entry(p, &cfg)),
            )
        },
        {
            let p = find_pair(&pairs, "gcc:eon");
            let f = FairnessLevel::NONE;
            (
                format!("pair:{}@{}", p.label(), f.label()),
                "pair",
                Box::new(move || run_pair_entry(p, f, &cfg)),
            )
        },
        {
            let p = find_pair(&pairs, "art:eon");
            let f = FairnessLevel::HALF;
            (
                format!("pair:{}@{}", p.label(), f.label()),
                "pair",
                Box::new(move || run_pair_entry(p, f, &cfg)),
            )
        },
    ];

    println!("soe-perf: {repeats} repeat(s) per entry, minimum wall time wins\n");
    let mut entries = Vec::new();
    for (name, kind, run) in jobs {
        let mut best: Option<(f64, u64, u64)> = None;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let (cycles, retired) = run();
            let wall = t0.elapsed().as_secs_f64();
            if best.is_none_or(|(w, _, _)| wall < w) {
                best = Some((wall, cycles, retired));
            }
        }
        let (wall_s, sim_cycles, retired) = best.unwrap_or_else(|| die("no repeats ran"));
        let e = entry(name, kind, sim_cycles, retired, wall_s);
        report_line(&e, previous.as_ref());
        entries.push(e);
    }

    let totals = entry(
        "totals".into(),
        "totals",
        entries.iter().map(|e| e.sim_cycles).sum(),
        entries.iter().map(|e| e.retired).sum(),
        entries.iter().map(|e| e.wall_s).sum(),
    );
    println!();
    report_line(&totals, previous.as_ref());

    let report = Report {
        schema: SCHEMA.to_string(),
        quick: repeats == 1,
        repeats,
        entries,
        totals,
    };
    let mut json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| die(&format!("{e}")));
    json.push('\n');
    match soe_core::atomic_write(std::path::Path::new(&out), json.as_bytes()) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => die(&format!("writing {out}: {e}")),
    }

    if let Some(tol) = gate {
        let old = previous
            .as_ref()
            .map(|p| p.totals.msim_cycles_per_s)
            .unwrap_or_else(|| {
                die(&format!(
                    "--gate needs a readable {SCHEMA} baseline at {baseline}"
                ))
            });
        let delta = (report.totals.msim_cycles_per_s / old - 1.0) * 100.0;
        if delta < -tol {
            die(&format!(
                "gate: totals {delta:+.1}% vs baseline {old:.2} Msim-cycles/s \
                 breaches the -{tol}% floor — performance regression"
            ));
        }
        if delta > tol {
            die(&format!(
                "gate: totals {delta:+.1}% vs baseline {old:.2} Msim-cycles/s \
                 breaches the +{tol}% ceiling — rebaseline {baseline} so the \
                 gate keeps measuring against the current engine"
            ));
        }
        println!("gate: totals {delta:+.1}% vs baseline, within ±{tol}%");
    }
}

/// `--profile`: runs the measurement roster once on directly
/// constructed machines and prints the event calendar's per-kind
/// counters — how many entries each kind scheduled, how many the
/// machine actually dispatched, how many were superseded by a
/// tighter reschedule before coming due, and the dispatch rate per
/// thousand simulated cycles. Purely diagnostic: no JSON is written
/// and no wall-clock is measured.
fn run_calendar_profile(pairs: &[Pair], cfg: &RunConfig) {
    use soe_core::{FairnessConfig, FairnessPolicy};
    use soe_sim::calendar::ALL_KINDS;
    use soe_sim::{Machine, NeverSwitch, TraceSource};

    let cycles = cfg.warmup_cycles + cfg.measure_cycles;
    println!("soe-perf --profile: calendar counters over {cycles} cycles per entry\n");

    let mut machines: Vec<(String, Machine)> = Vec::new();
    for label in ["swim:bzip2", "gcc:eon"] {
        let p = find_pair(pairs, label);
        let (a, _) = p.traces();
        let trace: Box<dyn TraceSource> = Box::new(a);
        machines.push((
            format!("single:{}", p.a),
            Machine::new(cfg.machine, vec![trace], Box::new(NeverSwitch::new())),
        ));
    }
    for (label, f) in [
        ("gcc:eon", FairnessLevel::NONE),
        ("art:eon", FairnessLevel::HALF),
    ] {
        let p = find_pair(pairs, label);
        let fairness = FairnessConfig {
            target: f,
            ..cfg.fairness
        };
        let policy = FairnessPolicy::new(2, fairness);
        machines.push((
            format!("pair:{}@{}", p.label(), f.label()),
            Machine::new(cfg.machine, p.boxed_traces(), Box::new(policy)),
        ));
    }

    for (name, mut m) in machines {
        m.try_run_cycles(cycles, cfg.stall_window)
            .unwrap_or_else(|e| die(&format!("profile {name}: {e}")));
        let stats = m.calendar_stats();
        println!("  {name}");
        println!(
            "    {:<14} {:>10} {:>11} {:>11} {:>12}",
            "kind", "scheduled", "dispatched", "superseded", "disp/1k-cyc"
        );
        let (mut sch, mut dis, mut sup) = (0u64, 0u64, 0u64);
        // ALL_KINDS is declared in rank order, so the enumeration
        // index doubles as the `kinds` table index.
        for (rank, kind) in ALL_KINDS.into_iter().enumerate() {
            let k = stats.kinds[rank];
            sch += k.scheduled;
            dis += k.dispatched;
            sup += k.superseded;
            println!(
                "    {:<14} {:>10} {:>11} {:>11} {:>12.3}",
                kind.name(),
                k.scheduled,
                k.dispatched,
                k.superseded,
                k.dispatched as f64 * 1000.0 / cycles as f64,
            );
        }
        println!(
            "    {:<14} {:>10} {:>11} {:>11} {:>12.3}\n",
            "total",
            sch,
            dis,
            sup,
            dis as f64 * 1000.0 / cycles as f64,
        );
    }
}

fn report_line(e: &Entry, previous: Option<&Report>) {
    let vs = previous
        .and_then(|p| baseline_rate(p, &e.name))
        .map(|old| {
            let delta = (e.msim_cycles_per_s / old - 1.0) * 100.0;
            format!("  ({delta:+.1}% vs baseline {old:.2})")
        })
        .unwrap_or_default();
    println!(
        "  {:<24} {:>8.2}s  {:>8.2} Msim-cycles/s  {:>9.1} retired KIPS{vs}",
        e.name, e.wall_s, e.msim_cycles_per_s, e.retired_kips
    );
}

fn baseline_rate(report: &Report, name: &str) -> Option<f64> {
    if name == "totals" {
        return Some(report.totals.msim_cycles_per_s);
    }
    report
        .entries
        .iter()
        .find(|e| e.name == name)
        .map(|e| e.msim_cycles_per_s)
}

fn load_report(path: &str) -> Option<Report> {
    let data = std::fs::read_to_string(path).ok()?;
    let report: Report = serde_json::from_str(&data).ok()?;
    (report.schema == SCHEMA).then_some(report)
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}
