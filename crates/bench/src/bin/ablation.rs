//! Ablation study: sensitivity of the mechanism to its design
//! parameters — the recalculation period Δ, the maximum-cycles quota,
//! the deficit leftover cap, and the hardware switch (drain) latency.
//!
//! The paper fixes Δ = 250 000, quota = 50 000 and a ~25-cycle switch;
//! this binary shows those are reasonable points, not magic ones.

use soe_bench::{banner, run_config, sizing_from_args};
use soe_core::runner::{run_pair_with_policy, run_singles, RunConfig};
use soe_core::{FairnessConfig, FairnessPolicy};
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Table};
use soe_workloads::Pair;

fn run_with(
    pair: &Pair,
    singles: &[soe_core::SingleRun],
    cfg: &RunConfig,
    fairness: FairnessConfig,
) -> soe_core::PairRun {
    run_pair_with_policy(
        pair,
        Box::new(FairnessPolicy::new(2, fairness)),
        singles,
        cfg,
        Some(fairness.target),
    )
}

fn main() {
    let sizing = sizing_from_args();
    banner(
        "Ablation: mechanism parameter sensitivity (swim:eon, F = 1/2)",
        sizing,
    );
    let base_cfg = run_config(sizing);
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let singles = run_singles(&pair, &base_cfg);

    let base_fairness = FairnessConfig {
        target: FairnessLevel::HALF,
        ..base_cfg.fairness
    };

    let mut t = Table::new(vec![
        "variant".into(),
        "throughput".into(),
        "fairness".into(),
        "forced sw".into(),
        "avg sw lat".into(),
    ]);
    for c in 1..5 {
        t.align(c, Align::Right);
    }
    let mut add = |label: String, r: &soe_core::PairRun| {
        t.row(vec![
            label,
            fnum(r.throughput, 3),
            fnum(r.fairness, 3),
            r.forced_switches.to_string(),
            fnum(r.avg_switch_latency, 1),
        ]);
    };

    // Baseline.
    let r = run_with(&pair, &singles, &base_cfg, base_fairness);
    add("baseline".into(), &r);

    // Δ sensitivity (quota scaled to stay <= Δ/2).
    for delta in [base_fairness.delta / 5, base_fairness.delta * 4] {
        let f = FairnessConfig {
            delta,
            max_cycles_quota: (delta / 4).max(1),
            ..base_fairness
        };
        let r = run_with(&pair, &singles, &base_cfg, f);
        add(format!("delta={delta}"), &r);
    }

    // Max-cycles quota sensitivity.
    for quota in [base_fairness.max_cycles_quota / 5, base_fairness.delta / 2] {
        let f = FairnessConfig {
            max_cycles_quota: quota.max(1),
            ..base_fairness
        };
        let r = run_with(&pair, &singles, &base_cfg, f);
        add(format!("cycle-quota={quota}"), &r);
    }

    // Deficit leftover cap.
    for cap in [1.0, 8.0] {
        let f = FairnessConfig {
            deficit_cap: cap,
            ..base_fairness
        };
        let r = run_with(&pair, &singles, &base_cfg, f);
        add(format!("deficit-cap={cap}x"), &r);
    }

    // Hardware drain latency (re-measures singles: the machine changed).
    for drain in [2u64, 20] {
        let mut cfg = base_cfg;
        cfg.machine.soe.drain_latency = drain;
        let singles_d = run_singles(&pair, &cfg);
        let r = run_with(&pair, &singles_d, &cfg, base_fairness);
        add(format!("drain={drain}cy"), &r);
    }

    // Microarchitectural options: predictor organization and store-buffer
    // drain rate (re-measuring singles since the machine changed).
    for kind in [
        soe_sim::config::PredictorKind::Bimodal,
        soe_sim::config::PredictorKind::Tournament,
    ] {
        let mut cfg = base_cfg;
        cfg.machine.predictor.kind = kind;
        let singles_k = run_singles(&pair, &cfg);
        let r = run_with(&pair, &singles_k, &cfg, base_fairness);
        add(format!("predictor={kind:?}"), &r);
    }
    {
        let mut cfg = base_cfg;
        cfg.machine.store_drain_interval = 2;
        let singles_s = run_singles(&pair, &cfg);
        let r = run_with(&pair, &singles_s, &cfg, base_fairness);
        add("store-drain=2cy".into(), &r);
    }

    // Section 6 extensions: measured event latency, and switching on L1
    // misses as an additional event class (paired with measured latency,
    // since L1-event latencies are variable).
    let f = FairnessConfig {
        miss_lat_mode: soe_core::MissLatencyMode::Measured,
        ..base_fairness
    };
    let r = run_with(&pair, &singles, &base_cfg, f);
    add("measured-miss-lat".into(), &r);

    {
        let mut cfg = base_cfg;
        cfg.machine.soe.switch_on_l1_miss = true;
        let singles_l1 = run_singles(&pair, &cfg);
        let f = FairnessConfig {
            miss_lat_mode: soe_core::MissLatencyMode::Measured,
            ..base_fairness
        };
        let r = run_with(&pair, &singles_l1, &cfg, f);
        add("switch-on-L1+measured".into(), &r);
    }

    println!("{t}");
    println!(
        "Expected shape: smaller Δ tracks phases but adds estimation noise; a huge\n\
         cycle quota lets one thread hog entire windows; a tight deficit cap loses\n\
         carried credit; a longer drain raises the cost of every forced switch."
    );
}
