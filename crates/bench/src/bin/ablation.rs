//! Ablation study: sensitivity of the mechanism to its design
//! parameters — the recalculation period Δ, the maximum-cycles quota,
//! the deficit leftover cap, and the hardware switch (drain) latency.
//!
//! The paper fixes Δ = 250 000, quota = 50 000 and a ~25-cycle switch;
//! this binary shows those are reasonable points, not magic ones.

use soe_bench::{banner, run_config, run_supervised, write_observability, Cli};
use soe_core::pool::Job;
use soe_core::runner::{try_run_pair_with_policy, RunConfig};
use soe_core::{FairnessConfig, FairnessPolicy};
use soe_model::FairnessLevel;
use soe_stats::{fnum, Align, Table};
use soe_workloads::Pair;

/// One ablation point: the machine/run configuration, the fairness
/// configuration, and whether the single-thread references must be
/// re-measured because the machine itself changed.
#[derive(Clone, Copy)]
struct Variant {
    cfg: RunConfig,
    fairness: FairnessConfig,
    remeasure_singles: bool,
}

fn run_with(
    pair: &Pair,
    singles: &[soe_core::SingleRun],
    cfg: &RunConfig,
    fairness: FairnessConfig,
) -> Result<soe_core::PairRun, String> {
    try_run_pair_with_policy(
        pair,
        Box::new(FairnessPolicy::new(2, fairness)),
        singles,
        cfg,
        Some(fairness.target),
    )
    .map_err(|e| e.to_string())
}

fn try_singles(pair: &Pair, cfg: &RunConfig) -> Result<[soe_core::SingleRun; 2], String> {
    let (a, b) = pair.traces();
    Ok([
        soe_core::runner::try_run_single(Box::new(a), cfg).map_err(|e| e.to_string())?,
        soe_core::runner::try_run_single(Box::new(b), cfg).map_err(|e| e.to_string())?,
    ])
}

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    banner(
        "Ablation: mechanism parameter sensitivity (swim:eon, F = 1/2)",
        sizing,
    );
    write_observability(&cli);
    let base_cfg = run_config(sizing);
    let pair = Pair {
        a: "swim",
        b: "eon",
    };
    let singles = try_singles(&pair, &base_cfg).unwrap_or_else(|e| {
        eprintln!("error: measuring baseline references: {e}");
        std::process::exit(1);
    });

    let base_fairness = FairnessConfig {
        target: FairnessLevel::HALF,
        ..base_cfg.fairness
    };
    let baseline = Variant {
        cfg: base_cfg,
        fairness: base_fairness,
        remeasure_singles: false,
    };

    // The full variant grid, built up front so every run can go through
    // the pool as one independent job.
    let mut variants: Vec<(String, Variant)> = vec![("baseline".into(), baseline)];

    // Δ sensitivity (quota scaled to stay <= Δ/2).
    for delta in [base_fairness.delta / 5, base_fairness.delta * 4] {
        let fairness = FairnessConfig {
            delta,
            max_cycles_quota: (delta / 4).max(1),
            ..base_fairness
        };
        variants.push((
            format!("delta={delta}"),
            Variant {
                fairness,
                ..baseline
            },
        ));
    }

    // Max-cycles quota sensitivity.
    for quota in [base_fairness.max_cycles_quota / 5, base_fairness.delta / 2] {
        let fairness = FairnessConfig {
            max_cycles_quota: quota.max(1),
            ..base_fairness
        };
        variants.push((
            format!("cycle-quota={quota}"),
            Variant {
                fairness,
                ..baseline
            },
        ));
    }

    // Deficit leftover cap.
    for cap in [1.0, 8.0] {
        let fairness = FairnessConfig {
            deficit_cap: cap,
            ..base_fairness
        };
        variants.push((
            format!("deficit-cap={cap}x"),
            Variant {
                fairness,
                ..baseline
            },
        ));
    }

    // Hardware drain latency (re-measures singles: the machine changed).
    for drain in [2u64, 20] {
        let mut cfg = base_cfg;
        cfg.machine.soe.drain_latency = drain;
        variants.push((
            format!("drain={drain}cy"),
            Variant {
                cfg,
                remeasure_singles: true,
                ..baseline
            },
        ));
    }

    // Microarchitectural options: predictor organization and store-buffer
    // drain rate (re-measuring singles since the machine changed).
    for kind in [
        soe_sim::config::PredictorKind::Bimodal,
        soe_sim::config::PredictorKind::Tournament,
    ] {
        let mut cfg = base_cfg;
        cfg.machine.predictor.kind = kind;
        variants.push((
            format!("predictor={kind:?}"),
            Variant {
                cfg,
                remeasure_singles: true,
                ..baseline
            },
        ));
    }
    {
        let mut cfg = base_cfg;
        cfg.machine.store_drain_interval = 2;
        variants.push((
            "store-drain=2cy".into(),
            Variant {
                cfg,
                remeasure_singles: true,
                ..baseline
            },
        ));
    }

    // Section 6 extensions: measured event latency, and switching on L1
    // misses as an additional event class (paired with measured latency,
    // since L1-event latencies are variable).
    let measured = FairnessConfig {
        miss_lat_mode: soe_core::MissLatencyMode::Measured,
        ..base_fairness
    };
    variants.push((
        "measured-miss-lat".into(),
        Variant {
            fairness: measured,
            ..baseline
        },
    ));
    {
        let mut cfg = base_cfg;
        cfg.machine.soe.switch_on_l1_miss = true;
        variants.push((
            "switch-on-L1+measured".into(),
            Variant {
                cfg,
                fairness: measured,
                remeasure_singles: true,
            },
        ));
    }

    let jobs: Vec<Job<Variant>> = variants
        .iter()
        .map(|(label, v)| Job::new(label.clone(), *v))
        .collect();
    let job_pair = pair.clone();
    let job_singles = singles;
    let runs = run_supervised(jobs, &cli, move |v| {
        if v.remeasure_singles {
            let singles = try_singles(&job_pair, &v.cfg)?;
            run_with(&job_pair, &singles, &v.cfg, v.fairness)
        } else {
            run_with(&job_pair, &job_singles, &v.cfg, v.fairness)
        }
    });

    let mut t = Table::new(vec![
        "variant".into(),
        "throughput".into(),
        "fairness".into(),
        "forced sw".into(),
        "avg sw lat".into(),
    ]);
    for c in 1..5 {
        t.align(c, Align::Right);
    }
    for ((label, _), r) in variants.iter().zip(&runs) {
        t.row(vec![
            label.clone(),
            fnum(r.throughput, 3),
            fnum(r.fairness, 3),
            r.forced_switches.to_string(),
            fnum(r.avg_switch_latency, 1),
        ]);
    }

    println!("{t}");
    println!(
        "Expected shape: smaller Δ tracks phases but adds estimation noise; a huge\n\
         cycle quota lets one thread hog entire windows; a tight deficit cap loses\n\
         carried credit; a longer drain raises the cost of every forced switch."
    );
}
