//! The policy zoo: a fairness-vs-throughput frontier per registered
//! switch discipline, per roster size (2/4/8-way) — the ROADMAP's
//! N-way policy-comparison deliverable.
//!
//! Every cell of the grid (roster size × policy × fairness target)
//! runs the same roster under [`soe_core::runner::try_run_multi_named`]
//! with the registry's uniform F→knob translation, so disciplines are
//! compared at matched aggressiveness, not hand-tuned settings. The
//! results land as deterministic JSON (`policyzoo-{full,quick}.json`):
//! byte-identical across invocations and `--jobs` counts, which CI
//! asserts with a double-run compare.

use soe_bench::{banner, run_config, run_supervised, save_svg, write_observability, Cli, Sizing};
use soe_core::pool::Job;
use soe_core::runner::{try_run_multi_named, try_run_single};
use soe_core::{atomic_write, PairRun, PolicyFactory, SingleRun};
use soe_model::FairnessLevel;
use soe_stats::{fnum, svg, Align, Table, TimeSeries};
use soe_workloads::{spec, SyntheticTrace};

use serde::{Deserialize, Serialize};

/// Eight threads spanning memory-bound hogs-victims (`swim`, `art`,
/// `lucas`, `mcf`, `applu`, `mgrid`) and compute-bound threads that
/// starve under plain SOE (`eon`, `gcc`) — every prefix is an
/// interesting mix.
const ROSTER: [&str; 8] = [
    "swim", "eon", "art", "gcc", "lucas", "mcf", "applu", "mgrid",
];

/// Roster sizes for the frontier (the paper's 2-way plus 4/8-way).
const SIZES: [usize; 3] = [2, 4, 8];

/// One cell of the zoo grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ZooRun {
    /// Registry name of the discipline (`fairness`, `islip`, ...).
    policy: String,
    /// Roster size.
    threads: usize,
    /// Target fairness label (`F=1/2`, ...).
    target: String,
    /// The measured run.
    run: PairRun,
}

/// The complete grid, in deterministic (size, policy, level) order.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ZooResultSet {
    /// Schema tag (`soe-policyzoo/1`).
    schema: String,
    /// Roster used (first `threads` entries per cell).
    roster: Vec<String>,
    /// Single-thread references, in roster order.
    singles: Vec<SingleRun>,
    /// Every grid cell.
    runs: Vec<ZooRun>,
}

fn levels(sizing: Sizing) -> Vec<FairnessLevel> {
    match sizing {
        Sizing::Full => FairnessLevel::paper_levels().to_vec(),
        // Quick keeps the frontier's endpoints and middle.
        Sizing::Quick => vec![
            FairnessLevel::NONE,
            FairnessLevel::HALF,
            FairnessLevel::PERFECT,
        ],
    }
}

fn main() {
    let cli = Cli::parse_or_exit();
    let sizing = cli.sizing;
    banner(
        "Policy zoo: fairness-vs-throughput frontier per discipline",
        sizing,
    );
    write_observability(&cli);
    let cfg = run_config(sizing);
    let factory = PolicyFactory::builtin();
    let policies: Vec<String> = match &cli.policy {
        Some(_) => vec![cli.policy_or_exit("fairness")],
        None => factory.names(),
    };

    // Single-thread references, one per roster slot; seeds are a pure
    // function of the slot, so pooling cannot change them.
    let single_jobs: Vec<Job<usize>> = ROSTER
        .iter()
        .enumerate()
        .map(|(i, name)| Job::new(format!("single/{name}"), i))
        .collect();
    let singles = run_supervised(single_jobs, &cli, move |i| {
        let name = ROSTER[*i];
        let profile = spec::profile(name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        let trace = SyntheticTrace::new(profile, (*i as u64 + 1) * 0x10_0000_0000, 0);
        try_run_single(Box::new(trace), &cfg).map_err(|e| e.to_string())
    });

    // The grid: every (size, policy, level) cell is independent.
    let grid: Vec<(usize, String, FairnessLevel)> = SIZES
        .iter()
        .flat_map(|n| {
            policies
                .iter()
                .flat_map(move |p| levels(sizing).into_iter().map(move |f| (*n, p.clone(), f)))
        })
        .collect();
    let jobs: Vec<Job<(usize, String, FairnessLevel)>> = grid
        .iter()
        .map(|(n, p, f)| Job::new(format!("zoo/{p}/{n}way@{}", f.label()), (*n, p.clone(), *f)))
        .collect();
    let job_singles = singles.clone();
    let runs: Vec<PairRun> = run_supervised(jobs, &cli, move |(n, p, f)| {
        let n = *n;
        // Same per-size scaling as threadsweep: the cycle quota must
        // leave room for every thread within each Δ window, and every
        // thread needs its share of warm-up.
        let mut cfg_n = cfg;
        cfg_n.fairness.max_cycles_quota = cfg
            .fairness
            .max_cycles_quota
            .min(cfg.fairness.delta / (n as u64 + 1));
        cfg_n.warmup_cycles = cfg.warmup_cycles * n as u64;
        let factory = PolicyFactory::builtin();
        try_run_multi_named(&factory, p, &ROSTER[..n], *f, &job_singles[..n], &cfg_n)
            .map_err(|e| e.to_string())
    });

    let set = ZooResultSet {
        schema: "soe-policyzoo/1".to_string(),
        roster: ROSTER.iter().map(ToString::to_string).collect(),
        singles,
        runs: grid
            .iter()
            .zip(&runs)
            .map(|((n, p, f), run)| ZooRun {
                policy: p.clone(),
                threads: *n,
                target: f.label(),
                run: run.clone(),
            })
            .collect(),
    };

    // Frontier tables and figures, one per roster size.
    for n in SIZES {
        let mut t = Table::new(vec![
            "policy".into(),
            "F".into(),
            "fairness".into(),
            "IPC".into(),
            "SOE speedup".into(),
            "forced/kcyc".into(),
            "switches".into(),
        ]);
        for c in 2..7 {
            t.align(c, Align::Right);
        }
        for z in set.runs.iter().filter(|z| z.threads == n) {
            t.row(vec![
                z.policy.clone(),
                z.target.clone(),
                fnum(z.run.fairness, 3),
                fnum(z.run.throughput, 3),
                fnum(z.run.soe_speedup, 3),
                fnum(z.run.forced_per_kcycle, 2),
                z.run.total_switches.to_string(),
            ]);
        }
        println!("\n{n}-way roster: {}", ROSTER[..n].join(":"));
        println!("{t}");

        // Frontier figure: achieved fairness (x) vs throughput (y), one
        // polyline per policy, points ordered by fairness.
        let series: Vec<TimeSeries> = policies
            .iter()
            .map(|p| {
                let mut pts: Vec<(f64, f64)> = set
                    .runs
                    .iter()
                    .filter(|z| z.threads == n && z.policy == *p)
                    .map(|z| (z.run.fairness, z.run.throughput))
                    .collect();
                pts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mut s = TimeSeries::new(p.clone());
                for (x, y) in pts {
                    s.push(x, y);
                }
                s
            })
            .collect();
        save_svg(
            &format!(
                "policyzoo-{n}way{}",
                if sizing == Sizing::Quick {
                    "-quick"
                } else {
                    ""
                }
            ),
            &svg::line_chart(
                &series,
                &format!("Fairness-throughput frontier, {n}-way"),
                "fairness (min speedup ratio)",
                "throughput (IPC)",
            ),
        );
    }

    // Deterministic JSON: the grid order is fixed, so two runs (at any
    // worker count) produce identical bytes — CI compares them.
    let path = std::path::PathBuf::from(
        // soe-lint: allow(determinism-taint): SOE_RESULTS_DIR picks where the results land, not what bytes they contain
        std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
    .join(match sizing {
        Sizing::Full => "policyzoo-full.json",
        Sizing::Quick => "policyzoo-quick.json",
    });
    let json = serde_json::to_string(&set).expect("serialize zoo results");
    match atomic_write(&path, json.as_bytes()) {
        Ok(()) => println!("\n[zoo] wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "Reading the frontier: up and to the right wins. The paper's `fairness`\n\
         mechanism holds throughput while moving right as F grows; fixed-knob\n\
         disciplines (timeslice/islip/wdrr/ban) trade throughput for fairness\n\
         on a steeper curve because they cannot target the lagging thread."
    );
}
