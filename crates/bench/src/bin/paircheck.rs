//! Fast pair-level sanity check: SOE speedup over single-thread at F=0
//! and F=1 for a handful of pairs, with reduced windows. Used while
//! calibrating the workload profiles.

use soe_core::runner::{run_pair, run_singles, RunConfig};
use soe_model::FairnessLevel;
use soe_workloads::Pair;

fn main() {
    let mut cfg = RunConfig::paper();
    cfg.warmup_cycles = 1_000_000;
    cfg.measure_cycles = 3_000_000;
    let pairs = [
        Pair { a: "gcc", b: "gcc" },
        Pair {
            a: "bzip2",
            b: "bzip2",
        },
        Pair {
            a: "swim",
            b: "bzip2",
        },
        Pair { a: "mcf", b: "mcf" },
        Pair { a: "gcc", b: "eon" },
        Pair {
            a: "swim",
            b: "swim",
        },
    ];
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "pair", "ST[0]", "ST[1]", "F0 tput", "F0 spd%", "F1 tput", "F0 fair"
    );
    for pair in pairs {
        let singles = run_singles(&pair, &cfg);
        let f0 = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);
        let f1 = run_pair(&pair, FairnessLevel::PERFECT, &singles, &cfg);
        println!(
            "{:<14} {:>8.3} {:>8.3} {:>9.3} {:>8.1}% {:>9.3} {:>9.3}",
            pair.label(),
            singles[0].ipc_st,
            singles[1].ipc_st,
            f0.throughput,
            (f0.soe_speedup - 1.0) * 100.0,
            f1.throughput,
            f0.fairness,
        );
    }
}
