//! Figure 3 — the analytical fairness/throughput tradeoff: relative
//! throughput as the enforced fairness F sweeps 0 → 1, for thread-pair
//! combinations with different `IPC_no_miss` and `IPM`.

use soe_bench::{banner, save_svg, sizing_from_args};
use soe_model::sweep::{f_sweep, figure3_configs};
use soe_stats::{fnum, Align, Table, TimeSeries};

const STEPS: usize = 20;

fn main() {
    banner(
        "Figure 3: effect of fairness enforcement on throughput (analytical model)",
        sizing_from_args(),
    );

    let configs = figure3_configs();
    let mut t = Table::new(
        std::iter::once("F".to_string())
            .chain(configs.iter().map(|c| c.label.clone()))
            .collect(),
    );
    for c in 0..=configs.len() {
        t.align(c, Align::Right);
    }
    let sweeps: Vec<_> = configs.iter().map(|c| f_sweep(&c.model, STEPS)).collect();
    for i in 0..=STEPS {
        let mut row = vec![fnum(sweeps[0][i].f, 2)];
        for s in &sweeps {
            row.push(fnum(s[i].relative, 4));
        }
        t.row(row);
    }
    println!("{t}");

    println!("\nRelative throughput vs F (1.0 = no enforcement):\n");
    let mut svg_series = Vec::new();
    for (cfg, sweep) in configs.iter().zip(&sweeps) {
        let mut ts = TimeSeries::new(cfg.label.clone());
        for p in sweep {
            ts.push(p.f, p.relative);
        }
        println!("{}\n", soe_stats::chart::line_chart(&ts, 8, 60));
        svg_series.push(ts);
    }
    save_svg(
        "figure3",
        &soe_stats::svg::line_chart(
            &svg_series,
            "Figure 3: throughput vs enforced fairness (analytical model)",
            "enforced fairness F",
            "relative throughput",
        ),
    );

    // The paper's headline observations about this figure.
    let worst_equal: f64 = sweeps[..3]
        .iter()
        .flat_map(|s| s.iter().map(|p| p.relative))
        .fold(1.0, f64::min);
    let best_mixed: f64 = sweeps[3..5]
        .iter()
        .flat_map(|s| s.iter().map(|p| p.relative))
        .fold(0.0, f64::max);
    let worst_mixed: f64 = sweeps[5].iter().map(|p| p.relative).fold(1.0, f64::min);
    println!(
        "equal-IPC pairs degrade at most {:.1}% (paper: up to ~4%)",
        (1.0 - worst_equal) * 100.0
    );
    println!(
        "mixed-IPC pairs can improve up to {:.1}% (paper: up to ~10%)",
        (best_mixed - 1.0) * 100.0
    );
    println!(
        "mixed-IPC pairs can degrade up to {:.1}% (paper: up to ~15%)",
        (1.0 - worst_mixed) * 100.0
    );
}
