//! The shared experiment engine: runs the paper's full evaluation matrix
//! (16 pairs × {F = 0, 1/4, 1/2, 1}, plus the 12 single-thread
//! references) once, and caches the results as JSON so every figure
//! binary can reuse them.
//!
//! The ~76 runs of the matrix are independent, so they are dispatched
//! through the [`soe_core::pool`] engine: single-thread references
//! first (the pair runs need their `IPC_ST` denominators), then every
//! pair × fairness-level combination. Each job derives its traces (and
//! therefore all pseudo-randomness) from its own pair definition alone
//! — nothing depends on scheduling — so any worker count produces a
//! `ResultSet` bit-identical to the serial path, which
//! `tests/determinism.rs` asserts.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use soe_core::pool::{run_jobs, Job};
use soe_core::runner::{run_pair, run_single, RunConfig};
use soe_core::{PairRun, SingleRun};
use soe_model::FairnessLevel;
use soe_workloads::pairs::paper_pairs;

use crate::Sizing;

/// All runs of one pair: the two references plus one run per F level
/// (in [`FairnessLevel::paper_levels`] order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairResults {
    /// `"gcc:eon"`.
    pub label: String,
    /// Single-thread references, in thread order.
    pub singles: Vec<SingleRun>,
    /// SOE runs at F = 0, 1/4, 1/2, 1.
    pub runs: Vec<PairRun>,
}

/// The complete result set behind Figures 6–8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultSet {
    /// Per-pair results, in [`paper_pairs`] order.
    pub pairs: Vec<PairResults>,
}

impl ResultSet {
    /// The run at level `f` for each pair.
    pub fn at_level(&self, f: FairnessLevel) -> Vec<&PairRun> {
        self.pairs
            .iter()
            .map(|p| {
                p.runs
                    .iter()
                    .find(|r| r.target == Some(f))
                    .expect("every pair has every level")
            })
            .collect()
    }
}

fn cache_path(sizing: Sizing) -> PathBuf {
    let dir = std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let name = match sizing {
        Sizing::Full => "experiments-full.json",
        Sizing::Quick => "experiments-quick.json",
    };
    PathBuf::from(dir).join(name)
}

/// Loads the cached result set for `sizing`, or runs the full matrix on
/// `workers` threads and caches it. Pass `force` to ignore an existing
/// cache.
///
/// # Panics
///
/// Panics if the cache file exists but cannot be parsed (delete it), or
/// the cache directory cannot be written.
pub fn full_results(sizing: Sizing, force: bool, workers: usize) -> ResultSet {
    let path = cache_path(sizing);
    if !force {
        if let Ok(json) = fs::read_to_string(&path) {
            match serde_json::from_str::<ResultSet>(&json) {
                Ok(set) => {
                    eprintln!(
                        "[experiments] loaded cached results from {}",
                        path.display()
                    );
                    return set;
                }
                Err(e) => panic!(
                    "corrupt results cache {} ({e}); delete it and re-run",
                    path.display()
                ),
            }
        }
    }
    let set = run_matrix(&crate::run_config(sizing), workers);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create results directory");
    }
    fs::write(
        &path,
        serde_json::to_string(&set).expect("serialize results"),
    )
    .expect("write results cache");
    eprintln!("[experiments] wrote results cache to {}", path.display());
    set
}

/// Runs the full matrix at `cfg` on `workers` threads, without caching.
///
/// Bit-identical to running the matrix serially: every job builds its
/// own traces from explicit seeds (benchmark profile seed, per-thread
/// address-space base, same-benchmark stream offset), so the schedule
/// cannot leak into the results, and the pool reassembles them in
/// submission order.
pub fn run_matrix(cfg: &RunConfig, workers: usize) -> ResultSet {
    let pairs = paper_pairs();

    // Phase 1 — single-thread references, one per distinct benchmark
    // (the paper's 12), in first-appearance order.
    let mut names: Vec<&'static str> = Vec::new();
    for pair in &pairs {
        for name in [pair.a, pair.b] {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    eprintln!(
        "[experiments] {} single-thread references on {workers} worker(s)",
        names.len()
    );
    let single_jobs: Vec<Job<&'static str>> = names
        .iter()
        .map(|name| Job::new(format!("single {name}"), *name))
        .collect();
    let single_runs = run_jobs(single_jobs, workers, |name| {
        let profile = soe_workloads::spec::profile(name).expect("known benchmark");
        let trace = soe_workloads::SyntheticTrace::new(profile, 0x10_0000_0000, 0);
        run_single(Box::new(trace), cfg)
    });
    let singles: HashMap<&'static str, SingleRun> =
        names.iter().copied().zip(single_runs).collect();

    // Phase 2 — every pair × fairness level, flattened into one job
    // list so workers stay busy across pair boundaries.
    let levels = FairnessLevel::paper_levels();
    eprintln!(
        "[experiments] {} pair runs ({} pairs x {} levels) on {workers} worker(s)",
        pairs.len() * levels.len(),
        pairs.len(),
        levels.len()
    );
    let pair_jobs: Vec<Job<(usize, FairnessLevel)>> = pairs
        .iter()
        .enumerate()
        .flat_map(|(index, pair)| {
            levels
                .iter()
                .map(move |f| Job::new(format!("{} @ {}", pair.label(), f.label()), (index, *f)))
        })
        .collect();
    let pairs_ref = &pairs;
    let singles_ref = &singles;
    let flat_runs = run_jobs(pair_jobs, workers, move |(index, f)| {
        let pair = &pairs_ref[*index];
        let pair_singles = [singles_ref[pair.a].clone(), singles_ref[pair.b].clone()];
        run_pair(pair, *f, &pair_singles, cfg)
    });

    // Reassemble in pair order: the pool preserved submission order, so
    // the flat list chunks exactly by level count.
    let out = pairs
        .iter()
        .zip(flat_runs.chunks(levels.len()))
        .map(|(pair, runs)| PairResults {
            label: pair.label(),
            singles: vec![singles[pair.a].clone(), singles[pair.b].clone()],
            runs: runs.to_vec(),
        })
        .collect();
    ResultSet { pairs: out }
}
