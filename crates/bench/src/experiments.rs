//! The shared experiment engine: runs the paper's full evaluation matrix
//! (16 pairs × {F = 0, 1/4, 1/2, 1}, plus the 12 single-thread
//! references) once, and caches the results as JSON so every figure
//! binary can reuse them.
//!
//! The ~76 runs of the matrix are independent, so they are dispatched
//! through the [`soe_core::supervise`] engine: single-thread references
//! first (the pair runs need their `IPC_ST` denominators), then every
//! pair × fairness-level combination. Each job derives its traces (and
//! therefore all pseudo-randomness) from its own pair definition alone
//! — nothing depends on scheduling — so any worker count produces a
//! `ResultSet` bit-identical to the serial path, which
//! `tests/determinism.rs` asserts.
//!
//! Long matrices are crash-safe: every completed run is appended to a
//! checksummed [`Journal`] the moment it finishes, so a killed process
//! loses at most its in-flight runs and `--resume` replays the journal
//! instead of the simulator. Runs that keep failing (or time out under
//! the watchdog) are quarantined into a [`FailureManifest`] and the
//! rest of the matrix still completes.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use soe_core::pool::Job;
use soe_core::runner::{try_run_pair, try_run_single, RunConfig};
use soe_core::{atomic_write, supervise_jobs_with, Journal, SuperviseOptions, SuperviseReport};
pub use soe_core::{FailureManifest, SkippedRun};
use soe_core::{PairRun, SingleRun};
use soe_model::FairnessLevel;
use soe_workloads::pairs::paper_pairs;
use soe_workloads::Pair;

use crate::{Cli, Sizing};

/// All runs of one pair: the two references plus one run per F level
/// (in [`FairnessLevel::paper_levels`] order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairResults {
    /// `"gcc:eon"`.
    pub label: String,
    /// Single-thread references, in thread order.
    pub singles: Vec<SingleRun>,
    /// SOE runs at F = 0, 1/4, 1/2, 1.
    pub runs: Vec<PairRun>,
}

/// The complete result set behind Figures 6–8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultSet {
    /// Per-pair results, in [`paper_pairs`] order.
    pub pairs: Vec<PairResults>,
}

impl ResultSet {
    /// The run at level `f` for each pair.
    pub fn at_level(&self, f: FairnessLevel) -> Vec<&PairRun> {
        self.pairs
            .iter()
            .map(|p| {
                p.runs
                    .iter()
                    .find(|r| r.target == Some(f))
                    .expect("every pair has every level")
            })
            .collect()
    }
}

/// How to execute one matrix: supervision settings plus the optional
/// on-disk journal backing `--resume`.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Watchdog / retry / fault-injection settings.
    pub supervise: SuperviseOptions,
    /// Where to journal completed runs; `None` keeps the matrix purely
    /// in-memory.
    pub journal: Option<PathBuf>,
    /// Reuse completed runs already in the journal. Without this the
    /// journal is truncated and the matrix starts from scratch.
    pub resume: bool,
}

impl MatrixOptions {
    /// The plain in-memory configuration [`run_matrix`] uses: no
    /// journal, no watchdog, no retries, no fault injection — and no
    /// environment sensitivity, so library callers and determinism
    /// tests cannot be perturbed by `SOE_FAULTS`.
    pub fn plain(workers: usize) -> Self {
        let mut supervise = SuperviseOptions::new(workers);
        supervise.retries = 0;
        Self {
            supervise,
            journal: None,
            resume: false,
        }
    }
}

/// The outcome of a supervised matrix: the (possibly partial) results,
/// the failure manifest, and how much work the journal saved.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// Results for every pair whose references and runs all completed,
    /// in [`paper_pairs`] order.
    pub set: ResultSet,
    /// What is missing, if anything.
    pub manifest: FailureManifest,
    /// Runs replayed from the journal instead of simulated.
    pub reused: usize,
    /// Runs actually simulated this invocation.
    pub executed: usize,
}

fn results_dir() -> PathBuf {
    // soe-lint: allow(determinism-taint): SOE_RESULTS_DIR picks where artifacts land, not what bytes they contain
    PathBuf::from(std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()))
}

fn cache_path(sizing: Sizing) -> PathBuf {
    results_dir().join(match sizing {
        Sizing::Full => "experiments-full.json",
        Sizing::Quick => "experiments-quick.json",
    })
}

/// The journal of completed runs for `sizing`
/// (`$SOE_RESULTS_DIR/journal-{full,quick}.log`).
pub fn journal_path(sizing: Sizing) -> PathBuf {
    results_dir().join(match sizing {
        Sizing::Full => "journal-full.log",
        Sizing::Quick => "journal-quick.log",
    })
}

/// The failure manifest for `sizing`
/// (`$SOE_RESULTS_DIR/failures-{full,quick}.json`).
pub fn manifest_path(sizing: Sizing) -> PathBuf {
    results_dir().join(match sizing {
        Sizing::Full => "failures-full.json",
        Sizing::Quick => "failures-quick.json",
    })
}

/// Loads the cached result set for `sizing`, or runs the full matrix
/// under supervision and caches it.
///
/// A corrupt cache is recomputed (with a warning), not fatal. With
/// `--resume`, completed runs are replayed from the journal. If any run
/// is quarantined the partial results are returned, the cache is *not*
/// written, and the failure manifest lands at [`manifest_path`] so the
/// gap is explicit; a later `--resume` re-attempts only what is missing.
pub fn full_results(sizing: Sizing, cli: &Cli) -> ResultSet {
    let path = cache_path(sizing);
    if !cli.force && !cli.resume {
        if let Ok(json) = fs::read_to_string(&path) {
            match serde_json::from_str::<ResultSet>(&json) {
                Ok(set) => {
                    eprintln!(
                        "[experiments] loaded cached results from {}",
                        path.display()
                    );
                    return set;
                }
                Err(e) => eprintln!(
                    "[experiments] corrupt results cache {} ({e}); recomputing",
                    path.display()
                ),
            }
        }
    }
    let opts = MatrixOptions {
        supervise: cli.supervise_options(),
        journal: Some(journal_path(sizing)),
        resume: cli.resume,
    };
    let outcome = run_matrix_supervised(&crate::run_config(sizing), &opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let manifest = manifest_path(sizing);
    if outcome.manifest.is_empty() {
        let json = serde_json::to_string(&outcome.set).expect("serialize results");
        if let Err(e) = atomic_write(&path, json.as_bytes()) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        let _ = fs::remove_file(&manifest);
        eprintln!("[experiments] wrote results cache to {}", path.display());
    } else {
        let json =
            serde_json::to_string_pretty(&outcome.manifest).expect("serialize failure manifest");
        if let Err(e) = atomic_write(&manifest, json.as_bytes()) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "[experiments] matrix incomplete: {} quarantined, {} skipped; \
             manifest at {}; re-run with --resume to retry only the gaps",
            outcome.manifest.quarantined.len(),
            outcome.manifest.skipped.len(),
            manifest.display()
        );
    }
    outcome.set
}

/// Runs the full matrix at `cfg` on `workers` threads, in memory,
/// panicking if any run fails — the simple library entry point.
///
/// Bit-identical to running the matrix serially: every job builds its
/// own traces from explicit seeds (benchmark profile seed, per-thread
/// address-space base, same-benchmark stream offset), so the schedule
/// cannot leak into the results, and the supervisor reassembles them in
/// submission order.
///
/// # Panics
///
/// Panics, listing the failures, if any run panics or errors.
pub fn run_matrix(cfg: &RunConfig, workers: usize) -> ResultSet {
    let outcome = run_matrix_supervised(cfg, &MatrixOptions::plain(workers))
        .expect("in-memory matrix cannot hit journal I/O");
    if !outcome.manifest.is_empty() {
        let lines: Vec<String> = outcome
            .manifest
            .quarantined
            .iter()
            .map(ToString::to_string)
            .chain(
                outcome
                    .manifest
                    .skipped
                    .iter()
                    .map(|s| format!("{} skipped: {}", s.key, s.reason)),
            )
            .collect();
        panic!("experiment matrix failed:\n  {}", lines.join("\n  "));
    }
    outcome.set
}

/// The journal key of a single-thread reference run.
fn single_key(name: &str) -> String {
    format!("single/{name}")
}

/// The journal key of one pair × fairness-level run.
fn pair_key(pair: &Pair, f: FairnessLevel) -> String {
    format!("pair/{}/{}", pair.label(), f.label())
}

/// Runs the matrix under full supervision: journaled resume, per-run
/// watchdogs, retry/quarantine, and (if configured) deterministic fault
/// injection.
///
/// Completed runs are journaled as they finish; with
/// [`MatrixOptions::resume`] they are replayed from the journal without
/// re-simulation, and — because the vendored JSON round-trips floats
/// exactly — the resumed [`ResultSet`] is byte-identical to a fresh
/// uninterrupted run. Quarantined references cascade: the pair runs
/// that would have needed them are skipped (with the reason recorded)
/// rather than attempted with bogus denominators.
///
/// # Errors
///
/// Only journal I/O errors (opening, truncating). Simulation failures
/// never error — they are quarantined into the manifest.
pub fn run_matrix_supervised(
    cfg: &RunConfig,
    opts: &MatrixOptions,
) -> std::io::Result<MatrixOutcome> {
    let pairs = paper_pairs();
    let levels = FairnessLevel::paper_levels();
    let workers = opts.supervise.workers;
    let mut journal = match &opts.journal {
        Some(path) => Some(Journal::open(path)?),
        None => None,
    };
    if let Some(j) = journal.as_mut() {
        if opts.resume {
            let r = j.recovery();
            if r.dropped > 0 {
                eprintln!(
                    "[experiments] journal {}: dropped {} corrupt record(s), kept {}",
                    j.path().display(),
                    r.dropped,
                    r.kept
                );
            }
            eprintln!(
                "[experiments] resuming from {} ({} completed run(s))",
                j.path().display(),
                j.len()
            );
        } else {
            j.reset()?;
        }
        // Arm the journal with the same fault plan as the runs, so an
        // `io:P` class in SOE_FAULTS also exercises the append path
        // (which retries internally before surfacing an error).
        j.set_faults(opts.supervise.faults);
    }
    let mut manifest = FailureManifest::default();
    let mut reused = 0;
    let mut executed = 0;

    // Phase 1 — single-thread references, one per distinct benchmark
    // (the paper's 12), in first-appearance order.
    let mut names: Vec<&'static str> = Vec::new();
    for pair in &pairs {
        for name in [pair.a, pair.b] {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    let mut singles: BTreeMap<&'static str, SingleRun> = BTreeMap::new();
    let mut single_jobs: Vec<Job<&'static str>> = Vec::new();
    for name in &names {
        match replay(journal.as_ref(), opts.resume, &single_key(name)) {
            Some(run) => {
                reused += 1;
                singles.insert(name, run);
            }
            None => single_jobs.push(Job::new(single_key(name), *name)),
        }
    }
    eprintln!(
        "[experiments] {} single-thread references ({} from journal) on {workers} worker(s)",
        names.len(),
        names.len() - single_jobs.len()
    );
    let single_names: Vec<&'static str> = single_jobs.iter().map(|j| j.payload).collect();
    let report = {
        let cfg = *cfg;
        supervise_and_journal(
            single_jobs,
            opts,
            journal.as_mut(),
            |name| single_key(name),
            move |name| {
                let profile = soe_workloads::spec::profile(name)
                    .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
                let trace = soe_workloads::SyntheticTrace::new(profile, 0x10_0000_0000, 0);
                try_run_single(Box::new(trace), &cfg).map_err(|e| e.to_string())
            },
        )
    };
    executed += report.results.iter().flatten().count();
    for (name, run) in single_names.iter().zip(report.results) {
        if let Some(run) = run {
            singles.insert(name, run);
        }
    }
    manifest.quarantined.extend(report.quarantined);

    // Phase 2 — every pair × fairness level, flattened into one job
    // list so workers stay busy across pair boundaries. Pairs whose
    // references failed are skipped, not attempted with missing
    // denominators.
    let mut runs: BTreeMap<String, PairRun> = BTreeMap::new();
    let mut pair_jobs: Vec<Job<(usize, FairnessLevel)>> = Vec::new();
    for (index, pair) in pairs.iter().enumerate() {
        let missing: Vec<&str> = [pair.a, pair.b]
            .into_iter()
            .filter(|n| !singles.contains_key(n))
            .collect();
        for f in &levels {
            let key = pair_key(pair, *f);
            if !missing.is_empty() {
                manifest.skipped.push(SkippedRun {
                    key,
                    reason: format!(
                        "single-thread reference(s) quarantined: {}",
                        missing.join(", ")
                    ),
                });
            } else {
                match replay(journal.as_ref(), opts.resume, &key) {
                    Some(run) => {
                        reused += 1;
                        runs.insert(key, run);
                    }
                    None => pair_jobs.push(Job::new(key, (index, *f))),
                }
            }
        }
    }
    eprintln!(
        "[experiments] {} pair runs ({} pairs x {} levels, {} from journal, {} skipped) \
         on {workers} worker(s)",
        pair_jobs.len(),
        pairs.len(),
        levels.len(),
        runs.len(),
        manifest.skipped.len()
    );
    let job_keys: Vec<String> = pair_jobs.iter().map(|j| j.label.clone()).collect();
    let report = {
        let cfg = *cfg;
        let pairs = pairs.clone();
        let singles = singles.clone();
        let key_of = {
            let pairs = pairs.clone();
            move |&(index, f): &(usize, FairnessLevel)| pair_key(&pairs[index], f)
        };
        supervise_and_journal(
            pair_jobs,
            opts,
            journal.as_mut(),
            key_of,
            move |&(index, f)| {
                let pair = &pairs[index];
                let pair_singles = [singles[pair.a].clone(), singles[pair.b].clone()];
                try_run_pair(pair, f, &pair_singles, &cfg).map_err(|e| e.to_string())
            },
        )
    };
    executed += report.results.iter().flatten().count();
    for (key, run) in job_keys.into_iter().zip(report.results) {
        if let Some(run) = run {
            runs.insert(key, run);
        }
    }
    manifest.quarantined.extend(report.quarantined);

    // Reassemble in pair order, keeping only pairs with a full set of
    // runs — a partial row would make every figure silently wrong.
    let set = ResultSet {
        pairs: pairs
            .iter()
            .filter(|pair| {
                singles.contains_key(pair.a)
                    && singles.contains_key(pair.b)
                    && levels
                        .iter()
                        .all(|f| runs.contains_key(&pair_key(pair, *f)))
            })
            .map(|pair| PairResults {
                label: pair.label(),
                singles: vec![singles[pair.a].clone(), singles[pair.b].clone()],
                runs: levels
                    .iter()
                    .map(|f| runs[&pair_key(pair, *f)].clone())
                    .collect(),
            })
            .collect(),
    };
    Ok(MatrixOutcome {
        set,
        manifest,
        reused,
        executed,
    })
}

/// Replays `key` from the journal if resuming and the payload parses.
/// A payload that fails to parse (schema drift, say) is treated as
/// absent: the run is simply re-simulated.
fn replay<T: Deserialize>(journal: Option<&Journal>, resume: bool, key: &str) -> Option<T> {
    if !resume {
        return None;
    }
    let payload = journal?.get(key)?;
    match serde_json::from_str(payload) {
        Ok(value) => Some(value),
        Err(e) => {
            eprintln!("[experiments] journal record {key} unreadable ({e}); re-running");
            None
        }
    }
}

/// Supervises `jobs`, journaling each result the moment it completes —
/// before the matrix moves on — so a crash loses only in-flight runs.
/// Journal append failures degrade to a warning: the matrix still
/// completes, only resumability suffers.
fn supervise_and_journal<P, R, F>(
    jobs: Vec<Job<P>>,
    opts: &MatrixOptions,
    mut journal: Option<&mut Journal>,
    key_of: impl Fn(&P) -> String,
    f: F,
) -> SuperviseReport<R>
where
    P: Send + Sync + 'static,
    R: Send + Serialize + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    let keys: Vec<String> = jobs.iter().map(|j| key_of(&j.payload)).collect();
    supervise_jobs_with(jobs, &opts.supervise, f, |index, run| {
        if let Some(j) = journal.as_mut() {
            let payload = serde_json::to_string(run).expect("serialize run");
            if let Err(e) = j.append(&keys[index], &payload) {
                eprintln!("[experiments] journal append failed ({e}); continuing unjournaled");
            }
        }
    })
}
