//! The shared experiment engine: runs the paper's full evaluation matrix
//! (16 pairs × {F = 0, 1/4, 1/2, 1}, plus the 12 single-thread
//! references) once, and caches the results as JSON so every figure
//! binary can reuse them.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use soe_core::runner::{run_pair, run_single, RunConfig};
use soe_core::{PairRun, SingleRun};
use soe_model::FairnessLevel;
use soe_workloads::pairs::paper_pairs;

use crate::Sizing;

/// All runs of one pair: the two references plus one run per F level
/// (in [`FairnessLevel::paper_levels`] order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairResults {
    /// `"gcc:eon"`.
    pub label: String,
    /// Single-thread references, in thread order.
    pub singles: Vec<SingleRun>,
    /// SOE runs at F = 0, 1/4, 1/2, 1.
    pub runs: Vec<PairRun>,
}

/// The complete result set behind Figures 6–8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultSet {
    /// Per-pair results, in [`paper_pairs`] order.
    pub pairs: Vec<PairResults>,
}

impl ResultSet {
    /// The run at level `f` for each pair.
    pub fn at_level(&self, f: FairnessLevel) -> Vec<&PairRun> {
        self.pairs
            .iter()
            .map(|p| {
                p.runs
                    .iter()
                    .find(|r| r.target == Some(f))
                    .expect("every pair has every level")
            })
            .collect()
    }
}

fn cache_path(sizing: Sizing) -> PathBuf {
    let dir = std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let name = match sizing {
        Sizing::Full => "experiments-full.json",
        Sizing::Quick => "experiments-quick.json",
    };
    PathBuf::from(dir).join(name)
}

/// Loads the cached result set for `sizing`, or runs the full matrix and
/// caches it. Pass `force` to ignore an existing cache.
///
/// # Panics
///
/// Panics if the cache file exists but cannot be parsed (delete it), or
/// the cache directory cannot be written.
pub fn full_results(sizing: Sizing, force: bool) -> ResultSet {
    let path = cache_path(sizing);
    if !force {
        if let Ok(json) = fs::read_to_string(&path) {
            match serde_json::from_str::<ResultSet>(&json) {
                Ok(set) => {
                    eprintln!(
                        "[experiments] loaded cached results from {}",
                        path.display()
                    );
                    return set;
                }
                Err(e) => panic!(
                    "corrupt results cache {} ({e}); delete it and re-run",
                    path.display()
                ),
            }
        }
    }
    let set = run_matrix(&crate::run_config(sizing));
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create results directory");
    }
    fs::write(
        &path,
        serde_json::to_string(&set).expect("serialize results"),
    )
    .expect("write results cache");
    eprintln!("[experiments] wrote results cache to {}", path.display());
    set
}

/// Runs the full matrix at `cfg` without caching.
pub fn run_matrix(cfg: &RunConfig) -> ResultSet {
    // Single-thread references are per benchmark, not per pair — measure
    // each of the 12 once.
    let mut singles: HashMap<String, SingleRun> = HashMap::new();
    let pairs = paper_pairs();
    for pair in &pairs {
        for name in [pair.a, pair.b] {
            if !singles.contains_key(name) {
                eprintln!("[experiments] single-thread reference: {name}");
                let profile = soe_workloads::spec::profile(name).expect("known benchmark");
                let trace = soe_workloads::SyntheticTrace::new(profile, 0x10_0000_0000, 0);
                singles.insert(name.to_string(), run_single(Box::new(trace), cfg));
            }
        }
    }
    let mut out = Vec::new();
    for pair in &pairs {
        eprintln!("[experiments] pair {}", pair.label());
        let pair_singles = [singles[pair.a].clone(), singles[pair.b].clone()];
        let runs = FairnessLevel::paper_levels()
            .iter()
            .map(|f| run_pair(pair, *f, &pair_singles, cfg))
            .collect();
        out.push(PairResults {
            label: pair.label(),
            singles: pair_singles.to_vec(),
            runs,
        });
    }
    ResultSet { pairs: out }
}
