//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library provides the common experiment sizing and output
//! conventions. Pass `--quick` to any binary for a scaled-down run
//! (useful for smoke-testing; the full runs are what `EXPERIMENTS.md`
//! records), and `--jobs N` (or `SOE_JOBS=N`) to bound the worker
//! threads used for independent simulation runs.

pub mod experiments;

use soe_core::runner::RunConfig;

/// Experiment sizing selected from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sizing {
    /// Full-size runs (the defaults used in EXPERIMENTS.md).
    Full,
    /// Scaled-down smoke runs (`--quick`).
    Quick,
}

/// Parses the standard binary arguments (`--quick`).
pub fn sizing_from_args() -> Sizing {
    if std::env::args().any(|a| a == "--quick") {
        Sizing::Quick
    } else {
        Sizing::Full
    }
}

/// Resolves the worker-thread count for this invocation: `--jobs N`
/// (or `--jobs=N`) beats the `SOE_JOBS` environment variable beats the
/// machine's available parallelism. Results are bit-identical at any
/// value; only wall-clock time changes.
///
/// # Panics
///
/// Panics on a malformed or zero `--jobs` value — a typo silently
/// falling back to a default would be worse.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    let mut explicit = None;
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" {
            args.next()
                .unwrap_or_else(|| panic!("--jobs requires a value"))
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_string()
        } else {
            continue;
        };
        let n: usize = value
            .parse()
            .unwrap_or_else(|_| panic!("--jobs expects a positive integer, got {value:?}"));
        assert!(n > 0, "--jobs expects a positive integer, got 0");
        explicit = Some(n);
    }
    soe_core::pool::resolve_workers(explicit)
}

/// The run configuration for a sizing.
pub fn run_config(sizing: Sizing) -> RunConfig {
    match sizing {
        Sizing::Full => RunConfig::paper(),
        Sizing::Quick => RunConfig::quick(),
    }
}

/// Writes an SVG figure next to the cached results
/// (`$SOE_RESULTS_DIR/reports/<name>.svg`, default `results/reports/`)
/// and prints where it went.
pub fn save_svg(name: &str, svg: &str) {
    let dir = std::path::PathBuf::from(
        std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
    .join("reports");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[svg] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.svg"));
    match std::fs::write(&path, svg) {
        Ok(()) => println!("[svg] wrote {}", path.display()),
        Err(e) => eprintln!("[svg] cannot write {}: {e}", path.display()),
    }
}

/// Prints a figure/table header banner.
pub fn banner(title: &str, sizing: Sizing) {
    println!("==========================================================");
    println!("{title}");
    println!(
        "(sizing: {})",
        match sizing {
            Sizing::Full => "full",
            Sizing::Quick => "quick (--quick)",
        }
    );
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_is_paper_sized() {
        let c = run_config(Sizing::Full);
        assert_eq!(c.fairness.delta, 250_000);
        assert_eq!(c.fairness.max_cycles_quota, 50_000);
    }

    #[test]
    fn quick_config_is_smaller() {
        let full = run_config(Sizing::Full);
        let quick = run_config(Sizing::Quick);
        assert!(quick.measure_cycles < full.measure_cycles);
    }
}
