//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library provides the common experiment sizing, output
//! and supervision conventions. Pass `--quick` to any binary for a
//! scaled-down run (useful for smoke-testing; the full runs are what
//! `EXPERIMENTS.md` records), and `--jobs N` (or `SOE_JOBS=N`) to bound
//! the worker threads used for independent simulation runs.
//!
//! The matrix-driven binaries (`figure6`/`figure7`/`figure8`) and the
//! pooled sweeps additionally understand the supervision flags parsed
//! by [`Cli`]: `--resume`, `--timeout SECS`, `--retries N`, plus the
//! `SOE_FAULTS` chaos-injection environment variable.
//!
//! Every [`Cli`] binary also honours the observability flags: `--trace
//! PATH` captures a deterministic cycle-level event trace of the
//! reference pair (JSONL + Chrome trace + series CSV, see
//! [`write_observability`]) and `--metrics PATH` writes the matching
//! metrics-registry CSV.

pub mod experiments;

use std::time::Duration;

use soe_core::pool::Job;
use soe_core::runner::RunConfig;
use soe_core::{supervise_jobs, FaultPlan, SuperviseOptions};

/// Experiment sizing selected from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sizing {
    /// Full-size runs (the defaults used in EXPERIMENTS.md).
    Full,
    /// Scaled-down smoke runs (`--quick`).
    Quick,
}

/// Parses the standard binary arguments (`--quick`).
pub fn sizing_from_args() -> Sizing {
    if std::env::args().any(|a| a == "--quick") {
        Sizing::Quick
    } else {
        Sizing::Full
    }
}

/// Resolves the worker-thread count for this invocation: `--jobs N`
/// (or `--jobs=N`) beats the `SOE_JOBS` environment variable beats the
/// machine's available parallelism. Results are bit-identical at any
/// value; only wall-clock time changes.
///
/// Exits with a diagnostic on a malformed or zero `--jobs` value — a
/// typo silently falling back to a default would be worse.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    let mut explicit = None;
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" {
            args.next()
                .unwrap_or_else(|| usage_error("--jobs requires a value"))
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_string()
        } else {
            continue;
        };
        explicit = Some(parse_jobs(&value).unwrap_or_else(|e| usage_error(&e)));
    }
    soe_core::pool::resolve_workers(explicit)
}

fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(0) => Err("--jobs expects a positive integer, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs expects a positive integer, got {value:?}")),
    }
}

/// Matches `--name value` / `--name=value`, pulling the value from the
/// remaining arguments when needed. `None` means `arg` is not this flag.
fn flag_value(
    arg: &str,
    name: &str,
    args: &mut impl Iterator<Item = String>,
) -> Option<Result<String, String>> {
    if let Some(v) = arg.strip_prefix(name) {
        if let Some(inline) = v.strip_prefix('=') {
            return Some(Ok(inline.to_string()));
        }
        if v.is_empty() {
            return Some(
                args.next()
                    .ok_or_else(|| format!("{name} requires a value")),
            );
        }
    }
    None
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// The flags shared by the supervised experiment binaries.
const USAGE: &str = "\
usage: <binary> [--quick] [--force] [--resume] [--jobs N] [--timeout SECS] [--retries N]
                [--policy NAME] [--trace PATH] [--metrics PATH]

  --quick         scaled-down smoke sizing (default: full paper sizing)
  --force         ignore an existing results cache and recompute
  --resume        reuse completed runs from the on-disk journal
  --jobs N        worker threads (default: SOE_JOBS or available cores)
  --timeout SECS  per-run watchdog; 0 disables (default: 1800)
  --retries N     retries per failing run before quarantine (default: 2)
  --policy NAME   switch discipline from the policy registry, where the
                  binary supports it (default: fairness; see
                  `soe_core::PolicyFactory::builtin` for the zoo)
  --trace PATH    also capture a traced reference run: JSONL events at
                  PATH, plus PATH.chrome.json (Perfetto) and
                  PATH.series.csv (time series)
  --metrics PATH  write the traced reference run's metrics registry as CSV

environment:
  SOE_JOBS        default worker threads
  SOE_RESULTS_DIR cache/journal/manifest directory (default: results/)
  SOE_FAULTS      deterministic fault injection, e.g. panic:0.05,stall:0.02@7";

/// Parsed command line for the supervised experiment binaries: sizing,
/// cache control, resume, worker count, and the per-run watchdog /
/// retry budget fed into [`SuperviseOptions`], plus the observability
/// capture paths (`--trace` / `--metrics`).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment sizing (`--quick`).
    pub sizing: Sizing,
    /// Ignore an existing results cache (`--force`).
    pub force: bool,
    /// Reuse completed runs from the journal (`--resume`).
    pub resume: bool,
    /// Worker threads.
    pub workers: usize,
    /// Per-attempt watchdog timeout; `None` (from `--timeout 0`) waits
    /// forever.
    pub timeout: Option<Duration>,
    /// Retries per failing run before quarantine.
    pub retries: u32,
    /// Capture a traced reference run: events as JSONL here, plus the
    /// Chrome trace and series CSV siblings (`--trace`).
    pub trace: Option<String>,
    /// Write the traced reference run's metrics registry as CSV here
    /// (`--metrics`).
    pub metrics: Option<String>,
    /// Switch discipline from the policy registry (`--policy`), for the
    /// binaries that sweep one: `None` means the binary's default
    /// (the paper's `fairness` mechanism). Validated against
    /// [`soe_core::PolicyFactory`] by [`Cli::policy_or_exit`], not at
    /// parse time, so binaries with a custom registry can resolve it
    /// themselves.
    pub policy: Option<String>,
}

impl Cli {
    /// Parses `std::env::args`, exiting with a diagnostic and usage on
    /// any malformed flag (and on `--help`, with status 0).
    pub fn parse_or_exit() -> Self {
        if std::env::args().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match Self::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(e) => usage_error(&e),
        }
    }

    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed flag or value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut cli = Self {
            sizing: Sizing::Full,
            force: false,
            resume: false,
            workers: 0,
            timeout: Some(Duration::from_secs(1_800)),
            retries: 2,
            trace: None,
            metrics: None,
            policy: None,
        };
        let mut explicit_jobs = None;
        let mut args = args.fuse();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.sizing = Sizing::Quick,
                "--force" => cli.force = true,
                "--resume" => cli.resume = true,
                _ => {
                    if let Some(v) = flag_value(&arg, "--jobs", &mut args) {
                        explicit_jobs = Some(parse_jobs(&v?)?);
                    } else if let Some(v) = flag_value(&arg, "--timeout", &mut args) {
                        let v = v?;
                        let secs = v
                            .parse::<u64>()
                            .map_err(|_| format!("--timeout expects whole seconds, got {v:?}"))?;
                        cli.timeout = (secs > 0).then_some(Duration::from_secs(secs));
                    } else if let Some(v) = flag_value(&arg, "--retries", &mut args) {
                        let v = v?;
                        cli.retries = v.parse::<u32>().map_err(|_| {
                            format!("--retries expects a non-negative integer, got {v:?}")
                        })?;
                    } else if let Some(v) = flag_value(&arg, "--trace", &mut args) {
                        cli.trace = Some(v?);
                    } else if let Some(v) = flag_value(&arg, "--metrics", &mut args) {
                        cli.metrics = Some(v?);
                    } else if let Some(v) = flag_value(&arg, "--policy", &mut args) {
                        cli.policy = Some(v?);
                    } else {
                        return Err(format!("unknown flag {arg:?}"));
                    }
                }
            }
        }
        cli.workers = soe_core::pool::resolve_workers(explicit_jobs);
        Ok(cli)
    }

    /// The supervision settings for this invocation: the parsed watchdog
    /// and retry budget, plus fault injection from `SOE_FAULTS`. Exits
    /// with a diagnostic if `SOE_FAULTS` is set but malformed (a chaos
    /// run silently running without faults would fake a pass).
    pub fn supervise_options(&self) -> SuperviseOptions {
        let faults = FaultPlan::from_env().unwrap_or_else(|e| usage_error(&e));
        if let Some(plan) = &faults {
            eprintln!(
                "[supervise] fault injection active: panic:{}, stall:{} ({:?}) @ seed {}",
                plan.panic_prob, plan.stall_prob, plan.stall, plan.seed
            );
        }
        SuperviseOptions {
            workers: self.workers,
            timeout: self.timeout,
            retries: self.retries,
            backoff: Duration::from_millis(500),
            faults,
            progress: true,
        }
    }

    /// Resolves `--policy` against the built-in registry: the requested
    /// name when given (exiting with the registered names on an unknown
    /// one — a typo silently falling back to `fairness` would fake a
    /// sweep), else `default_name`.
    pub fn policy_or_exit(&self, default_name: &str) -> String {
        let name = self.policy.as_deref().unwrap_or(default_name);
        let factory = soe_core::PolicyFactory::builtin();
        if !factory.contains(name) {
            usage_error(&format!(
                "unknown policy {name:?} (registered: {})",
                factory.names().join(", ")
            ));
        }
        name.to_string()
    }
}

/// Runs independent jobs under full supervision (watchdog, retries,
/// fault injection) and insists on a complete batch: if any job is
/// quarantined the process reports every failure and exits with status
/// 1, because a figure computed from partial sweep data would be
/// silently wrong.
pub fn run_supervised<P, R, F>(jobs: Vec<Job<P>>, cli: &Cli, f: F) -> Vec<R>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    let report = supervise_jobs(jobs, &cli.supervise_options(), f);
    if !report.is_complete() {
        eprintln!(
            "error: {} run(s) still failing after retries:",
            report.quarantined.len()
        );
        for q in &report.quarantined {
            eprintln!("  {q}");
        }
        std::process::exit(1);
    }
    report
        .results
        .into_iter()
        .map(|r| r.expect("complete report has every result"))
        .collect()
}

/// The run configuration for a sizing.
pub fn run_config(sizing: Sizing) -> RunConfig {
    match sizing {
        Sizing::Full => RunConfig::paper(),
        Sizing::Quick => RunConfig::quick(),
    }
}

/// Writes an SVG figure next to the cached results
/// (`$SOE_RESULTS_DIR/reports/<name>.svg`, default `results/reports/`)
/// and prints where it went. The write is atomic, so a crash mid-write
/// cannot leave a truncated figure behind.
pub fn save_svg(name: &str, svg: &str) {
    let path = std::path::PathBuf::from(
        // soe-lint: allow(determinism-taint): SOE_RESULTS_DIR picks where the figure lands, not what bytes it contains
        std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
    .join("reports")
    .join(format!("{name}.svg"));
    match soe_core::atomic_write(&path, svg.as_bytes()) {
        Ok(()) => println!("[svg] wrote {}", path.display()),
        Err(e) => eprintln!("[svg] {e}"),
    }
}

/// The artifacts of one observability capture, already serialized and
/// self-validated: the JSONL event stream, its Chrome `trace_event`
/// rendering, the extracted time series, and the metrics registry.
#[derive(Debug, Clone)]
pub struct Observability {
    /// Compact JSONL event stream (`soe-trace/1`), checker-validated.
    pub jsonl: String,
    /// Chrome `trace_event` JSON for Perfetto / `chrome://tracing`.
    pub chrome: String,
    /// `series,x,y` CSV of the extracted time series.
    pub series_csv: String,
    /// `kind,name,value` CSV of the metrics registry (event counts
    /// merged with the run's aggregate metrics).
    pub metrics_csv: String,
    /// The checker's summary of the validated event stream.
    pub summary: soe_core::obs::TraceSummary,
}

/// Runs the traced reference pair — `swim:eon` at F = 1/2, a
/// memory-bound/compute-bound pairing that exercises misses, estimator
/// windows and forced switches — and serializes every observability
/// artifact. The captured JSONL is validated with
/// [`soe_core::obs::check_jsonl`] before being returned, so a trace
/// that violates the stream invariants can never be written to disk.
///
/// Fully deterministic: two calls at the same sizing return
/// byte-identical artifacts.
///
/// # Errors
///
/// A human-readable message if a simulation fails or the captured
/// trace fails validation.
pub fn observe_pair(sizing: Sizing) -> Result<Observability, String> {
    use soe_core::obs;
    use soe_core::runner::{try_run_pair_traced, try_run_single};

    let cfg = run_config(sizing);
    let pair = soe_workloads::Pair {
        a: "swim",
        b: "eon",
    };
    let singles: Vec<soe_core::SingleRun> = [pair.a, pair.b]
        .iter()
        .map(|name| {
            let profile = soe_workloads::spec::profile(name)
                .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
            let trace = soe_workloads::SyntheticTrace::new(profile, 0x10_0000_0000, 0);
            try_run_single(Box::new(trace), &cfg).map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;
    let traced = try_run_pair_traced(&pair, soe_model::FairnessLevel::HALF, &singles, &cfg)
        .map_err(|e| e.to_string())?;
    let names = [pair.a, pair.b];
    let jsonl = obs::trace_jsonl(&traced.trace, &names);
    let summary =
        obs::check_jsonl(&jsonl).map_err(|e| format!("captured trace failed validation: {e}"))?;
    let chrome = obs::chrome_trace(&traced.trace, &names);
    let series_csv = soe_stats::series_to_csv(&obs::trace_series(&traced.trace));
    let mut metrics = obs::metrics::from_trace(&traced.trace);
    metrics.merge(&obs::metrics::from_pair_run(&traced.run));
    Ok(Observability {
        jsonl,
        chrome,
        series_csv,
        metrics_csv: metrics.to_csv(),
        summary,
    })
}

/// Honours `--trace` / `--metrics`: captures the traced reference run
/// and writes the requested artifacts (atomically), printing where
/// each went. A no-op when neither flag was given; exits with status 1
/// if the capture fails or an artifact cannot be written.
pub fn write_observability(cli: &Cli) {
    if cli.trace.is_none() && cli.metrics.is_none() {
        return;
    }
    eprintln!("[obs] capturing traced reference run (swim:eon, F=1/2)...");
    let obs = match observe_pair(cli.sizing) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[obs] trace validated: {} events, {} dropped",
        obs.summary.events, obs.summary.dropped
    );
    let mut outputs: Vec<(String, &str)> = Vec::new();
    if let Some(path) = &cli.trace {
        outputs.push((path.clone(), obs.jsonl.as_str()));
        outputs.push((format!("{path}.chrome.json"), obs.chrome.as_str()));
        outputs.push((format!("{path}.series.csv"), obs.series_csv.as_str()));
    }
    if let Some(path) = &cli.metrics {
        outputs.push((path.clone(), obs.metrics_csv.as_str()));
    }
    for (path, data) in outputs {
        match soe_core::atomic_write(std::path::Path::new(&path), data.as_bytes()) {
            Ok(()) => println!("[obs] wrote {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Prints a figure/table header banner.
pub fn banner(title: &str, sizing: Sizing) {
    println!("==========================================================");
    println!("{title}");
    println!(
        "(sizing: {})",
        match sizing {
            Sizing::Full => "full",
            Sizing::Quick => "quick (--quick)",
        }
    );
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn full_config_is_paper_sized() {
        let c = run_config(Sizing::Full);
        assert_eq!(c.fairness.delta, 250_000);
        assert_eq!(c.fairness.max_cycles_quota, 50_000);
    }

    #[test]
    fn quick_config_is_smaller() {
        let full = run_config(Sizing::Full);
        let quick = run_config(Sizing::Quick);
        assert!(quick.measure_cycles < full.measure_cycles);
    }

    #[test]
    fn cli_defaults_are_conservative() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.sizing, Sizing::Full);
        assert!(!cli.force);
        assert!(!cli.resume);
        assert_eq!(cli.timeout, Some(Duration::from_secs(1_800)));
        assert_eq!(cli.retries, 2);
        assert!(cli.workers >= 1);
        assert_eq!(cli.trace, None);
        assert_eq!(cli.metrics, None);
    }

    #[test]
    fn cli_parses_every_flag() {
        let cli = parse(&[
            "--quick",
            "--force",
            "--resume",
            "--jobs",
            "3",
            "--timeout=90",
            "--retries",
            "0",
            "--trace",
            "out/run.jsonl",
            "--metrics=out/metrics.csv",
            "--policy",
            "islip",
        ])
        .unwrap();
        assert_eq!(cli.sizing, Sizing::Quick);
        assert!(cli.force);
        assert!(cli.resume);
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.timeout, Some(Duration::from_secs(90)));
        assert_eq!(cli.retries, 0);
        assert_eq!(cli.trace.as_deref(), Some("out/run.jsonl"));
        assert_eq!(cli.metrics.as_deref(), Some("out/metrics.csv"));
        assert_eq!(cli.policy.as_deref(), Some("islip"));
    }

    #[test]
    fn cli_policy_defaults_to_none() {
        assert_eq!(parse(&[]).unwrap().policy, None);
        assert_eq!(
            parse(&["--policy=wdrr"]).unwrap().policy.as_deref(),
            Some("wdrr")
        );
    }

    #[test]
    fn cli_timeout_zero_disables_the_watchdog() {
        assert_eq!(parse(&["--timeout", "0"]).unwrap().timeout, None);
    }

    #[test]
    fn cli_rejects_malformed_input() {
        for bad in [
            &["--jobs", "zero"][..],
            &["--jobs", "0"],
            &["--jobs"],
            &["--timeout", "soon"],
            &["--retries", "-1"],
            &["--trace"],
            &["--metrics"],
            &["--policy"],
            &["--frobnicate"],
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains(bad[0].trim_start_matches('-')) || err.contains(bad[0]));
        }
    }
}
