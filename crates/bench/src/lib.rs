//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library provides the common experiment sizing, output
//! and supervision conventions. Pass `--quick` to any binary for a
//! scaled-down run (useful for smoke-testing; the full runs are what
//! `EXPERIMENTS.md` records), and `--jobs N` (or `SOE_JOBS=N`) to bound
//! the worker threads used for independent simulation runs.
//!
//! The matrix-driven binaries (`figure6`/`figure7`/`figure8`) and the
//! pooled sweeps additionally understand the supervision flags parsed
//! by [`Cli`]: `--resume`, `--timeout SECS`, `--retries N`, plus the
//! `SOE_FAULTS` chaos-injection environment variable.

pub mod experiments;

use std::time::Duration;

use soe_core::pool::Job;
use soe_core::runner::RunConfig;
use soe_core::{supervise_jobs, FaultPlan, SuperviseOptions};

/// Experiment sizing selected from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sizing {
    /// Full-size runs (the defaults used in EXPERIMENTS.md).
    Full,
    /// Scaled-down smoke runs (`--quick`).
    Quick,
}

/// Parses the standard binary arguments (`--quick`).
pub fn sizing_from_args() -> Sizing {
    if std::env::args().any(|a| a == "--quick") {
        Sizing::Quick
    } else {
        Sizing::Full
    }
}

/// Resolves the worker-thread count for this invocation: `--jobs N`
/// (or `--jobs=N`) beats the `SOE_JOBS` environment variable beats the
/// machine's available parallelism. Results are bit-identical at any
/// value; only wall-clock time changes.
///
/// Exits with a diagnostic on a malformed or zero `--jobs` value — a
/// typo silently falling back to a default would be worse.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    let mut explicit = None;
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" {
            args.next()
                .unwrap_or_else(|| usage_error("--jobs requires a value"))
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_string()
        } else {
            continue;
        };
        explicit = Some(parse_jobs(&value).unwrap_or_else(|e| usage_error(&e)));
    }
    soe_core::pool::resolve_workers(explicit)
}

fn parse_jobs(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(0) => Err("--jobs expects a positive integer, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs expects a positive integer, got {value:?}")),
    }
}

/// Matches `--name value` / `--name=value`, pulling the value from the
/// remaining arguments when needed. `None` means `arg` is not this flag.
fn flag_value(
    arg: &str,
    name: &str,
    args: &mut impl Iterator<Item = String>,
) -> Option<Result<String, String>> {
    if let Some(v) = arg.strip_prefix(name) {
        if let Some(inline) = v.strip_prefix('=') {
            return Some(Ok(inline.to_string()));
        }
        if v.is_empty() {
            return Some(
                args.next()
                    .ok_or_else(|| format!("{name} requires a value")),
            );
        }
    }
    None
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// The flags shared by the supervised experiment binaries.
const USAGE: &str = "\
usage: <binary> [--quick] [--force] [--resume] [--jobs N] [--timeout SECS] [--retries N]

  --quick         scaled-down smoke sizing (default: full paper sizing)
  --force         ignore an existing results cache and recompute
  --resume        reuse completed runs from the on-disk journal
  --jobs N        worker threads (default: SOE_JOBS or available cores)
  --timeout SECS  per-run watchdog; 0 disables (default: 1800)
  --retries N     retries per failing run before quarantine (default: 2)

environment:
  SOE_JOBS        default worker threads
  SOE_RESULTS_DIR cache/journal/manifest directory (default: results/)
  SOE_FAULTS      deterministic fault injection, e.g. panic:0.05,stall:0.02@7";

/// Parsed command line for the supervised experiment binaries: sizing,
/// cache control, resume, worker count, and the per-run watchdog /
/// retry budget fed into [`SuperviseOptions`].
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Experiment sizing (`--quick`).
    pub sizing: Sizing,
    /// Ignore an existing results cache (`--force`).
    pub force: bool,
    /// Reuse completed runs from the journal (`--resume`).
    pub resume: bool,
    /// Worker threads.
    pub workers: usize,
    /// Per-attempt watchdog timeout; `None` (from `--timeout 0`) waits
    /// forever.
    pub timeout: Option<Duration>,
    /// Retries per failing run before quarantine.
    pub retries: u32,
}

impl Cli {
    /// Parses `std::env::args`, exiting with a diagnostic and usage on
    /// any malformed flag (and on `--help`, with status 0).
    pub fn parse_or_exit() -> Self {
        if std::env::args().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match Self::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(e) => usage_error(&e),
        }
    }

    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed flag or value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut cli = Self {
            sizing: Sizing::Full,
            force: false,
            resume: false,
            workers: 0,
            timeout: Some(Duration::from_secs(1_800)),
            retries: 2,
        };
        let mut explicit_jobs = None;
        let mut args = args.fuse();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.sizing = Sizing::Quick,
                "--force" => cli.force = true,
                "--resume" => cli.resume = true,
                _ => {
                    if let Some(v) = flag_value(&arg, "--jobs", &mut args) {
                        explicit_jobs = Some(parse_jobs(&v?)?);
                    } else if let Some(v) = flag_value(&arg, "--timeout", &mut args) {
                        let v = v?;
                        let secs = v
                            .parse::<u64>()
                            .map_err(|_| format!("--timeout expects whole seconds, got {v:?}"))?;
                        cli.timeout = (secs > 0).then_some(Duration::from_secs(secs));
                    } else if let Some(v) = flag_value(&arg, "--retries", &mut args) {
                        let v = v?;
                        cli.retries = v.parse::<u32>().map_err(|_| {
                            format!("--retries expects a non-negative integer, got {v:?}")
                        })?;
                    } else {
                        return Err(format!("unknown flag {arg:?}"));
                    }
                }
            }
        }
        cli.workers = soe_core::pool::resolve_workers(explicit_jobs);
        Ok(cli)
    }

    /// The supervision settings for this invocation: the parsed watchdog
    /// and retry budget, plus fault injection from `SOE_FAULTS`. Exits
    /// with a diagnostic if `SOE_FAULTS` is set but malformed (a chaos
    /// run silently running without faults would fake a pass).
    pub fn supervise_options(&self) -> SuperviseOptions {
        let faults = FaultPlan::from_env().unwrap_or_else(|e| usage_error(&e));
        if let Some(plan) = &faults {
            eprintln!(
                "[supervise] fault injection active: panic:{}, stall:{} ({:?}) @ seed {}",
                plan.panic_prob, plan.stall_prob, plan.stall, plan.seed
            );
        }
        SuperviseOptions {
            workers: self.workers,
            timeout: self.timeout,
            retries: self.retries,
            backoff: Duration::from_millis(500),
            faults,
            progress: true,
        }
    }
}

/// Runs independent jobs under full supervision (watchdog, retries,
/// fault injection) and insists on a complete batch: if any job is
/// quarantined the process reports every failure and exits with status
/// 1, because a figure computed from partial sweep data would be
/// silently wrong.
pub fn run_supervised<P, R, F>(jobs: Vec<Job<P>>, cli: &Cli, f: F) -> Vec<R>
where
    P: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&P) -> Result<R, String> + Send + Sync + 'static,
{
    let report = supervise_jobs(jobs, &cli.supervise_options(), f);
    if !report.is_complete() {
        eprintln!(
            "error: {} run(s) still failing after retries:",
            report.quarantined.len()
        );
        for q in &report.quarantined {
            eprintln!("  {q}");
        }
        std::process::exit(1);
    }
    report
        .results
        .into_iter()
        .map(|r| r.expect("complete report has every result"))
        .collect()
}

/// The run configuration for a sizing.
pub fn run_config(sizing: Sizing) -> RunConfig {
    match sizing {
        Sizing::Full => RunConfig::paper(),
        Sizing::Quick => RunConfig::quick(),
    }
}

/// Writes an SVG figure next to the cached results
/// (`$SOE_RESULTS_DIR/reports/<name>.svg`, default `results/reports/`)
/// and prints where it went. The write is atomic, so a crash mid-write
/// cannot leave a truncated figure behind.
pub fn save_svg(name: &str, svg: &str) {
    let path = std::path::PathBuf::from(
        std::env::var("SOE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
    .join("reports")
    .join(format!("{name}.svg"));
    match soe_core::atomic_write(&path, svg.as_bytes()) {
        Ok(()) => println!("[svg] wrote {}", path.display()),
        Err(e) => eprintln!("[svg] {e}"),
    }
}

/// Prints a figure/table header banner.
pub fn banner(title: &str, sizing: Sizing) {
    println!("==========================================================");
    println!("{title}");
    println!(
        "(sizing: {})",
        match sizing {
            Sizing::Full => "full",
            Sizing::Quick => "quick (--quick)",
        }
    );
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn full_config_is_paper_sized() {
        let c = run_config(Sizing::Full);
        assert_eq!(c.fairness.delta, 250_000);
        assert_eq!(c.fairness.max_cycles_quota, 50_000);
    }

    #[test]
    fn quick_config_is_smaller() {
        let full = run_config(Sizing::Full);
        let quick = run_config(Sizing::Quick);
        assert!(quick.measure_cycles < full.measure_cycles);
    }

    #[test]
    fn cli_defaults_are_conservative() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.sizing, Sizing::Full);
        assert!(!cli.force);
        assert!(!cli.resume);
        assert_eq!(cli.timeout, Some(Duration::from_secs(1_800)));
        assert_eq!(cli.retries, 2);
        assert!(cli.workers >= 1);
    }

    #[test]
    fn cli_parses_every_flag() {
        let cli = parse(&[
            "--quick",
            "--force",
            "--resume",
            "--jobs",
            "3",
            "--timeout=90",
            "--retries",
            "0",
        ])
        .unwrap();
        assert_eq!(cli.sizing, Sizing::Quick);
        assert!(cli.force);
        assert!(cli.resume);
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.timeout, Some(Duration::from_secs(90)));
        assert_eq!(cli.retries, 0);
    }

    #[test]
    fn cli_timeout_zero_disables_the_watchdog() {
        assert_eq!(parse(&["--timeout", "0"]).unwrap().timeout, None);
    }

    #[test]
    fn cli_rejects_malformed_input() {
        for bad in [
            &["--jobs", "zero"][..],
            &["--jobs", "0"],
            &["--jobs"],
            &["--timeout", "soon"],
            &["--retries", "-1"],
            &["--frobnicate"],
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains(bad[0].trim_start_matches('-')) || err.contains(bad[0]));
        }
    }
}
