//! Minimal ASCII chart rendering so every figure binary has a terminal
//! visualization in addition to its numeric series.

use crate::TimeSeries;

/// Renders a horizontal bar chart: one labelled bar per `(label, value)`.
///
/// Values must be non-negative; the longest bar spans `width` characters.
///
/// # Examples
///
/// ```
/// let s = soe_stats::chart::bar_chart(&[("a".into(), 2.0), ("b".into(), 4.0)], 8);
/// assert!(s.contains("a"));
/// assert!(s.lines().count() == 2);
/// ```
///
/// # Panics
///
/// Panics if any value is negative or `width == 0`.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    assert!(
        items.iter().all(|(_, v)| *v >= 0.0),
        "bar chart values must be non-negative"
    );
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let n = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {value:.4}\n",
            "#".repeat(n)
        ));
    }
    out.pop();
    out
}

/// Renders a sparse line plot of a [`TimeSeries`] on a `rows` × `cols`
/// character grid, with min/max y annotations.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn line_chart(series: &TimeSeries, rows: usize, cols: usize) -> String {
    assert!(rows > 0 && cols > 0, "chart must have positive dimensions");
    if series.is_empty() {
        return format!("{} (empty)", series.name());
    }
    let thinned = series.thinned(cols);
    let y_min = thinned.min_y().expect("non-empty");
    let y_max = thinned.max_y().expect("non-empty");
    let x_min = thinned.points()[0].x;
    let x_max = thinned.last().expect("non-empty").x;
    let y_span = if y_max > y_min { y_max - y_min } else { 1.0 };
    let x_span = if x_max > x_min { x_max - x_min } else { 1.0 };

    let mut grid = vec![vec![' '; cols]; rows];
    for p in thinned.points() {
        let c = (((p.x - x_min) / x_span) * (cols - 1) as f64).round() as usize;
        let r = (((p.y - y_min) / y_span) * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - r][c.min(cols - 1)] = '*';
    }
    let mut out = format!("{}  [y: {y_min:.4} .. {y_max:.4}]\n", series.name());
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out
}

/// Renders several series as stacked labelled line charts.
pub fn multi_line_chart(series: &[TimeSeries], rows: usize, cols: usize) -> String {
    series
        .iter()
        .map(|s| line_chart(s, rows, cols))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("x".into(), 1.0), ("y".into(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.chars().filter(|c| *c == '#').count();
        assert_eq!(hashes(lines[0]), 5);
        assert_eq!(hashes(lines[1]), 10);
    }

    #[test]
    fn bar_chart_all_zero() {
        let s = bar_chart(&[("x".into(), 0.0)], 10);
        assert!(!s.contains('#'));
    }

    #[test]
    fn line_chart_plots_endpoints() {
        let mut ts = TimeSeries::new("t");
        ts.push(0.0, 0.0);
        ts.push(10.0, 1.0);
        let s = line_chart(&ts, 4, 20);
        assert!(s.contains('*'));
        assert!(s.starts_with("t  [y: 0.0000 .. 1.0000]"));
    }

    #[test]
    fn line_chart_empty_series() {
        let ts = TimeSeries::new("t");
        assert_eq!(line_chart(&ts, 4, 20), "t (empty)");
    }

    #[test]
    fn line_chart_constant_series_does_not_divide_by_zero() {
        let mut ts = TimeSeries::new("t");
        ts.push(0.0, 3.0);
        ts.push(1.0, 3.0);
        let s = line_chart(&ts, 3, 10);
        assert!(s.contains('*'));
    }
}
