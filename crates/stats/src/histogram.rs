//! Linear- and log-binned histograms.

use serde::{Deserialize, Serialize};

/// One histogram bin: half-open range `[lo, hi)` and a count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (the final bin includes its upper edge).
    pub hi: f64,
    /// Number of observations in the bin.
    pub count: u64,
}

/// A fixed-range histogram with uniformly sized bins (optionally on a log
/// scale).
///
/// Used, for example, to show how many F = 0 runs land at fairness below
/// 0.1 — the paper's "over a third of our runs achieved poor fairness"
/// observation.
///
/// # Examples
///
/// ```
/// use soe_stats::Histogram;
///
/// let mut h = Histogram::linear(0.0, 1.0, 4);
/// h.record(0.05);
/// h.record(0.9);
/// assert_eq!(h.bins()[0].count, 1);
/// assert_eq!(h.bins()[3].count, 1);
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    log: bool,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            log: false,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram with `bins` bins uniform in `log10` spanning
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo` is not strictly positive or `lo >= hi`.
    pub fn log10(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0 && lo < hi, "log histogram needs 0 < lo < hi");
        Self {
            lo,
            hi,
            log: true,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    fn position(&self, value: f64) -> f64 {
        if self.log {
            (value.log10() - self.lo.log10()) / (self.hi.log10() - self.lo.log10())
        } else {
            (value - self.lo) / (self.hi - self.lo)
        }
    }

    /// Records one observation. Values outside the range are tallied in
    /// underflow/overflow counters rather than dropped.
    pub fn record(&mut self, value: f64) {
        if value < self.lo || (self.log && value <= 0.0) {
            self.underflow += 1;
            return;
        }
        if value > self.hi {
            self.overflow += 1;
            return;
        }
        let frac = self.position(value);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Bin edges and counts.
    pub fn bins(&self) -> Vec<HistogramBin> {
        let n = self.counts.len();
        (0..n)
            .map(|i| {
                let (lo, hi) = if self.log {
                    let llo = self.lo.log10();
                    let lhi = self.hi.log10();
                    let step = (lhi - llo) / n as f64;
                    (
                        10f64.powf(llo + step * i as f64),
                        10f64.powf(llo + step * (i + 1) as f64),
                    )
                } else {
                    let step = (self.hi - self.lo) / n as f64;
                    (self.lo + step * i as f64, self.lo + step * (i + 1) as f64)
                };
                HistogramBin {
                    lo,
                    hi,
                    count: self.counts[i],
                }
            })
            .collect()
    }

    /// Total observations recorded inside the range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of in-range observations with value below `threshold`.
    /// Returns `0.0` when the histogram is empty.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .bins()
            .iter()
            .filter(|b| b.hi <= threshold)
            .map(|b| b.count)
            .sum();
        below as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for v in [0.0, 0.5, 9.99, 10.0, 5.0] {
            h.record(v);
        }
        let bins = h.bins();
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[9].count, 2); // 9.99 and 10.0 (upper edge in last bin)
        assert_eq!(bins[5].count, 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn log_binning_decades() {
        let mut h = Histogram::log10(0.01, 100.0, 4);
        h.record(0.05); // decade [0.01, 0.1)
        h.record(0.5); // decade [0.1, 1)
        h.record(5.0); // decade [1, 10)
        h.record(50.0); // decade [10, 100)
        for bin in h.bins() {
            assert_eq!(bin.count, 1, "bin {bin:?}");
        }
    }

    #[test]
    fn fraction_below_threshold() {
        let mut h = Histogram::linear(0.0, 1.0, 10);
        for v in [0.05, 0.05, 0.5, 0.95] {
            h.record(v);
        }
        assert!((h.fraction_below(0.1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::linear(0.0, 1.0, 0);
    }

    #[test]
    fn linear_edges_are_assigned_half_open() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.record(0.0); // lower edge -> first bin
        h.record(0.25); // internal edge -> bin starting at the edge
        h.record(0.5); // internal edge
        h.record(1.0); // upper edge -> last bin (closed on the right)
        let bins = h.bins();
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[2].count, 1);
        assert_eq!(bins[3].count, 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn log_edges_are_assigned_half_open() {
        let mut h = Histogram::log10(0.01, 100.0, 4);
        h.record(0.01); // lower edge -> first decade
        h.record(1.0); // internal decade edge -> bin starting at 1
        h.record(100.0); // upper edge -> last decade
        let bins = h.bins();
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[2].count, 1);
        assert_eq!(bins[3].count, 1);
        // Non-positive values cannot be log-binned: they are underflow.
        h.record(0.0);
        h.record(-5.0);
        assert_eq!(h.underflow(), 2);
    }

    #[test]
    fn bin_edges_tile_the_range_exactly() {
        let h = Histogram::linear(-2.0, 2.0, 8);
        let bins = h.bins();
        assert_eq!(bins[0].lo, -2.0);
        assert_eq!(bins[7].hi, 2.0);
        for w in bins.windows(2) {
            assert_eq!(w[0].hi, w[1].lo, "adjacent bins share an edge");
        }
    }

    #[test]
    fn fraction_below_is_zero_on_empty() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert_eq!(h.fraction_below(0.5), 0.0);
    }
}
