//! Minimal SVG rendering of time series and bar charts — dependency-free
//! figure output for the experiment binaries.

use std::fmt::Write as _;

use crate::TimeSeries;

/// Palette cycled across series.
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 360.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 32.0;
const MARGIN_B: f64 = 48.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn axis_ticks(lo: f64, hi: f64) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw = (hi - lo) / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| (hi - lo) / s <= 6.0)
        .unwrap_or(mag * 10.0);
    let mut t = (lo / step).ceil() * step;
    let mut out = Vec::new();
    while t <= hi + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

/// Renders one or more [`TimeSeries`] as an SVG line chart with axes,
/// ticks and a legend.
///
/// # Examples
///
/// ```
/// use soe_stats::{svg, TimeSeries};
///
/// let mut ts = TimeSeries::new("ipc");
/// ts.push(0.0, 1.0);
/// ts.push(1.0, 2.0);
/// let doc = svg::line_chart(&[ts], "IPC over time", "cycles", "IPC");
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("polyline"));
/// ```
///
/// # Panics
///
/// Panics if `series` is empty or every series is empty.
pub fn line_chart(series: &[TimeSeries], title: &str, x_label: &str, y_label: &str) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.iter().map(|(x, _)| x))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.iter().map(|(_, y)| y))
        .collect();
    assert!(!xs.is_empty(), "all series are empty");
    let (x_lo, x_hi) = bounds(&xs);
    let (y_lo, y_hi) = bounds(&ys);
    let (y_lo, y_hi) = pad(y_lo, y_hi);

    let px = |x: f64| MARGIN_L + (x - x_lo) / span(x_lo, x_hi) * (WIDTH - MARGIN_L - MARGIN_R);
    let py =
        |y: f64| HEIGHT - MARGIN_B - (y - y_lo) / span(y_lo, y_hi) * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut s = header(title);
    // Axes.
    let _ = writeln!(
        s,
        r##"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="#333"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="#333"/>"##,
        l = MARGIN_L,
        r = WIDTH - MARGIN_R,
        t = MARGIN_T,
        b = HEIGHT - MARGIN_B
    );
    for t in axis_ticks(x_lo, x_hi) {
        let _ = writeln!(
            s,
            r##"<line x1="{x:.1}" y1="{b}" x2="{x:.1}" y2="{b2}" stroke="#333"/><text x="{x:.1}" y="{ty}" font-size="11" text-anchor="middle">{v}</text>"##,
            x = px(t),
            b = HEIGHT - MARGIN_B,
            b2 = HEIGHT - MARGIN_B + 4.0,
            ty = HEIGHT - MARGIN_B + 16.0,
            v = fmt_tick(t)
        );
    }
    for t in axis_ticks(y_lo, y_hi) {
        let _ = writeln!(
            s,
            r##"<line x1="{l2}" y1="{y:.1}" x2="{l}" y2="{y:.1}" stroke="#333"/><text x="{tx}" y="{y:.1}" font-size="11" text-anchor="end" dominant-baseline="middle">{v}</text>"##,
            l = MARGIN_L,
            l2 = MARGIN_L - 4.0,
            y = py(t),
            tx = MARGIN_L - 8.0,
            v = fmt_tick(t)
        );
    }
    // Series.
    for (i, ts) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let pts: Vec<String> = ts
            .iter()
            .map(|(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = writeln!(
            s,
            r##"<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{}"/>"##,
            pts.join(" ")
        );
        // Legend entry.
        let ly = MARGIN_T + 14.0 * i as f64;
        let _ = writeln!(
            s,
            r##"<line x1="{x}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ly}" font-size="11" dominant-baseline="middle">{name}</text>"##,
            x = WIDTH - MARGIN_R - 150.0,
            x2 = WIDTH - MARGIN_R - 130.0,
            tx = WIDTH - MARGIN_R - 124.0,
            name = esc(ts.name())
        );
    }
    footer(&mut s, x_label, y_label);
    s
}

/// Renders labelled values as an SVG bar chart.
///
/// # Panics
///
/// Panics if `items` is empty or any value is negative.
pub fn bar_chart(items: &[(String, f64)], title: &str, y_label: &str) -> String {
    assert!(!items.is_empty(), "need at least one bar");
    assert!(
        items.iter().all(|(_, v)| *v >= 0.0),
        "bars must be non-negative"
    );
    let y_hi = items
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let slot = plot_w / items.len() as f64;
    let bar_w = slot * 0.7;
    let py = |y: f64| HEIGHT - MARGIN_B - y / y_hi * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut s = header(title);
    let _ = writeln!(
        s,
        r##"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="#333"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="#333"/>"##,
        l = MARGIN_L,
        r = WIDTH - MARGIN_R,
        t = MARGIN_T,
        b = HEIGHT - MARGIN_B
    );
    for t in axis_ticks(0.0, y_hi) {
        let _ = writeln!(
            s,
            r##"<text x="{tx}" y="{y:.1}" font-size="11" text-anchor="end" dominant-baseline="middle">{v}</text>"##,
            tx = MARGIN_L - 8.0,
            y = py(t),
            v = fmt_tick(t)
        );
    }
    for (i, (label, v)) in items.iter().enumerate() {
        let x = MARGIN_L + slot * i as f64 + (slot - bar_w) / 2.0;
        let _ = writeln!(
            s,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{c}"/>"##,
            y = py(*v),
            h = (HEIGHT - MARGIN_B - py(*v)).max(0.0),
            c = COLORS[i % COLORS.len()]
        );
        let _ = writeln!(
            s,
            r##"<text x="{cx:.1}" y="{ty}" font-size="10" text-anchor="middle">{l}</text>"##,
            cx = x + bar_w / 2.0,
            ty = HEIGHT - MARGIN_B + 16.0,
            l = esc(label)
        );
    }
    footer(&mut s, "", y_label);
    s
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn pad(lo: f64, hi: f64) -> (f64, f64) {
    if hi > lo {
        let p = (hi - lo) * 0.05;
        (lo - p, hi + p)
    } else {
        (lo - 0.5, hi + 0.5)
    }
}

fn span(lo: f64, hi: f64) -> f64 {
    if hi > lo {
        hi - lo
    } else {
        1.0
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn header(title: &str) -> String {
    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">
<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{tx}" y="18" font-size="14" text-anchor="middle" font-weight="bold">{t}</text>
"##,
        tx = WIDTH / 2.0,
        t = esc(title)
    )
}

fn footer(s: &mut String, x_label: &str, y_label: &str) {
    if !x_label.is_empty() {
        let _ = writeln!(
            s,
            r##"<text x="{x}" y="{y}" font-size="12" text-anchor="middle">{l}</text>"##,
            x = WIDTH / 2.0,
            y = HEIGHT - 10.0,
            l = esc(x_label)
        );
    }
    if !y_label.is_empty() {
        let _ = writeln!(
            s,
            r##"<text x="14" y="{y}" font-size="12" text-anchor="middle" transform="rotate(-90 14 {y})">{l}</text>"##,
            y = HEIGHT / 2.0,
            l = esc(y_label)
        );
    }
    s.push_str("</svg>\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, points: &[(f64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new(name);
        for (x, y) in points {
            ts.push(*x, *y);
        }
        ts
    }

    #[test]
    fn line_chart_is_well_formed() {
        let s = line_chart(
            &[
                series("a", &[(0.0, 1.0), (1.0, 2.0)]),
                series("b", &[(0.0, 2.0), (1.0, 1.0)]),
            ],
            "t",
            "x",
            "y",
        );
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<polyline").count(), 2);
        assert!(s.contains(">a</text>"), "legend has series names");
    }

    #[test]
    fn bar_chart_draws_one_rect_per_item() {
        let s = bar_chart(
            &[("x".into(), 1.0), ("y".into(), 2.0), ("z".into(), 0.0)],
            "bars",
            "v",
        );
        assert_eq!(s.matches("<rect").count(), 4, "3 bars + background");
    }

    #[test]
    fn escapes_markup_in_labels() {
        let s = line_chart(
            &[series("a<b>&c", &[(0.0, 1.0), (1.0, 1.0)])],
            "t<",
            "x",
            "y",
        );
        assert!(s.contains("a&lt;b&gt;&amp;c"));
        assert!(!s.contains("a<b>"));
    }

    #[test]
    fn ticks_cover_the_range() {
        let t = axis_ticks(0.0, 1.0);
        assert!(t.len() >= 3 && t.len() <= 7, "{t:?}");
        assert!(t[0] >= 0.0 && *t.last().unwrap() <= 1.0 + 1e-9);
        let t = axis_ticks(0.0, 8_000_000.0);
        assert!(t.len() >= 3, "{t:?}");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = line_chart(&[series("c", &[(0.0, 5.0), (1.0, 5.0)])], "t", "x", "y");
        assert!(!s.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_input_panics() {
        line_chart(&[], "t", "x", "y");
    }
}
