//! Correlation and simple linear-fit helpers for experiment analysis.

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either sample has zero variance (the correlation is
/// undefined there; zero is the neutral report for "no linear relation
/// measurable").
///
/// # Examples
///
/// ```
/// use soe_stats::pearson;
///
/// let x = [1.0, 2.0, 3.0];
/// assert!((pearson(&x, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
/// assert!((pearson(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must pair up");
    assert!(!x.is_empty(), "samples must be non-empty");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Least-squares line fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept)`; a zero-variance `x` yields slope `0.0`
/// and the mean of `y` as intercept.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "samples must pair up");
    assert!(!x.is_empty(), "samples must be non-empty");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if vx == 0.0 {
        (0.0, my)
    } else {
        let slope = cov / vx;
        (slope, my - slope * mx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let inv: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_zero_correlation() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 0.5);
    }

    #[test]
    fn fit_recovers_the_line() {
        let x = [0.0, 1.0, 2.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| -0.5 * v + 4.0).collect();
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope + 0.5).abs() < 1e-12);
        assert!((intercept - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fit_of_constant_x() {
        let (slope, intercept) = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(slope, 0.0);
        assert_eq!(intercept, 2.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
