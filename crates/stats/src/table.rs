//! Markdown table rendering for the table/figure regeneration binaries.

use std::fmt;

/// Column alignment inside a rendered [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left aligned (default).
    #[default]
    Left,
    /// Right aligned — used for numeric columns.
    Right,
    /// Centered.
    Center,
}

/// A simple markdown/ASCII table builder.
///
/// Every table the paper reports is regenerated as one of these so that
/// `EXPERIMENTS.md` can be assembled directly from binary output.
///
/// # Examples
///
/// ```
/// use soe_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["pair".into(), "IPC".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["gcc:eon".into(), "1.52".into()]);
/// let s = t.to_string();
/// assert!(s.contains("gcc:eon"));
/// assert!(s.contains("| 1.52 |"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        assert!(col < self.headers.len(), "column out of range");
        self.aligns[col] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        // Markdown alignment markers need at least 3 dashes.
        for x in &mut w {
            *x = (*x).max(3);
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let fill = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(fill)),
            Align::Right => format!("{}{cell}", " ".repeat(fill)),
            Align::Center => {
                let l = fill / 2;
                format!("{}{cell}{}", " ".repeat(l), " ".repeat(fill - l))
            }
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {} |", Self::pad(cell, widths[i], self.aligns[i]))?;
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        write!(f, "|")?;
        for (i, w) in widths.iter().enumerate() {
            let marker = match self.aligns[i] {
                Align::Left => format!("{} ", "-".repeat(*w + 1)),
                Align::Right => format!(" {}:", "-".repeat(*w)),
                Align::Center => format!(":{}:", "-".repeat(*w)),
            };
            write!(f, "{marker}|")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places — convenience for table
/// cells.
pub fn fnum(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.align(1, Align::Right);
        t.row(vec!["x".into(), "1.0".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("---"));
        assert!(lines[1].contains(':'), "right-aligned marker");
    }

    #[test]
    fn pads_to_widest_cell() {
        let mut t = Table::new(vec!["h".into()]);
        t.row(vec!["wide-cell".into()]);
        t.row(vec!["x".into()]);
        let s = t.to_string();
        for line in s.lines().filter(|l| !l.contains("---")) {
            assert_eq!(line.chars().count(), "| wide-cell |".chars().count());
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a".into()]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn row_count_tracks_rows() {
        let mut t = Table::new(vec!["a".into()]);
        assert_eq!(t.row_count(), 0);
        t.row(vec!["1".into()]);
        assert_eq!(t.row_count(), 1);
    }
}
