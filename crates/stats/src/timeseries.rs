//! Sampled (x, y) traces used for the Figure 5 style time-series plots.

use serde::{Deserialize, Serialize};

/// One sample of a time series: an x coordinate (typically a cycle count)
/// and a y value (typically an IPC, speedup or fairness value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Sample position, e.g. cycles since the start of the run.
    pub x: f64,
    /// Sample value.
    pub y: f64,
}

/// A named, ordered sequence of [`Point`]s.
///
/// The experiment runner emits one `TimeSeries` per plotted quantity
/// (estimated `IPC_ST`, per-thread speedup, achieved fairness, ...) sampled
/// once per Δ window, mirroring Figure 5 of the paper.
///
/// # Examples
///
/// ```
/// use soe_stats::TimeSeries;
///
/// let mut ts = TimeSeries::new("ipc_st[gcc]");
/// ts.push(250_000.0, 1.1);
/// ts.push(500_000.0, 1.3);
/// assert_eq!(ts.len(), 2);
/// assert!((ts.mean_y() - 1.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<Point>,
}

impl TimeSeries {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The display name supplied at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not monotonically non-decreasing; a time series is
    /// sampled forward in simulated time.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(last) = self.points.last() {
            assert!(x >= last.x, "time series x must be non-decreasing");
        }
        self.points.push(Point { x, y });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded samples in order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterator over `(x, y)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().map(|p| (p.x, p.y))
    }

    /// Mean of the y values; `0.0` when empty.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.y).sum::<f64>() / self.points.len() as f64
    }

    /// Smallest y value; `None` when empty.
    pub fn min_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).reduce(f64::min)
    }

    /// Largest y value; `None` when empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).reduce(f64::max)
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<Point> {
        self.points.last().copied()
    }

    /// Downsamples to at most `max_points` samples by keeping every k-th
    /// point (always retaining the final point), for compact rendering.
    pub fn thinned(&self, max_points: usize) -> TimeSeries {
        assert!(max_points > 0, "max_points must be positive");
        if self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut out = TimeSeries::new(self.name.clone());
        for (i, p) in self.points.iter().enumerate() {
            if i % stride == 0 {
                out.points.push(*p);
            }
        }
        if out.points.last() != self.points.last() {
            out.points.push(*self.points.last().expect("non-empty"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_aggregate() {
        let mut ts = TimeSeries::new("s");
        ts.push(0.0, 2.0);
        ts.push(1.0, 4.0);
        assert_eq!(ts.name(), "s");
        assert_eq!(ts.mean_y(), 3.0);
        assert_eq!(ts.min_y(), Some(2.0));
        assert_eq!(ts.max_y(), Some(4.0));
        assert_eq!(ts.last(), Some(Point { x: 1.0, y: 4.0 }));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotone_x_panics() {
        let mut ts = TimeSeries::new("s");
        ts.push(5.0, 1.0);
        ts.push(4.0, 1.0);
    }

    #[test]
    fn thinning_keeps_endpoints() {
        let mut ts = TimeSeries::new("s");
        for i in 0..100 {
            ts.push(i as f64, i as f64);
        }
        let thin = ts.thinned(10);
        assert!(thin.len() <= 11);
        assert_eq!(thin.points()[0].x, 0.0);
        assert_eq!(thin.last().unwrap().x, 99.0);
    }

    #[test]
    fn empty_series_aggregates_are_defined() {
        let ts = TimeSeries::new("empty");
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.mean_y(), 0.0);
        assert_eq!(ts.min_y(), None);
        assert_eq!(ts.max_y(), None);
        assert_eq!(ts.last(), None);
        assert_eq!(ts.iter().count(), 0);
        assert_eq!(ts.thinned(3), ts);
    }

    #[test]
    fn single_point_series_aggregates() {
        let mut ts = TimeSeries::new("one");
        ts.push(7.0, 3.5);
        assert!(!ts.is_empty());
        assert_eq!(ts.mean_y(), 3.5);
        assert_eq!(ts.min_y(), Some(3.5));
        assert_eq!(ts.max_y(), Some(3.5));
        assert_eq!(ts.last(), Some(Point { x: 7.0, y: 3.5 }));
        assert_eq!(ts.thinned(1), ts);
    }

    #[test]
    fn equal_x_samples_are_allowed() {
        // Non-decreasing, not strictly increasing: two events can share a
        // cycle (e.g. a grant and an estimator update in the same tick).
        let mut ts = TimeSeries::new("s");
        ts.push(5.0, 1.0);
        ts.push(5.0, 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn thinning_short_series_is_identity() {
        let mut ts = TimeSeries::new("s");
        ts.push(0.0, 1.0);
        assert_eq!(ts.thinned(10), ts);
    }
}
