//! Streaming (Welford) statistics that never retain the sample.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used inside the simulator's hot loop where retaining every observation
/// (as [`crate::Summary`] does) would be wasteful — e.g. per-cycle occupancy
/// statistics over hundreds of millions of cycles.
///
/// # Examples
///
/// ```
/// use soe_stats::OnlineStats;
///
/// let mut o = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     o.push(v);
/// }
/// assert_eq!(o.mean(), 2.0);
/// assert_eq!(o.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;

    #[test]
    fn matches_batch_summary() {
        let data = [3.1, -2.0, 14.7, 0.0, 8.8, 8.8];
        let mut o = OnlineStats::new();
        o.extend(data);
        let s = Summary::from_iter(data);
        assert!((o.mean() - s.mean()).abs() < 1e-12);
        assert!((o.std_dev() - s.std_dev()).abs() < 1e-12);
        assert_eq!(o.min(), s.min());
        assert_eq!(o.max(), s.max());
    }

    #[test]
    fn empty_accumulator() {
        let o = OnlineStats::new();
        assert_eq!(o.count(), 0);
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.min(), None);
        assert_eq!(o.max(), None);
    }

    #[test]
    fn merge_is_equivalent_to_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a = OnlineStats::new();
        a.extend(a_data);
        let mut b = OnlineStats::new();
        b.extend(b_data);
        a.merge(&b);

        let mut all = OnlineStats::new();
        all.extend(a_data.into_iter().chain(b_data));
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.extend([5.0, 6.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
