//! CSV interchange for [`TimeSeries`] collections.
//!
//! Long format — `series,x,y`, one row per sample — so any number of
//! series with different sample grids share one file, and spreadsheet
//! tools can pivot on the `series` column. Values use Rust's shortest
//! round-trip `f64` formatting, so serialization is byte-stable and
//! [`series_from_csv`] reproduces the input exactly.

use crate::timeseries::TimeSeries;

/// Serializes series as `series,x,y` CSV with a header row. Series keep
/// their given order; samples keep their recorded order.
///
/// Series names must not contain commas or newlines (they are plotted
/// labels like `est_ipc_st[T0]`, never free text).
///
/// # Panics
///
/// Panics if a series name contains a comma, carriage return or newline,
/// which would corrupt the format.
pub fn series_to_csv(series: &[TimeSeries]) -> String {
    let mut out = String::from("series,x,y\n");
    for s in series {
        assert!(
            !s.name().contains([',', '\n', '\r']),
            "series name {:?} cannot be represented in CSV",
            s.name()
        );
        for (x, y) in s.iter() {
            out.push_str(&format!("{},{x},{y}\n", s.name()));
        }
    }
    out
}

/// Parses the [`series_to_csv`] format. Series are reconstructed in
/// first-appearance order; empty series cannot round-trip (they have no
/// rows).
///
/// # Errors
///
/// A descriptive message naming the first malformed line.
pub fn series_from_csv(text: &str) -> Result<Vec<TimeSeries>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "series,x,y")) => {}
        other => {
            return Err(format!(
                "series csv: expected header 'series,x,y', got {:?}",
                other.map(|(_, l)| l)
            ))
        }
    }
    let mut out: Vec<TimeSeries> = Vec::new();
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ',');
        let (name, x, y) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(x), Some(y)) => (n, x, y),
            _ => return Err(format!("series csv line {}: expected 3 fields", i + 1)),
        };
        let x = x
            .parse::<f64>()
            .map_err(|_| format!("series csv line {}: bad x {x:?}", i + 1))?;
        let y = y
            .parse::<f64>()
            .map_err(|_| format!("series csv line {}: bad y {y:?}", i + 1))?;
        match out.iter_mut().rev().find(|s| s.name() == name) {
            Some(s) => s.push(x, y),
            None => {
                let mut s = TimeSeries::new(name);
                s.push(x, y);
                out.push(s);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TimeSeries> {
        let mut a = TimeSeries::new("retired_total");
        a.push(10_000.0, 12_345.0);
        a.push(20_000.0, 24_690.0);
        let mut b = TimeSeries::new("est_ipc_st[T0]");
        b.push(250_000.0, 1.0 / 3.0);
        vec![a, b]
    }

    #[test]
    fn csv_round_trips_exactly() {
        let series = sample();
        let csv = series_to_csv(&series);
        let back = series_from_csv(&csv).unwrap();
        assert_eq!(back, series);
        assert_eq!(
            series_to_csv(&back),
            csv,
            "re-serialization is byte-identical"
        );
    }

    #[test]
    fn header_and_order_are_stable() {
        let csv = series_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines[1], "retired_total,10000,12345");
        assert_eq!(lines[3], "est_ipc_st[T0],250000,0.3333333333333333");
    }

    #[test]
    fn empty_input_serializes_to_header_only() {
        assert_eq!(series_to_csv(&[]), "series,x,y\n");
        assert_eq!(series_from_csv("series,x,y\n").unwrap(), vec![]);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(series_from_csv("").is_err());
        assert!(series_from_csv("wrong header\n").is_err());
        assert!(series_from_csv("series,x,y\nname,1.0\n").is_err());
        assert!(series_from_csv("series,x,y\nname,abc,1.0\n").is_err());
        assert!(series_from_csv("series,x,y\nname,1.0,abc\n").is_err());
    }

    #[test]
    #[should_panic(expected = "cannot be represented")]
    fn comma_in_name_panics() {
        let mut s = TimeSeries::new("a,b");
        s.push(0.0, 0.0);
        series_to_csv(&[s]);
    }
}
