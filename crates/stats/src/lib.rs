//! Statistics and reporting utilities for the SOE fairness reproduction.
//!
//! This crate provides the numeric and presentation plumbing shared by the
//! analytical model (`soe-model`), the experiment runner (`soe-core`) and
//! the benchmark harness (`soe-bench`):
//!
//! * [`Summary`] / [`OnlineStats`] — aggregate statistics (mean, standard
//!   deviation, geometric and harmonic means) over experiment runs,
//! * [`TimeSeries`] — sampled traces used for the Figure 5 style plots,
//!   with CSV interchange via [`series_to_csv`] / [`series_from_csv`],
//! * [`Histogram`] — linear- and log-binned distributions (e.g. achieved
//!   fairness across runs),
//! * [`Table`] — markdown table rendering for the per-table binaries,
//! * [`chart`] — ASCII bar and line charts so every figure has a terminal
//!   rendering.
//!
//! # Examples
//!
//! ```
//! use soe_stats::Summary;
//!
//! let s = Summary::from_iter([1.0, 2.0, 3.0]);
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
mod corr;
mod csv;
mod histogram;
mod online;
mod summary;
pub mod svg;
mod table;
mod timeseries;

pub use corr::{linear_fit, pearson};
pub use csv::{series_from_csv, series_to_csv};
pub use histogram::{Histogram, HistogramBin};
pub use online::OnlineStats;
pub use summary::Summary;
pub use table::{fnum, Align, Table};
pub use timeseries::{Point, TimeSeries};
