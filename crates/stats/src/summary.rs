//! Aggregate statistics over a finished sample.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of a sample of `f64` values.
///
/// `Summary` stores the values it was built from so that quantiles and the
/// different means can all be computed exactly. For streaming aggregation
/// without retaining values use [`crate::OnlineStats`].
///
/// # Examples
///
/// ```
/// use soe_stats::Summary;
///
/// let s = Summary::from_iter([2.0, 8.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.geometric_mean(), 4.0);
/// assert_eq!(s.harmonic_mean(), 3.2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from anything iterable over `f64`.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The recorded observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean; `0.0` for an empty sample.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation; `0.0` for fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Geometric mean; `0.0` for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if any observation is negative (a geometric mean over mixed
    /// signs is meaningless).
    pub fn geometric_mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        assert!(
            self.values.iter().all(|v| *v >= 0.0),
            "geometric mean requires non-negative values"
        );
        let log_sum: f64 = self.values.iter().map(|v| v.ln()).sum();
        (log_sum / self.values.len() as f64).exp()
    }

    /// Harmonic mean; `0.0` for an empty sample.
    ///
    /// This is the mean Luo et al. use to combine per-thread speedups; the
    /// paper's Section 6 compares the metric against the min-ratio fairness.
    pub fn harmonic_mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let recip_sum: f64 = self.values.iter().map(|v| 1.0 / v).sum();
        self.values.len() as f64 / recip_sum
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Linear-interpolated quantile `q` in `[0, 1]`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or any value is NaN.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Median (the 0.5 quantile); `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Summary::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.median(), None);
    }

    #[test]
    fn mean_and_std_dev() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_powers_of_two() {
        let s = Summary::from_iter([1.0, 2.0, 4.0, 8.0]);
        assert!((s.geometric_mean() - 2f64.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_matches_closed_form() {
        let s = Summary::from_iter([1.0, 2.0]);
        assert!((s.harmonic_mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.quantile(0.0), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(40.0));
        assert_eq!(s.median(), Some(25.0));
    }

    #[test]
    fn min_max_track_extremes() {
        let s = Summary::from_iter([3.0, -1.0, 7.5]);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        Summary::from_iter([1.0]).quantile(1.5);
    }
}
