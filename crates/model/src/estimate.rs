//! Eq 11–13 — estimating single-thread performance from hardware counters
//! sampled while the thread runs under SOE.

use serde::{Deserialize, Serialize};

/// One Δ-window sample of the three per-thread hardware counters the
/// mechanism requires (Section 3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSample {
    /// Instructions retired from the thread during the window.
    pub instrs: u64,
    /// Cycles the thread was actually running (from the retirement of the
    /// first instruction after switch-in until switch-out; excludes switch
    /// overhead).
    pub cycles: u64,
    /// Last-level cache misses that caused a thread switch (only the first
    /// miss of each overlapped group is counted).
    pub misses: u64,
}

/// The thread characteristics derived from a [`CounterSample`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadEstimate {
    /// Eq 11 — `IPM = Instrs / max(Misses, 1)`.
    pub ipm: f64,
    /// Eq 12 — `CPM = Cycles / max(Misses, 1)`.
    pub cpm: f64,
    /// Eq 13 — estimated single-thread IPC: `IPM / (CPM + Miss_lat)`.
    pub ipc_st: f64,
}

/// Eq 11–13 — derives a thread's `IPM`, `CPM` and estimated `IPC_ST` from
/// its hardware counters and the (known or measured) miss latency.
///
/// Following the paper, a window with zero misses uses `Misses = 1`; this
/// under-estimates `IPC_ST` slightly but keeps the estimate usable.
///
/// # Examples
///
/// ```
/// use soe_model::{estimate_thread, CounterSample};
///
/// let sample = CounterSample { instrs: 150_000, cycles: 60_000, misses: 10 };
/// let est = estimate_thread(sample, 300.0);
/// assert_eq!(est.ipm, 15_000.0);
/// assert_eq!(est.cpm, 6_000.0);
/// assert!((est.ipc_st - 15_000.0 / 6_300.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `miss_lat` is not positive.
pub fn estimate_thread(sample: CounterSample, miss_lat: f64) -> ThreadEstimate {
    assert!(miss_lat > 0.0, "miss latency must be positive");
    let misses = sample.misses.max(1) as f64;
    let ipm = sample.instrs as f64 / misses;
    let cpm = sample.cycles as f64 / misses;
    let ipc_st = if ipm == 0.0 {
        0.0
    } else {
        ipm / (cpm + miss_lat)
    };
    ThreadEstimate { ipm, cpm, ipc_st }
}

impl CounterSample {
    /// Difference between two cumulative counter readings — the per-window
    /// sample used every Δ cycles.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has any counter larger than `self` (counters
    /// are monotonic).
    pub fn since(&self, earlier: &CounterSample) -> CounterSample {
        assert!(
            self.instrs >= earlier.instrs
                && self.cycles >= earlier.cycles
                && self.misses >= earlier.misses,
            "hardware counters are monotonic"
        );
        CounterSample {
            instrs: self.instrs - earlier.instrs,
            cycles: self.cycles - earlier.cycles,
            misses: self.misses - earlier.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_misses_uses_one() {
        let est = estimate_thread(
            CounterSample {
                instrs: 10_000,
                cycles: 4_000,
                misses: 0,
            },
            300.0,
        );
        assert_eq!(est.ipm, 10_000.0);
        assert_eq!(est.cpm, 4_000.0);
    }

    #[test]
    fn zero_instrs_gives_zero_ipc() {
        let est = estimate_thread(CounterSample::default(), 300.0);
        assert_eq!(est.ipc_st, 0.0);
    }

    #[test]
    fn estimate_matches_analytical_ipc_st() {
        use crate::{SystemParams, ThreadModel};
        let t = ThreadModel::new(2.5, 1_000.0);
        // Synthesize counters consistent with the model: 50 misses.
        let sample = CounterSample {
            instrs: 50_000,
            cycles: (50.0 * t.cpm()) as u64,
            misses: 50,
        };
        let est = estimate_thread(sample, 300.0);
        let expected = t.ipc_st(SystemParams::default());
        assert!((est.ipc_st - expected).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let now = CounterSample {
            instrs: 100,
            cycles: 200,
            misses: 3,
        };
        let before = CounterSample {
            instrs: 40,
            cycles: 90,
            misses: 1,
        };
        let d = now.since(&before);
        assert_eq!(d.instrs, 60);
        assert_eq!(d.cycles, 110);
        assert_eq!(d.misses, 2);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn since_rejects_regressed_counters() {
        let a = CounterSample {
            instrs: 1,
            cycles: 1,
            misses: 0,
        };
        let b = CounterSample {
            instrs: 2,
            cycles: 1,
            misses: 0,
        };
        a.since(&b);
    }
}
