//! Fairness/throughput tradeoff sweeps — the analytical curves of Figure 3.

use serde::{Deserialize, Serialize};

use crate::{FairnessLevel, SoeModel, SystemParams, ThreadModel};

/// One point of an F-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Enforced fairness level.
    pub f: f64,
    /// Absolute SOE throughput (Eq 10) at this level.
    pub throughput: f64,
    /// Throughput relative to no enforcement (`F = 0`); < 1 is
    /// degradation, > 1 is the improvement region Figure 3 shows for
    /// mixed-IPC pairs.
    pub relative: f64,
    /// Fairness actually achieved by the Eq 9 quotas at this level.
    pub fairness: f64,
}

/// Sweeps the enforced fairness `F` from 0 to 1 in `steps` uniform
/// increments (inclusive of both endpoints) and reports throughput and
/// achieved fairness at each level.
///
/// # Examples
///
/// ```
/// use soe_model::{SoeModel, SystemParams, ThreadModel};
/// use soe_model::sweep::f_sweep;
///
/// let m = SoeModel::new(
///     vec![ThreadModel::new(2.5, 15_000.0), ThreadModel::new(2.5, 1_000.0)],
///     SystemParams::default(),
/// );
/// let points = f_sweep(&m, 10);
/// assert_eq!(points.len(), 11);
/// assert_eq!(points[0].relative, 1.0);
/// ```
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn f_sweep(model: &SoeModel, steps: usize) -> Vec<SweepPoint> {
    assert!(steps > 0, "sweep needs at least one step");
    let base = model.analyze(FairnessLevel::NONE).throughput;
    (0..=steps)
        .map(|i| {
            let f = i as f64 / steps as f64;
            let a = model.analyze(FairnessLevel::new(f));
            SweepPoint {
                f,
                throughput: a.throughput,
                relative: a.throughput / base,
                fairness: a.fairness,
            }
        })
        .collect()
}

/// A named Figure 3 configuration: legend label plus the two-thread model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Legend label in the paper's notation,
    /// e.g. `IPCnomiss=[2.5,2.5] IPM=[15000,1000]`.
    pub label: String,
    /// The two-thread model behind the curve.
    pub model: SoeModel,
}

/// The thread-pair combinations plotted in Figure 3: equal-IPC pairs
/// (`IPC_no_miss = [2.5, 2.5]`) across IPM spreads, and the mixed-IPC
/// pairs (`[2, 3]` and `[3, 2]`) that produce the improvement and the
/// worst-case degradation regions.
pub fn figure3_configs() -> Vec<SweepConfig> {
    let params = SystemParams::default();
    let combos: [(f64, f64, f64, f64); 6] = [
        (2.5, 2.5, 15_000.0, 1_000.0),
        (2.5, 2.5, 10_000.0, 2_000.0),
        (2.5, 2.5, 5_000.0, 5_000.0),
        (2.0, 3.0, 15_000.0, 1_000.0),
        (2.0, 3.0, 5_000.0, 1_000.0),
        (3.0, 2.0, 15_000.0, 1_000.0),
    ];
    combos
        .iter()
        .map(|(ipc1, ipc2, ipm1, ipm2)| SweepConfig {
            label: format!("IPCnomiss=[{ipc1},{ipc2}] IPM=[{ipm1},{ipm2}]"),
            model: SoeModel::new(
                vec![
                    ThreadModel::new(*ipc1, *ipm1),
                    ThreadModel::new(*ipc2, *ipm2),
                ],
                params,
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spans_zero_to_one() {
        let m = figure3_configs().remove(0).model;
        let pts = f_sweep(&m, 4);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].f, 0.0);
        assert_eq!(pts[4].f, 1.0);
    }

    #[test]
    fn achieved_fairness_meets_target_everywhere() {
        for cfg in figure3_configs() {
            for p in f_sweep(&cfg.model, 20) {
                assert!(
                    p.fairness >= p.f - 1e-9,
                    "{}: F={} achieved {}",
                    cfg.label,
                    p.f,
                    p.fairness
                );
            }
        }
    }

    #[test]
    fn equal_ipc_pairs_degrade_at_most_five_percent() {
        // Paper: "when IPC_no_miss is similar for both threads, throughput
        // degrades by up to 4%".
        for cfg in figure3_configs()
            .into_iter()
            .filter(|c| c.label.starts_with("IPCnomiss=[2.5,2.5]"))
        {
            for p in f_sweep(&cfg.model, 10) {
                assert!(
                    p.relative > 0.95,
                    "{} degraded to {} at F={}",
                    cfg.label,
                    p.relative,
                    p.f
                );
            }
        }
    }

    #[test]
    fn mixed_ipc_pair_shows_improvement_region() {
        // Paper: "[2, 3] cases ... can actually improve by up to 10%".
        let cfg = figure3_configs()
            .into_iter()
            .find(|c| c.label == "IPCnomiss=[2,3] IPM=[15000,1000]")
            .expect("config present");
        let pts = f_sweep(&cfg.model, 10);
        let best = pts.iter().map(|p| p.relative).fold(0.0f64, f64::max);
        assert!(best > 1.05, "best relative throughput {best}");
    }

    #[test]
    fn reversed_mixed_pair_shows_large_degradation() {
        // Paper: "throughput can degrade by up to 15%".
        let cfg = figure3_configs()
            .into_iter()
            .find(|c| c.label == "IPCnomiss=[3,2] IPM=[15000,1000]")
            .expect("config present");
        let worst = f_sweep(&cfg.model, 10)
            .iter()
            .map(|p| p.relative)
            .fold(f64::INFINITY, f64::min);
        assert!(worst < 0.90, "worst relative throughput {worst}");
        assert!(worst > 0.80, "degradation should stay under ~20%: {worst}");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let m = figure3_configs().remove(0).model;
        f_sweep(&m, 0);
    }
}
