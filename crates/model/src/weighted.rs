//! Weighted (prioritized) fairness — an extension of the paper's Eq 4/9.
//!
//! The paper's mechanism equalizes per-thread speedups. Real schedulers
//! often want *proportional* service instead: thread weights `w_j` such
//! that speedups should satisfy `speedup_j / w_j ≈ speedup_k / w_k` — a
//! foreground thread with `w = 2` is allowed twice the speedup of a
//! background thread with `w = 1`. Setting every weight to 1 recovers the
//! paper's definition exactly.

use serde::{Deserialize, Serialize};

use crate::{fairness_of, FairnessLevel, SystemParams, ThreadModel};

/// Per-thread service weights.
///
/// # Examples
///
/// ```
/// use soe_model::weighted::Weights;
///
/// let w = Weights::new(vec![2.0, 1.0]);
/// assert_eq!(w.get(0), 2.0);
/// assert_eq!(Weights::uniform(3).get(2), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights(Vec<f64>);

impl Weights {
    /// Creates weights.
    ///
    /// # Panics
    ///
    /// Panics if empty or any weight is not strictly positive and finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        Self(weights)
    }

    /// Equal weights for `n` threads (the paper's plain fairness).
    pub fn uniform(n: usize) -> Self {
        Self::new(vec![1.0; n])
    }

    /// Weight of thread `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn get(&self, j: usize) -> f64 {
        self.0[j]
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no weights (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw weights.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

/// Weighted fairness: the minimum ratio between any two *weight-normalized*
/// speedups, `min_{j,k} (speedup_j / w_j) / (speedup_k / w_k)`.
///
/// With uniform weights this is exactly Eq 4.
///
/// # Examples
///
/// ```
/// use soe_model::weighted::{weighted_fairness, Weights};
///
/// // Thread 0 got twice the speedup — perfectly fair under 2:1 weights.
/// let w = Weights::new(vec![2.0, 1.0]);
/// assert!((weighted_fairness(&[0.8, 0.4], &w) - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if lengths differ or any speedup is negative.
pub fn weighted_fairness(speedups: &[f64], weights: &Weights) -> f64 {
    assert_eq!(speedups.len(), weights.len(), "one weight per thread");
    let normalized: Vec<f64> = speedups
        .iter()
        .zip(weights.as_slice())
        .map(|(s, w)| s / w)
        .collect();
    fairness_of(&normalized)
}

/// Weighted Eq 9: the per-thread instructions-per-switch quota achieving
/// weighted fairness at least `f`:
///
/// ```text
/// IPSw_j = min( IPM_j,  w_j · IPC_ST_j · C / F )
/// ```
///
/// where `C` is chosen so that the least-served thread keeps its natural
/// miss-driven switching (generalizing `CPM_min + Miss_lat`).
///
/// # Panics
///
/// Panics if `threads` is empty or lengths differ.
pub fn weighted_ipsw_quotas(
    threads: &[ThreadModel],
    params: SystemParams,
    f: FairnessLevel,
    weights: &Weights,
) -> Vec<f64> {
    assert!(!threads.is_empty(), "need at least one thread");
    assert_eq!(threads.len(), weights.len(), "one weight per thread");
    if !f.is_enforced() {
        return threads.iter().map(|t| t.ipm()).collect();
    }
    // The thread whose natural service-per-weight is smallest anchors the
    // quota scale: its quota stays IPM (no forced switches), everyone
    // else is scaled relative to it.
    let anchor = threads
        .iter()
        .zip(weights.as_slice())
        .map(|(t, w)| (t.cpm() + params.miss_lat) / w)
        .fold(f64::INFINITY, f64::min);
    threads
        .iter()
        .zip(weights.as_slice())
        .map(|(t, w)| {
            let quota = t.ipc_st(params) * w * anchor / f.get();
            quota.min(t.ipm())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipsw_quotas;

    fn threads() -> Vec<ThreadModel> {
        vec![
            ThreadModel::new(2.5, 15_000.0),
            ThreadModel::new(2.5, 1_000.0),
        ]
    }

    /// Speedup is proportional to `IPSw_j / IPC_ST_j` (the round length
    /// cancels between threads).
    fn speedup_proxies(quotas: &[f64], threads: &[ThreadModel], params: SystemParams) -> Vec<f64> {
        quotas
            .iter()
            .zip(threads)
            .map(|(q, t)| q / t.ipc_st(params))
            .collect()
    }

    #[test]
    fn uniform_weights_recover_eq9() {
        let params = SystemParams::default();
        let t = threads();
        let w = Weights::uniform(2);
        for f in [0.25, 0.5, 1.0] {
            let a = weighted_ipsw_quotas(&t, params, FairnessLevel::new(f), &w);
            let b = ipsw_quotas(&t, params, FairnessLevel::new(f));
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "weighted {x} vs plain {y}");
            }
        }
    }

    #[test]
    fn weighted_quotas_achieve_weighted_fairness() {
        let params = SystemParams::default();
        let t = threads();
        let w = Weights::new(vec![3.0, 1.0]);
        let q = weighted_ipsw_quotas(&t, params, FairnessLevel::PERFECT, &w);
        let s = speedup_proxies(&q, &t, params);
        assert!(
            (weighted_fairness(&s, &w) - 1.0).abs() < 1e-9,
            "weighted fairness {}",
            weighted_fairness(&s, &w)
        );
        // The favored thread's normalized share implies 3x the speedup.
        assert!((s[0] / s[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_quotas_respect_ipm_cap() {
        let params = SystemParams::default();
        let t = threads();
        let w = Weights::new(vec![1.0, 100.0]); // missy thread hugely favored
        let q = weighted_ipsw_quotas(&t, params, FairnessLevel::PERFECT, &w);
        assert!(q[1] <= t[1].ipm() + 1e-9, "cap at IPM");
    }

    #[test]
    fn weighted_fairness_normalizes() {
        let w = Weights::new(vec![2.0, 1.0]);
        assert!(
            weighted_fairness(&[0.4, 0.4], &w) < 1.0,
            "equal speedups are NOT 2:1-fair"
        );
        assert!((weighted_fairness(&[0.4, 0.2], &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        Weights::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per thread")]
    fn mismatched_weights_panic() {
        weighted_ipsw_quotas(
            &threads(),
            SystemParams::default(),
            FairnessLevel::HALF,
            &Weights::uniform(3),
        );
    }
}
