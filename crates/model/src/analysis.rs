//! The full SOE analysis: per-thread SOE IPC, speedups, fairness and
//! throughput under a fairness target (Eq 2, 6, 10).

use serde::{Deserialize, Serialize};

use crate::{fairness_of, ipsw_quotas, FairnessLevel, SystemParams, ThreadModel};

/// A set of threads sharing one SOE core, ready for analysis.
///
/// # Examples
///
/// ```
/// use soe_model::{FairnessLevel, SoeModel, SystemParams, ThreadModel};
///
/// let m = SoeModel::new(
///     vec![ThreadModel::new(2.5, 15_000.0), ThreadModel::new(2.5, 1_000.0)],
///     SystemParams::default(),
/// );
/// let a = m.analyze(FairnessLevel::HALF);
/// assert!(a.fairness >= 0.5 - 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoeModel {
    threads: Vec<ThreadModel>,
    params: SystemParams,
}

/// Analysis results for one thread under SOE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadAnalysis {
    /// Eq 1 — IPC when executed alone on the processor.
    pub ipc_st: f64,
    /// Instructions-per-switch quota in effect (Eq 9; `IPM` when `F = 0`).
    pub ipsw: f64,
    /// Average execution cycles per scheduling round (`CPSw`).
    pub cpsw: f64,
    /// Eq 6 — IPC while running with the other threads under SOE.
    pub ipc_soe: f64,
    /// `IPC_SOE / IPC_ST` — the thread's speedup (a slowdown when < 1).
    pub speedup: f64,
}

/// Whole-system analysis results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoeAnalysis {
    /// Fairness level the quotas were computed for.
    pub target: FairnessLevel,
    /// Per-thread breakdown, in input order.
    pub per_thread: Vec<ThreadAnalysis>,
    /// Eq 10 — total SOE throughput (sum of per-thread SOE IPCs).
    pub throughput: f64,
    /// Eq 4 — achieved fairness: min ratio between any two speedups.
    pub fairness: f64,
    /// Throughput gain of SOE over time-multiplexed single-thread
    /// execution of the same threads (see [`SoeModel::single_thread_throughput`]).
    pub soe_speedup: f64,
}

impl SoeModel {
    /// Creates a model over `threads` sharing a machine with `params`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    pub fn new(threads: Vec<ThreadModel>, params: SystemParams) -> Self {
        assert!(!threads.is_empty(), "need at least one thread");
        Self { threads, params }
    }

    /// The thread models, in input order.
    pub fn threads(&self) -> &[ThreadModel] {
        &self.threads
    }

    /// The machine parameters.
    pub fn params(&self) -> SystemParams {
        self.params
    }

    /// Per-thread single-thread IPCs (Eq 1).
    pub fn ipc_st(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.ipc_st(self.params)).collect()
    }

    /// Baseline throughput of running the threads one after the other on a
    /// single-threaded machine, assuming each executes the same number of
    /// instructions: total instructions over total cycles, i.e. the
    /// harmonic mean of the per-thread `IPC_ST` values.
    ///
    /// This is the comparator behind the paper's "speedup of SOE over
    /// single thread" (the machine either interleaves the threads with SOE
    /// or simply time-multiplexes them at coarse granularity with no
    /// stall-hiding).
    pub fn single_thread_throughput(&self) -> f64 {
        let n = self.threads.len() as f64;
        let recip: f64 = self.ipc_st().iter().map(|ipc| 1.0 / ipc).sum();
        n / recip
    }

    /// Full analysis at fairness target `f`: quotas via Eq 9, per-thread
    /// SOE IPC via Eq 6, throughput via Eq 10 and achieved fairness via
    /// Eq 4.
    pub fn analyze(&self, f: FairnessLevel) -> SoeAnalysis {
        let quotas = ipsw_quotas(&self.threads, self.params, f);
        self.analyze_with_quotas(f, &quotas)
    }

    /// Whether Eq 2/6's validity assumption holds at target `f`: a miss
    /// that switches thread `j` out must be resolved by the time `j` runs
    /// again, i.e. for every thread the rest of the round must cover the
    /// memory latency. Outside this domain the model over-estimates the
    /// miss-heavy threads' SOE IPC (the paper states Eq 2 "holds as long
    /// as misses that cause thread switches are resolved by the time
    /// their threads are running again").
    pub fn miss_resolution_holds(&self, f: FairnessLevel) -> bool {
        let quotas = ipsw_quotas(&self.threads, self.params, f);
        let cpsw: Vec<f64> = self
            .threads
            .iter()
            .zip(&quotas)
            .map(|(t, q)| q / t.ipc_no_miss())
            .collect();
        let round: f64 = cpsw.iter().map(|c| c + self.params.switch_lat).sum();
        cpsw.iter()
            .all(|c| round - (c + self.params.switch_lat) >= self.params.miss_lat)
    }

    /// Analysis under explicitly supplied instructions-per-switch quotas
    /// (used for what-if studies and for validating the runtime engine's
    /// quota decisions against the model).
    ///
    /// # Panics
    ///
    /// Panics if `quotas` has a different length than the thread list or
    /// contains a non-positive quota.
    pub fn analyze_with_quotas(&self, target: FairnessLevel, quotas: &[f64]) -> SoeAnalysis {
        assert_eq!(
            quotas.len(),
            self.threads.len(),
            "one quota per thread required"
        );
        assert!(quotas.iter().all(|q| *q > 0.0), "quotas must be positive");
        // CPSw_j: execution cycles per round. Instructions run at
        // IPC_no_miss; miss stalls are hidden by the other threads, so a
        // quota of IPSw_j instructions takes IPSw_j / IPC_no_miss_j cycles
        // of core occupancy. A quota capped at IPM_j reduces to CPM_j.
        let cpsw: Vec<f64> = self
            .threads
            .iter()
            .zip(quotas)
            .map(|(t, q)| q / t.ipc_no_miss())
            .collect();
        // Eq 6 denominator: one full SOE round.
        let round: f64 = cpsw.iter().map(|c| c + self.params.switch_lat).sum();
        let per_thread: Vec<ThreadAnalysis> = self
            .threads
            .iter()
            .zip(quotas.iter().zip(&cpsw))
            .map(|(t, (q, c))| {
                let ipc_st = t.ipc_st(self.params);
                let ipc_soe = q / round;
                ThreadAnalysis {
                    ipc_st,
                    ipsw: *q,
                    cpsw: *c,
                    ipc_soe,
                    speedup: ipc_soe / ipc_st,
                }
            })
            .collect();
        let throughput: f64 = per_thread.iter().map(|t| t.ipc_soe).sum();
        let speedups: Vec<f64> = per_thread.iter().map(|t| t.speedup).collect();
        SoeAnalysis {
            target,
            per_thread,
            throughput,
            fairness: fairness_of(&speedups),
            soe_speedup: throughput / self.single_thread_throughput(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_model() -> SoeModel {
        SoeModel::new(
            vec![
                ThreadModel::new(2.5, 15_000.0),
                ThreadModel::new(2.5, 1_000.0),
            ],
            SystemParams::default(),
        )
    }

    #[test]
    fn unforced_soe_matches_eq2() {
        let a = table2_model().analyze(FairnessLevel::NONE);
        // Round = (6000 + 25) + (400 + 25) = 6450 cycles.
        assert!((a.per_thread[0].ipc_soe - 15_000.0 / 6_450.0).abs() < 1e-9);
        assert!((a.per_thread[1].ipc_soe - 1_000.0 / 6_450.0).abs() < 1e-9);
    }

    #[test]
    fn table2_slowdowns_without_fairness() {
        let a = table2_model().analyze(FairnessLevel::NONE);
        // Paper: thread 1's IPC drops by a factor of 1.02, thread 2's by 9.2.
        let drop1 = 1.0 / a.per_thread[0].speedup;
        let drop2 = 1.0 / a.per_thread[1].speedup;
        assert!((drop1 - 1.02).abs() < 0.01, "drop1 = {drop1}");
        assert!((drop2 - 9.2).abs() < 0.1, "drop2 = {drop2}");
        assert!(
            (a.fairness - 0.11).abs() < 0.005,
            "fairness = {}",
            a.fairness
        );
    }

    #[test]
    fn table2_perfect_fairness_equalizes_slowdown() {
        let a = table2_model().analyze(FairnessLevel::PERFECT);
        // Paper: both threads slow down by 1.59 (speedup 0.63) at F = 1.
        for t in &a.per_thread {
            assert!(
                (1.0 / t.speedup - 1.59).abs() < 0.01,
                "slowdown {}",
                1.0 / t.speedup
            );
        }
        assert!(a.fairness > 0.999);
    }

    #[test]
    fn half_fairness_allows_factor_two() {
        let a = table2_model().analyze(FairnessLevel::HALF);
        assert!((a.fairness - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_sum_of_per_thread_ipc() {
        let a = table2_model().analyze(FairnessLevel::QUARTER);
        let sum: f64 = a.per_thread.iter().map(|t| t.ipc_soe).sum();
        assert!((a.throughput - sum).abs() < 1e-12);
    }

    #[test]
    fn enforcement_costs_throughput_for_equal_ipc_threads() {
        let m = table2_model();
        let t0 = m.analyze(FairnessLevel::NONE).throughput;
        let t1 = m.analyze(FairnessLevel::PERFECT).throughput;
        assert!(t1 < t0);
        // Paper's Fig 3: same-IPC_no_miss pairs degrade by at most ~4%.
        assert!(t0 / t1 < 1.05, "degradation {}", 1.0 - t1 / t0);
    }

    #[test]
    fn enforcement_can_improve_throughput_for_mixed_ipc_threads() {
        // Fig 3's IPC_no_miss = [2, 3] case: the missy thread computes
        // faster, so biasing execution toward it helps throughput.
        let m = SoeModel::new(
            vec![
                ThreadModel::new(2.0, 15_000.0),
                ThreadModel::new(3.0, 1_000.0),
            ],
            SystemParams::default(),
        );
        let t0 = m.analyze(FairnessLevel::NONE).throughput;
        let t1 = m.analyze(FairnessLevel::PERFECT).throughput;
        assert!(t1 > t0 * 1.05, "expected >5% gain, got {}", t1 / t0 - 1.0);
    }

    #[test]
    fn soe_speedup_over_single_thread_is_positive_for_table2() {
        let a = table2_model().analyze(FairnessLevel::NONE);
        assert!(a.soe_speedup > 1.0);
    }

    #[test]
    fn single_thread_throughput_is_harmonic_mean() {
        let m = table2_model();
        let ipcs = m.ipc_st();
        let expected = 2.0 / (1.0 / ipcs[0] + 1.0 / ipcs[1]);
        assert!((m.single_thread_throughput() - expected).abs() < 1e-12);
    }

    #[test]
    fn three_thread_fairness_enforced() {
        let m = SoeModel::new(
            vec![
                ThreadModel::new(2.5, 20_000.0),
                ThreadModel::new(1.5, 2_000.0),
                ThreadModel::new(2.0, 600.0),
            ],
            SystemParams::default(),
        );
        for f in [0.25, 0.5, 1.0] {
            let a = m.analyze(FairnessLevel::new(f));
            assert!(a.fairness >= f - 1e-9, "F={f} achieved {}", a.fairness);
        }
    }

    #[test]
    #[should_panic(expected = "one quota per thread")]
    fn mismatched_quota_length_panics() {
        table2_model().analyze_with_quotas(FairnessLevel::NONE, &[100.0]);
    }
}
