//! Workload and machine parameters of the analytical model.

use serde::{Deserialize, Serialize};

/// Machine parameters of the analytical model: the average memory access
/// latency seen by a last-level cache miss and the thread switch overhead.
///
/// The paper's evaluation uses `Miss_lat = 300` cycles (75 ns at 4 GHz) and
/// `Switch_lat ≈ 25` cycles (a 6-cycle pipeline drain plus refill), which is
/// what [`SystemParams::default`] returns.
///
/// # Examples
///
/// ```
/// use soe_model::SystemParams;
///
/// let p = SystemParams::default();
/// assert_eq!(p.miss_lat, 300.0);
/// assert_eq!(p.switch_lat, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Average memory access latency of a last-level cache miss, in cycles.
    pub miss_lat: f64,
    /// Average overhead of one thread switch, in cycles.
    pub switch_lat: f64,
}

impl SystemParams {
    /// Creates machine parameters.
    ///
    /// # Panics
    ///
    /// Panics if `miss_lat` is not positive or `switch_lat` is negative.
    pub fn new(miss_lat: f64, switch_lat: f64) -> Self {
        assert!(miss_lat > 0.0, "miss latency must be positive");
        assert!(switch_lat >= 0.0, "switch latency must be non-negative");
        Self {
            miss_lat,
            switch_lat,
        }
    }
}

impl Default for SystemParams {
    /// The paper's evaluation parameters: 300-cycle memory, 25-cycle switch.
    fn default() -> Self {
        Self::new(300.0, 25.0)
    }
}

/// Analytical description of one thread: its IPC excluding miss stalls and
/// its average number of instructions between last-level cache misses.
///
/// `CPM` (cycles per miss) is derived: `CPM = IPM / IPC_no_miss`.
///
/// # Examples
///
/// ```
/// use soe_model::{SystemParams, ThreadModel};
///
/// let t = ThreadModel::new(2.5, 15_000.0);
/// assert_eq!(t.cpm(), 6_000.0);
/// // Eq 1: IPC_ST = IPM / (CPM + Miss_lat)
/// let ipc_st = t.ipc_st(SystemParams::default());
/// assert!((ipc_st - 15_000.0 / 6_300.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadModel {
    ipc_no_miss: f64,
    ipm: f64,
}

impl ThreadModel {
    /// Creates a thread model from its no-miss IPC and instructions per
    /// miss.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn new(ipc_no_miss: f64, ipm: f64) -> Self {
        assert!(ipc_no_miss > 0.0, "IPC excluding misses must be positive");
        assert!(ipm > 0.0, "instructions per miss must be positive");
        Self { ipc_no_miss, ipm }
    }

    /// Creates a thread model from measured `IPM` and `CPM` averages
    /// (the form produced by the runtime hardware counters, Eq 11–12).
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn from_ipm_cpm(ipm: f64, cpm: f64) -> Self {
        assert!(ipm > 0.0 && cpm > 0.0, "IPM and CPM must be positive");
        Self {
            ipc_no_miss: ipm / cpm,
            ipm,
        }
    }

    /// Average IPC while the thread is actually executing (miss stalls
    /// excluded).
    pub fn ipc_no_miss(&self) -> f64 {
        self.ipc_no_miss
    }

    /// Average instructions retired between two consecutive last-level
    /// cache misses (`IPM`).
    pub fn ipm(&self) -> f64 {
        self.ipm
    }

    /// Average execution cycles between two consecutive misses (`CPM`),
    /// excluding the miss stall itself.
    pub fn cpm(&self) -> f64 {
        self.ipm / self.ipc_no_miss
    }

    /// Eq 1 — single-thread IPC: `IPM / (CPM + Miss_lat)`.
    pub fn ipc_st(&self, params: SystemParams) -> f64 {
        self.ipm / (self.cpm() + params.miss_lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpm_is_ipm_over_ipc() {
        let t = ThreadModel::new(2.0, 1_000.0);
        assert_eq!(t.cpm(), 500.0);
    }

    #[test]
    fn ipc_st_matches_table2_threads() {
        let params = SystemParams::default();
        let t1 = ThreadModel::new(2.5, 15_000.0);
        let t2 = ThreadModel::new(2.5, 1_000.0);
        assert!((t1.ipc_st(params) - 2.381).abs() < 1e-3);
        assert!((t2.ipc_st(params) - 1.429).abs() < 1e-3);
    }

    #[test]
    fn from_ipm_cpm_round_trips() {
        let t = ThreadModel::new(2.5, 15_000.0);
        let u = ThreadModel::from_ipm_cpm(t.ipm(), t.cpm());
        assert!((u.ipc_no_miss() - 2.5).abs() < 1e-12);
        assert_eq!(u.ipm(), 15_000.0);
    }

    #[test]
    fn ipc_st_is_below_ipc_no_miss() {
        let t = ThreadModel::new(3.0, 500.0);
        assert!(t.ipc_st(SystemParams::default()) < t.ipc_no_miss());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ipm_panics() {
        ThreadModel::new(2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "miss latency")]
    fn zero_miss_lat_panics() {
        SystemParams::new(0.0, 25.0);
    }
}
