//! Analytical model of Switch-on-Event (SOE) multithreading fairness and
//! throughput — Section 2 of *"Fairness and Throughput in Switch on Event
//! Multithreading"* (Gabor, Weiss, Mendelson; MICRO 2006).
//!
//! The paper models a thread as a sequence of instruction runs delimited by
//! long-latency last-level cache misses, characterized by two averages:
//!
//! * `IPM` — instructions per miss,
//! * `CPM` — cycles per miss (execution cycles, excluding the miss stall),
//!
//! together with two machine parameters: the memory access latency
//! `Miss_lat` and the thread switch overhead `Switch_lat`.
//!
//! From these the model derives (equation numbers follow the paper):
//!
//! * Eq 1 — single-thread IPC: `IPC_ST = IPM / (CPM + Miss_lat)`,
//! * Eq 2/6 — per-thread SOE IPC, with or without forced switch quotas,
//! * Eq 4 — the **fairness metric**: the minimum ratio between the
//!   speedups of any two threads,
//! * Eq 9 — the per-thread instructions-per-switch quota `IPSw_j` that
//!   guarantees a target fairness `F`,
//! * Eq 10 — SOE throughput,
//! * Eq 11–13 — the runtime estimation of `IPC_ST` from hardware counters.
//!
//! The [`SoeModel`] type bundles a set of [`ThreadModel`]s with
//! [`SystemParams`] and evaluates all of the above; [`sweep`] regenerates
//! the Figure 3 tradeoff curves and [`timeshare`] the Section 6
//! time-sharing baseline.
//!
//! # Examples
//!
//! The worked example of the paper's Table 2 — two threads at 2.5
//! IPC-excluding-misses, one missing every 15 000 instructions and the
//! other every 1 000:
//!
//! ```
//! use soe_model::{FairnessLevel, SoeModel, SystemParams, ThreadModel};
//!
//! let model = SoeModel::new(
//!     vec![ThreadModel::new(2.5, 15_000.0), ThreadModel::new(2.5, 1_000.0)],
//!     SystemParams::new(300.0, 25.0),
//! );
//! let unfair = model.analyze(FairnessLevel::NONE);
//! assert!(unfair.fairness < 0.12); // thread 2 is almost starved
//!
//! let fair = model.analyze(FairnessLevel::PERFECT);
//! assert!(fair.fairness > 0.999); // equal slowdowns
//! // ... at the cost of forcing thread 1 to switch every ~1667 instructions
//! assert!((fair.per_thread[0].ipsw - 1667.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod estimate;
pub mod example;
mod fairness;
mod params;
mod quota;
pub mod sweep;
pub mod timeshare;
pub mod weighted;

pub use analysis::{SoeAnalysis, SoeModel, ThreadAnalysis};
pub use estimate::{estimate_thread, CounterSample, ThreadEstimate};
pub use fairness::{fairness_of, harmonic_mean_fairness, weighted_speedup, FairnessLevel};
pub use params::{SystemParams, ThreadModel};
pub use quota::ipsw_quotas;
