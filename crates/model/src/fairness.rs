//! The fairness metric (Eq 4) and the alternative metrics from related
//! work that Section 6 of the paper discusses.

use serde::{Deserialize, Serialize};

/// A target fairness level `F ∈ [0, 1]` (Eq 8).
///
/// * `F = 0` ([`FairnessLevel::NONE`]) disables enforcement: threads switch
///   only on last-level cache misses,
/// * `F = 1` ([`FairnessLevel::PERFECT`]) demands equal per-thread
///   speedups,
/// * intermediate values bound the allowed ratio between the largest and
///   smallest speedup — e.g. `F = 1/2` allows at most a 2× spread.
///
/// # Examples
///
/// ```
/// use soe_model::FairnessLevel;
///
/// let half = FairnessLevel::new(0.5);
/// assert_eq!(half.get(), 0.5);
/// assert!(half.is_enforced());
/// assert!(!FairnessLevel::NONE.is_enforced());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FairnessLevel(f64);

impl FairnessLevel {
    /// No enforcement (`F = 0`): switch only on events.
    pub const NONE: FairnessLevel = FairnessLevel(0.0);
    /// A quarter (`F = 1/4`): speedups may differ by at most 4×.
    pub const QUARTER: FairnessLevel = FairnessLevel(0.25);
    /// A half (`F = 1/2`): speedups may differ by at most 2× — the
    /// compromise the paper recommends.
    pub const HALF: FairnessLevel = FairnessLevel(0.5);
    /// Perfect fairness (`F = 1`): equal speedups.
    pub const PERFECT: FairnessLevel = FairnessLevel(1.0);

    /// Creates a fairness level.
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]` or NaN.
    pub fn new(f: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&f),
            "fairness level must be in [0, 1], got {f}"
        );
        Self(f)
    }

    /// The raw level in `[0, 1]`.
    pub fn get(&self) -> f64 {
        self.0
    }

    /// Whether the level actually enforces anything (`F > 0`).
    pub fn is_enforced(&self) -> bool {
        self.0 > 0.0
    }

    /// The four levels evaluated throughout the paper:
    /// `F = 0, 1/4, 1/2, 1`.
    pub fn paper_levels() -> [FairnessLevel; 4] {
        [Self::NONE, Self::QUARTER, Self::HALF, Self::PERFECT]
    }

    /// Display label matching the paper's notation (`F=0`, `F=1/4`, ...).
    pub fn label(&self) -> String {
        match *self {
            Self::NONE => "F=0".to_string(),
            Self::QUARTER => "F=1/4".to_string(),
            Self::HALF => "F=1/2".to_string(),
            Self::PERFECT => "F=1".to_string(),
            _ => format!("F={:.3}", self.0),
        }
    }
}

impl std::fmt::Display for FairnessLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Eq 4 — the fairness of a set of per-thread speedups: the minimum ratio
/// between the speedups of any two threads, which equals
/// `min(speedups) / max(speedups)`.
///
/// Returns `1.0` for fewer than two threads (a single thread is trivially
/// fair) and `0.0` if any thread is completely starved (zero speedup).
///
/// # Examples
///
/// ```
/// use soe_model::fairness_of;
///
/// assert_eq!(fairness_of(&[0.5, 0.5]), 1.0);
/// assert_eq!(fairness_of(&[0.2, 0.8]), 0.25);
/// assert_eq!(fairness_of(&[0.0, 0.9]), 0.0);
/// ```
///
/// # Panics
///
/// Panics if any speedup is negative or NaN.
pub fn fairness_of(speedups: &[f64]) -> f64 {
    assert!(
        speedups.iter().all(|s| s.is_finite() && *s >= 0.0),
        "speedups must be finite and non-negative"
    );
    if speedups.len() < 2 {
        return 1.0;
    }
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    if max == 0.0 {
        // All threads starved; by convention completely unfair.
        return 0.0;
    }
    min / max
}

/// Snavely et al.'s *weighted speedup*: the sum of per-thread speedups
/// (`WS = Σ IPC_SOE_j / IPC_ST_j`). A throughput-oriented metric the paper
/// compares against in Section 6.
pub fn weighted_speedup(speedups: &[f64]) -> f64 {
    speedups.iter().sum()
}

/// Luo et al.'s *harmonic mean of speedups* — the combined
/// fairness/throughput metric the paper argues is biased toward fairness.
///
/// Returns `0.0` when the slice is empty or any speedup is zero (a starved
/// thread drives the harmonic mean to zero).
pub fn harmonic_mean_fairness(speedups: &[f64]) -> f64 {
    if speedups.is_empty() || speedups.contains(&0.0) {
        return 0.0;
    }
    let recip: f64 = speedups.iter().map(|s| 1.0 / s).sum();
    speedups.len() as f64 / recip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_is_min_over_max() {
        assert!((fairness_of(&[0.1, 0.2, 0.4]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn equal_speedups_are_perfectly_fair() {
        assert_eq!(fairness_of(&[0.7, 0.7, 0.7]), 1.0);
    }

    #[test]
    fn single_thread_is_fair() {
        assert_eq!(fairness_of(&[0.3]), 1.0);
        assert_eq!(fairness_of(&[]), 1.0);
    }

    #[test]
    fn starved_thread_is_completely_unfair() {
        assert_eq!(fairness_of(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn all_starved_is_unfair_not_nan() {
        assert_eq!(fairness_of(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn fairness_is_stricter_than_harmonic_mean() {
        // Enforcing min-ratio fairness bounds the harmonic mean too, but a
        // good harmonic mean does not imply good min-ratio fairness: one
        // very unfair pair can hide behind many fair ones.
        let spread = [0.05, 0.9, 0.9, 0.9];
        let h = harmonic_mean_fairness(&spread);
        let f = fairness_of(&spread);
        assert!(f < 0.06);
        assert!(h > 0.15, "harmonic mean averages the starvation away: {h}");
    }

    #[test]
    fn weighted_speedup_is_sum() {
        assert_eq!(weighted_speedup(&[0.5, 0.7]), 1.2);
    }

    #[test]
    fn harmonic_mean_zero_cases() {
        assert_eq!(harmonic_mean_fairness(&[]), 0.0);
        assert_eq!(harmonic_mean_fairness(&[0.0, 0.5]), 0.0);
    }

    #[test]
    fn fairness_level_labels() {
        assert_eq!(FairnessLevel::NONE.label(), "F=0");
        assert_eq!(FairnessLevel::QUARTER.label(), "F=1/4");
        assert_eq!(FairnessLevel::HALF.label(), "F=1/2");
        assert_eq!(FairnessLevel::PERFECT.label(), "F=1");
        assert_eq!(FairnessLevel::new(0.3).label(), "F=0.300");
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_level_panics() {
        FairnessLevel::new(1.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_speedup_panics() {
        fairness_of(&[-0.1, 0.5]);
    }
}
