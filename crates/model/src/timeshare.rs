//! Section 6's simple time-sharing baseline: switch threads every fixed
//! number of cycles instead of tracking speedups.
//!
//! The paper argues this is ineffective: a small quota costs many pipeline
//! flushes; a large quota equalizes *time*, not *slowdown*, so threads with
//! different miss behaviour still see unequal speedups.

use serde::{Deserialize, Serialize};

use crate::{fairness_of, SoeModel};

/// Analysis of one thread under cycle-quota time sharing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeShareThread {
    /// Execution cycles the thread occupies per round (quota, or `CPM` if
    /// a miss switches it out earlier).
    pub cycles_per_round: f64,
    /// Instructions the thread retires per round.
    pub instrs_per_round: f64,
    /// IPC under time sharing.
    pub ipc: f64,
    /// Speedup relative to running alone (Eq 1).
    pub speedup: f64,
}

/// Whole-system time-sharing analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeShareAnalysis {
    /// The cycle quota per scheduling round.
    pub quota_cycles: f64,
    /// Per-thread breakdown, in input order.
    pub per_thread: Vec<TimeShareThread>,
    /// Total throughput (sum of per-thread IPCs).
    pub throughput: f64,
    /// Eq 4 fairness of the resulting speedups.
    pub fairness: f64,
}

/// Analyzes simple time sharing with a fixed cycle quota `quota_cycles`:
/// each round a thread runs until it has executed `quota_cycles` cycles or
/// hits a last-level cache miss, whichever comes first (SOE still switches
/// on misses — time sharing only *adds* switch points).
///
/// # Examples
///
/// The Section 6 example: a 400-cycle quota on the Table 2 threads yields
/// speedups ≈ 0.5 and 0.8 — fairness only 0.6, although time is divided
/// equally:
///
/// ```
/// use soe_model::{SoeModel, SystemParams, ThreadModel};
/// use soe_model::timeshare::time_share;
///
/// let m = SoeModel::new(
///     vec![ThreadModel::new(2.5, 15_000.0), ThreadModel::new(2.5, 1_000.0)],
///     SystemParams::default(),
/// );
/// let a = time_share(&m, 400.0);
/// assert!((a.per_thread[0].speedup - 0.5).abs() < 0.01);
/// assert!((a.per_thread[1].speedup - 0.8).abs() < 0.03);
/// assert!((a.fairness - 0.6).abs() < 0.01);
/// ```
///
/// # Panics
///
/// Panics if `quota_cycles` is not positive.
pub fn time_share(model: &SoeModel, quota_cycles: f64) -> TimeShareAnalysis {
    assert!(quota_cycles > 0.0, "cycle quota must be positive");
    let params = model.params();
    let per_round: Vec<(f64, f64)> = model
        .threads()
        .iter()
        .map(|t| {
            // The thread hits a miss after CPM execution cycles on
            // average; the quota caps its slice before that point.
            let cycles = t.cpm().min(quota_cycles);
            let instrs = cycles * t.ipc_no_miss();
            (cycles, instrs)
        })
        .collect();
    let round: f64 = per_round.iter().map(|(c, _)| c + params.switch_lat).sum();
    let per_thread: Vec<TimeShareThread> = model
        .threads()
        .iter()
        .zip(&per_round)
        .map(|(t, (cycles, instrs))| {
            let ipc = instrs / round;
            TimeShareThread {
                cycles_per_round: *cycles,
                instrs_per_round: *instrs,
                ipc,
                speedup: ipc / t.ipc_st(params),
            }
        })
        .collect();
    let throughput = per_thread.iter().map(|t| t.ipc).sum();
    let speedups: Vec<f64> = per_thread.iter().map(|t| t.speedup).collect();
    TimeShareAnalysis {
        quota_cycles,
        per_thread,
        throughput,
        fairness: fairness_of(&speedups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FairnessLevel, SystemParams, ThreadModel};

    fn table2_model() -> SoeModel {
        SoeModel::new(
            vec![
                ThreadModel::new(2.5, 15_000.0),
                ThreadModel::new(2.5, 1_000.0),
            ],
            SystemParams::default(),
        )
    }

    #[test]
    fn section6_example_speedups() {
        let a = time_share(&table2_model(), 400.0);
        assert!((a.per_thread[0].speedup - 0.494).abs() < 0.005);
        assert!((a.per_thread[1].speedup - 0.823).abs() < 0.005);
        assert!((a.fairness - 0.6).abs() < 0.01);
    }

    #[test]
    fn mechanism_beats_time_sharing_on_fairness() {
        // Section 6's punchline: the proposed mechanism achieves fairness
        // 1.0 on the same scenario where equal time sharing achieves 0.6.
        let m = table2_model();
        let ts = time_share(&m, 400.0);
        let soe = m.analyze(FairnessLevel::PERFECT);
        assert!(soe.fairness > 0.999);
        assert!(ts.fairness < 0.65);
    }

    #[test]
    fn tiny_quota_is_fairer_but_slower() {
        let m = table2_model();
        let small = time_share(&m, 50.0);
        let large = time_share(&m, 5_000.0);
        assert!(small.fairness >= large.fairness);
        assert!(small.throughput < large.throughput);
    }

    #[test]
    fn quota_larger_than_all_cpm_reduces_to_event_switching() {
        let m = table2_model();
        let a = time_share(&m, 1e9);
        let soe = m.analyze(FairnessLevel::NONE);
        assert!((a.throughput - soe.throughput).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cycle quota")]
    fn non_positive_quota_panics() {
        time_share(&table2_model(), 0.0);
    }
}
