//! The paper's worked examples as ready-made scenarios (Example 2 /
//! Table 2).

use crate::{FairnessLevel, SoeAnalysis, SoeModel, SystemParams, ThreadModel};

/// The Example 2 / Table 2 scenario: two threads at `IPC_no_miss = 2.5`,
/// 300-cycle memory, 25-cycle switch, one thread missing every 15 000
/// instructions and the other every 1 000.
pub fn table2_scenario() -> SoeModel {
    SoeModel::new(
        vec![
            ThreadModel::new(2.5, 15_000.0),
            ThreadModel::new(2.5, 1_000.0),
        ],
        SystemParams::new(300.0, 25.0),
    )
}

/// Evaluates the Table 2 scenario at the three fairness levels the table
/// reports (`F = 0, 1/2, 1`), in that order.
pub fn table2_rows() -> Vec<SoeAnalysis> {
    let model = table2_scenario();
    [
        FairnessLevel::NONE,
        FairnessLevel::HALF,
        FairnessLevel::PERFECT,
    ]
    .into_iter()
    .map(|f| model.analyze(f))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_three_rows() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].target, FairnessLevel::NONE);
        assert_eq!(rows[2].target, FairnessLevel::PERFECT);
    }

    #[test]
    fn table2_f0_is_unfair_and_f1_is_fair() {
        let rows = table2_rows();
        assert!(rows[0].fairness < 0.12);
        assert!((rows[1].fairness - 0.5).abs() < 1e-9);
        assert!(rows[2].fairness > 0.999);
    }

    #[test]
    fn table2_forced_switch_every_1667_instructions() {
        let rows = table2_rows();
        assert!((rows[2].per_thread[0].ipsw - 1_666.67).abs() < 1.0);
    }
}
