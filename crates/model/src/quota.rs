//! Eq 9 — the instructions-per-switch quota that enforces a target
//! fairness.

use crate::{FairnessLevel, SystemParams, ThreadModel};

/// Eq 9 — computes the per-thread instructions-per-switch quota `IPSw_j`
/// that guarantees fairness at least `f`:
///
/// ```text
/// IPSw_j = min( IPM_j,  IPC_ST_j · (CPM_min + Miss_lat) / F )
/// ```
///
/// where `CPM_min = min_j CPM_j`. A quota can never exceed `IPM_j` because
/// the thread switches on its misses anyway; conversely a thread whose
/// quota equals its `IPM` needs no forced switches.
///
/// For `F = 0` (no enforcement) every quota is `IPM_j`.
///
/// Intuition: a thread's SOE speedup is proportional to
/// `IPSw_j / IPC_ST_j` (the round length is shared by all threads), so
/// making `IPSw_j ∝ IPC_ST_j` equalizes speedups; dividing by `F` relaxes
/// the bound, allowing up to a `1/F` spread.
///
/// # Examples
///
/// Table 2: enforcing `F = 1` forces the low-miss thread to switch every
/// ~1 667 instructions while the high-miss thread keeps its natural quota:
///
/// ```
/// use soe_model::{ipsw_quotas, FairnessLevel, SystemParams, ThreadModel};
///
/// let threads = [ThreadModel::new(2.5, 15_000.0), ThreadModel::new(2.5, 1_000.0)];
/// let q = ipsw_quotas(&threads, SystemParams::default(), FairnessLevel::PERFECT);
/// assert!((q[0] - 1_666.7).abs() < 0.1);
/// assert_eq!(q[1], 1_000.0);
/// ```
///
/// # Panics
///
/// Panics if `threads` is empty.
pub fn ipsw_quotas(threads: &[ThreadModel], params: SystemParams, f: FairnessLevel) -> Vec<f64> {
    assert!(!threads.is_empty(), "need at least one thread");
    if !f.is_enforced() {
        return threads.iter().map(|t| t.ipm()).collect();
    }
    let cpm_min = threads
        .iter()
        .map(|t| t.cpm())
        .fold(f64::INFINITY, f64::min);
    threads
        .iter()
        .map(|t| {
            let quota = t.ipc_st(params) * (cpm_min + params.miss_lat) / f.get();
            quota.min(t.ipm())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness_of;

    fn table2_threads() -> [ThreadModel; 2] {
        [
            ThreadModel::new(2.5, 15_000.0),
            ThreadModel::new(2.5, 1_000.0),
        ]
    }

    #[test]
    fn no_enforcement_keeps_natural_quotas() {
        let q = ipsw_quotas(
            &table2_threads(),
            SystemParams::default(),
            FairnessLevel::NONE,
        );
        assert_eq!(q, vec![15_000.0, 1_000.0]);
    }

    #[test]
    fn perfect_fairness_matches_paper_example() {
        let q = ipsw_quotas(
            &table2_threads(),
            SystemParams::default(),
            FairnessLevel::PERFECT,
        );
        // Paper: "forced to switch every 1,667 instructions (on average)".
        assert!((q[0] - 1_666.67).abs() < 1.0, "got {}", q[0]);
        assert_eq!(q[1], 1_000.0);
    }

    #[test]
    fn lower_f_gives_larger_quotas() {
        let params = SystemParams::default();
        let threads = table2_threads();
        let q1 = ipsw_quotas(&threads, params, FairnessLevel::PERFECT);
        let q_half = ipsw_quotas(&threads, params, FairnessLevel::HALF);
        let q_quarter = ipsw_quotas(&threads, params, FairnessLevel::QUARTER);
        assert!(q_half[0] > q1[0]);
        assert!(q_quarter[0] > q_half[0]);
    }

    #[test]
    fn quota_never_exceeds_ipm() {
        let params = SystemParams::default();
        for f in [0.1, 0.25, 0.5, 0.9, 1.0] {
            let q = ipsw_quotas(&table2_threads(), params, FairnessLevel::new(f));
            for (quota, t) in q.iter().zip(table2_threads()) {
                assert!(*quota <= t.ipm() + 1e-9);
            }
        }
    }

    #[test]
    fn min_cpm_thread_is_uncapped_at_perfect_fairness() {
        // The thread with CPM_min gets exactly its IPM as quota at F = 1.
        let threads = [ThreadModel::new(2.0, 8_000.0), ThreadModel::new(2.0, 500.0)];
        let q = ipsw_quotas(&threads, SystemParams::default(), FairnessLevel::PERFECT);
        assert!((q[1] - 500.0).abs() < 1e-9);
    }

    /// Speedups implied by quotas: proportional to `IPSw_j / IPC_ST_j`
    /// (the common round denominator cancels in the fairness ratio).
    fn implied_fairness(threads: &[ThreadModel], params: SystemParams, q: &[f64]) -> f64 {
        let speedup_proxy: Vec<f64> = threads
            .iter()
            .zip(q)
            .map(|(t, quota)| quota / t.ipc_st(params))
            .collect();
        fairness_of(&speedup_proxy)
    }

    #[test]
    fn quotas_achieve_requested_fairness_in_model() {
        let params = SystemParams::default();
        let threads = [
            ThreadModel::new(2.5, 15_000.0),
            ThreadModel::new(1.8, 3_000.0),
            ThreadModel::new(2.2, 800.0),
        ];
        for f in [0.25, 0.5, 0.75, 1.0] {
            let q = ipsw_quotas(&threads, params, FairnessLevel::new(f));
            let achieved = implied_fairness(&threads, params, &q);
            assert!(
                achieved >= f - 1e-9,
                "F={f}: achieved {achieved} below target"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_thread_list_panics() {
        ipsw_quotas(&[], SystemParams::default(), FairnessLevel::HALF);
    }
}
