//! Workload profiles: the statistical description a synthetic trace is
//! generated from.

use serde::{Deserialize, Serialize};

/// Instruction-mix fractions (the remainder after loads, stores, branches,
/// multiplies and divides are plain ALU operations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of multiplies (medium-latency ops).
    pub mul: f64,
    /// Fraction of divides (long-latency ops).
    pub div: f64,
}

impl InstrMix {
    fn validate(&self) {
        let total = self.load + self.store + self.mul + self.div;
        assert!(
            self.load >= 0.0 && self.store >= 0.0 && self.mul >= 0.0 && self.div >= 0.0,
            "mix fractions must be non-negative"
        );
        assert!(total <= 0.95, "mix must leave room for ALU ops");
    }
}

/// Data-memory behaviour of a profile.
///
/// Loads pick one of three regions:
/// * **cold** (probability `cold_load_prob`): a streaming region touched
///   line by line and never revisited — every cold load is a last-level
///   cache miss. The profile's *instructions per miss* is therefore
///   `IPM ≈ 1 / (load_fraction · cold_load_prob)`.
/// * **warm** (probability `warm_load_prob` of the remainder): a working
///   set sized to live in the L2 but not the L1.
/// * **hot** (the rest): a small working set that lives in the L1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// L1-resident working set, in 64-byte lines.
    pub hot_lines: u64,
    /// L2-resident working set, in 64-byte lines.
    pub warm_lines: u64,
    /// Probability that a load streams through cold memory (an L2 miss).
    pub cold_load_prob: f64,
    /// Probability that a non-cold load hits the warm (L2-resident) set.
    pub warm_load_prob: f64,
    /// Probability that a store goes to the cold streaming region.
    pub cold_store_prob: f64,
}

/// One execution phase: for `len_instrs` dynamic instructions the
/// profile's miss rate and ILP are scaled by these factors. Phases repeat
/// cyclically (gcc-style alternating behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in dynamic instructions.
    pub len_instrs: u64,
    /// Multiplier on `cold_load_prob` during this phase.
    pub miss_scale: f64,
    /// Multiplier on `mean_dep_dist` during this phase.
    pub ilp_scale: f64,
}

/// A statistical workload profile from which a replayable micro-op trace
/// is generated.
///
/// Profiles stand in for the paper's SPEC CPU2000 LIT traces: each named
/// profile in [`crate::spec`] is calibrated so that its emergent
/// `IPC_no_miss` and `IPM` land in the range the corresponding SPEC
/// workload exhibits on a P6-class machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Display name.
    pub name: String,
    /// Seed for all of the trace's deterministic choices.
    pub seed: u64,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Mean producer distance of register dependences — the ILP knob
    /// (larger = more instruction-level parallelism).
    pub mean_dep_dist: f64,
    /// Fraction of conditional branches whose outcome is a fixed function
    /// of their PC (perfectly learnable); the rest are per-instance
    /// random (≈50 % mispredicted).
    pub branch_predictability: f64,
    /// Straight-line block length in micro-ops; each block ends with a
    /// branch, so the branch fraction is `1 / block_len`.
    pub block_len: u64,
    /// Code footprint in 64-byte lines.
    pub code_lines: u64,
    /// Fraction of (static) blocks that call a leaf function mid-block
    /// and return — exercising the return address stack. `0` disables
    /// calls (requires `block_len >= 5` when positive).
    #[serde(default)]
    pub call_block_frac: f64,
    /// Data-memory behaviour.
    pub mem: MemoryBehavior,
    /// Cyclic execution phases; empty = stationary behaviour.
    pub phases: Vec<Phase>,
}

impl Profile {
    /// Validates all parameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions, a zero block length or an empty
    /// working set.
    pub fn validate(&self) {
        self.mix.validate();
        assert!(self.mean_dep_dist >= 1.0, "dependency distance mean >= 1");
        assert!(
            (0.0..=1.0).contains(&self.branch_predictability),
            "branch predictability must be a probability"
        );
        assert!(self.block_len >= 2, "blocks must hold at least two uops");
        assert!(
            (0.0..=1.0).contains(&self.call_block_frac),
            "call fraction must be a probability"
        );
        assert!(
            self.call_block_frac == 0.0 || self.block_len >= 5,
            "calling blocks need at least five uops (prefix, call, body, return, fall-through)"
        );
        assert!(self.code_lines >= 1, "code footprint must be non-empty");
        assert!(
            self.mem.hot_lines >= 1 && self.mem.warm_lines >= 1,
            "working sets non-empty"
        );
        for p in [
            self.mem.cold_load_prob,
            self.mem.warm_load_prob,
            self.mem.cold_store_prob,
        ] {
            assert!((0.0..=1.0).contains(&p), "memory probabilities in [0,1]");
        }
        for ph in &self.phases {
            assert!(ph.len_instrs > 0, "phase length must be positive");
            assert!(ph.miss_scale >= 0.0 && ph.ilp_scale > 0.0, "phase scales");
        }
    }

    /// The profile's intended average instructions per last-level-cache
    /// miss, `IPM ≈ 1 / (load · cold_load_prob)` (ignoring phase scaling
    /// and warm-set capacity effects).
    pub fn target_ipm(&self) -> f64 {
        let p = self.mix.load * self.mem.cold_load_prob;
        if p <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / p
        }
    }

    /// Total length of one phase cycle in instructions (`None` when the
    /// profile is stationary).
    pub fn phase_cycle(&self) -> Option<u64> {
        if self.phases.is_empty() {
            None
        } else {
            Some(self.phases.iter().map(|p| p.len_instrs).sum())
        }
    }

    /// The phase parameters in effect at dynamic instruction `index`:
    /// `(miss_scale, ilp_scale)`.
    pub fn phase_at(&self, index: u64) -> (f64, f64) {
        let Some(cycle) = self.phase_cycle() else {
            return (1.0, 1.0);
        };
        let mut pos = index % cycle;
        for p in &self.phases {
            if pos < p.len_instrs {
                return (p.miss_scale, p.ilp_scale);
            }
            pos -= p.len_instrs;
        }
        // soe-lint: allow(panic-reachability): pos < cycle = Σ len_instrs, so one phase must absorb it
        unreachable!("phase walk covers the cycle")
    }

    /// Index into [`Profile::phases`] of the phase in effect at dynamic
    /// instruction `index` (`0` for a stationary profile). Lets callers
    /// key per-phase precomputed state (e.g. the trace generator's
    /// dependency-distance tables) off the same walk as
    /// [`Profile::phase_at`].
    pub fn phase_index_at(&self, index: u64) -> usize {
        let Some(cycle) = self.phase_cycle() else {
            return 0;
        };
        let mut pos = index % cycle;
        for (k, p) in self.phases.iter().enumerate() {
            if pos < p.len_instrs {
                return k;
            }
            pos -= p.len_instrs;
        }
        // soe-lint: allow(panic-reachability): pos < cycle = Σ len_instrs, so one phase must absorb it
        unreachable!("phase walk covers the cycle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Profile {
        Profile {
            name: "t".into(),
            seed: 1,
            mix: InstrMix {
                load: 0.25,
                store: 0.1,
                mul: 0.05,
                div: 0.0,
            },
            mean_dep_dist: 5.0,
            branch_predictability: 0.95,
            block_len: 8,
            code_lines: 128,
            call_block_frac: 0.0,
            mem: MemoryBehavior {
                hot_lines: 256,
                warm_lines: 4096,
                cold_load_prob: 0.001,
                warm_load_prob: 0.1,
                cold_store_prob: 0.001,
            },
            phases: Vec::new(),
        }
    }

    #[test]
    fn base_profile_is_valid() {
        base().validate();
    }

    #[test]
    fn target_ipm_matches_closed_form() {
        let p = base();
        assert!((p.target_ipm() - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_miss_profile_has_infinite_ipm() {
        let mut p = base();
        p.mem.cold_load_prob = 0.0;
        assert!(p.target_ipm().is_infinite());
    }

    #[test]
    fn stationary_profile_has_unit_phases() {
        assert_eq!(base().phase_at(12345), (1.0, 1.0));
        assert_eq!(base().phase_cycle(), None);
    }

    #[test]
    fn phases_cycle() {
        let mut p = base();
        p.phases = vec![
            Phase {
                len_instrs: 100,
                miss_scale: 2.0,
                ilp_scale: 1.0,
            },
            Phase {
                len_instrs: 50,
                miss_scale: 0.5,
                ilp_scale: 1.5,
            },
        ];
        p.validate();
        assert_eq!(p.phase_cycle(), Some(150));
        assert_eq!(p.phase_at(0).0, 2.0);
        assert_eq!(p.phase_at(99).0, 2.0);
        assert_eq!(p.phase_at(100).0, 0.5);
        assert_eq!(p.phase_at(150).0, 2.0, "wraps");
    }

    #[test]
    #[should_panic(expected = "room for ALU")]
    fn overloaded_mix_panics() {
        let mut p = base();
        p.mix.load = 0.9;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_block_panics() {
        let mut p = base();
        p.block_len = 1;
        p.validate();
    }
}
