//! On-disk trace segments — the file-format analogue of the paper's Long
//! Instruction Traces.
//!
//! A [`LitFile`] materializes a window of any [`TraceSource`] into a
//! compact binary record that can be saved, shared and replayed
//! elsewhere, decoupling trace *generation* from *consumption* (e.g. to
//! feed the simulator a trace captured by an external tool).
//!
//! Format (little-endian): the magic `SOELIT01`, a length-prefixed name,
//! the start position and micro-op count, then one 25-byte record per
//! micro-op.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use soe_sim::{InstrIndex, TraceSource, Uop, UopKind};

const MAGIC: &[u8; 8] = b"SOELIT01";

// Kind tags (bit 0 of the branch tag carries the taken flag).
const TAG_ALU: u8 = 0;
const TAG_MUL: u8 = 1;
const TAG_DIV: u8 = 2;
const TAG_LOAD: u8 = 3;
const TAG_STORE: u8 = 4;
const TAG_NOP: u8 = 5;
const TAG_PAUSE: u8 = 6;
const TAG_CALL: u8 = 7;
const TAG_RETURN: u8 = 8;
const TAG_BRANCH_NT: u8 = 9;
const TAG_BRANCH_T: u8 = 10;

/// A recorded trace segment, replayable as a [`TraceSource`].
///
/// Positions beyond the recorded window wrap around (the segment is
/// treated as a loop), so a `LitFile` can drive arbitrarily long
/// simulations; record a window long enough to be representative.
///
/// # Examples
///
/// ```
/// use soe_sim::TraceSource;
/// use soe_workloads::{spec, LitFile, SyntheticTrace};
///
/// let live = SyntheticTrace::new(spec::profile("swim").unwrap(), 0x1_0000_0000, 0);
/// let lit = LitFile::record(&live, 1_000, 512);
/// assert_eq!(lit.uop_at(0), live.uop_at(1_000));
/// assert_eq!(lit.len(), 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LitFile {
    name: String,
    start: InstrIndex,
    uops: Vec<Uop>,
}

impl LitFile {
    /// Records `count` micro-ops of `source` starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn record(source: &dyn TraceSource, start: InstrIndex, count: u64) -> Self {
        assert!(count > 0, "cannot record an empty trace");
        Self {
            name: source.name().to_string(),
            start,
            uops: (start..start + count).map(|i| source.uop_at(i)).collect(),
        }
    }

    /// Number of recorded micro-ops.
    pub fn len(&self) -> u64 {
        self.uops.len() as u64
    }

    /// Whether the segment is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Stream position the recording started at.
    pub fn start(&self) -> InstrIndex {
        self.start
    }

    /// Serializes into `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        let name = self.name.as_bytes();
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name)?;
        writer.write_all(&self.start.to_le_bytes())?;
        writer.write_all(&(self.uops.len() as u64).to_le_bytes())?;
        for u in &self.uops {
            let (tag, aux): (u8, u64) = match u.kind {
                UopKind::Alu => (TAG_ALU, 0),
                UopKind::Mul => (TAG_MUL, 0),
                UopKind::Div => (TAG_DIV, 0),
                UopKind::Load => (TAG_LOAD, u.mem_addr()),
                UopKind::Store => (TAG_STORE, u.mem_addr()),
                UopKind::Nop => (TAG_NOP, 0),
                UopKind::Pause => (TAG_PAUSE, 0),
                UopKind::Call { target } => (TAG_CALL, target),
                UopKind::Return { target } => (TAG_RETURN, target),
                UopKind::Branch { taken, target } => {
                    (if taken { TAG_BRANCH_T } else { TAG_BRANCH_NT }, target)
                }
            };
            writer.write_all(&[tag])?;
            writer.write_all(&u.pc.to_le_bytes())?;
            writer.write_all(&aux.to_le_bytes())?;
            writer.write_all(&u.src_dist[0].to_le_bytes())?;
            writer.write_all(&u.src_dist[1].to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes from `reader`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, tag or truncation, and
    /// propagates I/O errors.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<Self> {
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
        }
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a SOELIT01 trace file"));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        reader.read_exact(&mut b4)?;
        let name_len = u32::from_le_bytes(b4) as usize;
        if name_len > 4096 {
            return Err(bad("unreasonable name length"));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("name is not UTF-8"))?;
        reader.read_exact(&mut b8)?;
        let start = u64::from_le_bytes(b8);
        reader.read_exact(&mut b8)?;
        let count = u64::from_le_bytes(b8);
        if count == 0 {
            return Err(bad("empty trace segment"));
        }
        let mut uops = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            let mut tag = [0u8; 1];
            reader.read_exact(&mut tag)?;
            reader.read_exact(&mut b8)?;
            let pc = u64::from_le_bytes(b8);
            reader.read_exact(&mut b8)?;
            let aux = u64::from_le_bytes(b8);
            reader.read_exact(&mut b4)?;
            let d0 = u32::from_le_bytes(b4);
            reader.read_exact(&mut b4)?;
            let d1 = u32::from_le_bytes(b4);
            let uop = match tag[0] {
                TAG_ALU => Uop::new(UopKind::Alu, pc),
                TAG_MUL => Uop::new(UopKind::Mul, pc),
                TAG_DIV => Uop::new(UopKind::Div, pc),
                TAG_LOAD => Uop::new(UopKind::Load, pc).with_mem(aux),
                TAG_STORE => Uop::new(UopKind::Store, pc).with_mem(aux),
                TAG_NOP => Uop::new(UopKind::Nop, pc),
                TAG_PAUSE => Uop::new(UopKind::Pause, pc),
                TAG_CALL => Uop::new(UopKind::Call { target: aux }, pc),
                TAG_RETURN => Uop::new(UopKind::Return { target: aux }, pc),
                TAG_BRANCH_NT => Uop::new(
                    UopKind::Branch {
                        taken: false,
                        target: aux,
                    },
                    pc,
                ),
                TAG_BRANCH_T => Uop::new(
                    UopKind::Branch {
                        taken: true,
                        target: aux,
                    },
                    pc,
                ),
                t => return Err(bad(&format!("unknown micro-op tag {t}"))),
            };
            uops.push(uop.with_deps(d0, d1));
        }
        Ok(Self { name, start, uops })
    }

    /// Saves to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors, naming the path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        File::create(path)
            .and_then(|f| self.write_to(BufWriter::new(f)))
            .map_err(|e| io::Error::new(e.kind(), format!("saving LIT {}: {e}", path.display())))
    }

    /// Loads from `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-open and parse errors, naming the path.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        File::open(path)
            .and_then(|f| Self::read_from(BufReader::new(f)))
            .map_err(|e| io::Error::new(e.kind(), format!("loading LIT {}: {e}", path.display())))
    }
}

impl TraceSource for LitFile {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        // soe-lint: allow(panic-reachability): index is reduced modulo len, and read_from rejects empty segments, so len > 0
        self.uops[(index % self.uops.len() as u64) as usize]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, SyntheticTrace};

    fn live() -> SyntheticTrace {
        SyntheticTrace::new(spec::profile("gcc").unwrap(), 0x1_0000_0000, 0)
    }

    #[test]
    fn record_matches_source() {
        let src = live();
        let lit = LitFile::record(&src, 500, 1_000);
        for i in 0..1_000 {
            assert_eq!(lit.uop_at(i), src.uop_at(500 + i));
        }
        assert_eq!(lit.name(), "gcc");
        assert_eq!(lit.start(), 500);
    }

    #[test]
    fn replay_wraps_beyond_the_window() {
        let lit = LitFile::record(&live(), 0, 64);
        assert_eq!(lit.uop_at(64), lit.uop_at(0));
        assert_eq!(lit.uop_at(129), lit.uop_at(1));
    }

    #[test]
    fn binary_round_trip() {
        let lit = LitFile::record(&live(), 123, 4_096);
        let mut buf = Vec::new();
        lit.write_to(&mut buf).expect("write");
        // 25 bytes per uop plus a small header.
        assert!(buf.len() < 4_096 * 25 + 64);
        let back = LitFile::read_from(buf.as_slice()).expect("read");
        assert_eq!(back, lit);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("soe-litfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gcc.lit");
        let lit = LitFile::record(&live(), 0, 256);
        lit.save(&path).expect("save");
        let back = LitFile::load(&path).expect("load");
        assert_eq!(back, lit);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn io_errors_name_the_offending_path() {
        let missing = std::env::temp_dir().join("soe-litfile-no-such-dir/missing.lit");
        let err = LitFile::load(&missing).expect_err("load must fail");
        assert!(
            err.to_string().contains("missing.lit"),
            "error lacks the path: {err}"
        );
        let lit = LitFile::record(&live(), 0, 16);
        let unwritable = std::env::temp_dir().join("soe-litfile-no-such-dir/out.lit");
        let err = lit.save(&unwritable).expect_err("save must fail");
        assert!(
            err.to_string().contains("out.lit"),
            "error lacks the path: {err}"
        );
    }

    #[test]
    fn covers_every_uop_kind() {
        // The gcc profile emits every kind except Nop/Pause; append those
        // by hand to exercise all tags.
        let mut lit = LitFile::record(&live(), 0, 50_000);
        lit.uops.push(Uop::new(UopKind::Nop, 0x10));
        lit.uops.push(Uop::new(UopKind::Pause, 0x14));
        let kinds: std::collections::HashSet<u8> = lit
            .uops
            .iter()
            .map(|u| match u.kind {
                UopKind::Alu => 0u8,
                UopKind::Mul => 1,
                UopKind::Div => 2,
                UopKind::Load => 3,
                UopKind::Store => 4,
                UopKind::Nop => 5,
                UopKind::Pause => 6,
                UopKind::Call { .. } => 7,
                UopKind::Return { .. } => 8,
                UopKind::Branch { .. } => 9,
            })
            .collect();
        assert!(kinds.len() >= 8, "kinds covered: {kinds:?}");
        let mut buf = Vec::new();
        lit.write_to(&mut buf).unwrap();
        assert_eq!(LitFile::read_from(buf.as_slice()).unwrap(), lit);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = LitFile::read_from(&b"NOTALIT0rest"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let lit = LitFile::record(&live(), 0, 16);
        let mut buf = Vec::new();
        lit.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(LitFile::read_from(buf.as_slice()).is_err());
    }
}
