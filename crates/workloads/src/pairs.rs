//! The evaluation pairings: 16 two-thread combinations (8 mixed, 8
//! same-benchmark), mirroring Section 4.1 of the paper.

use soe_sim::{Addr, TraceSource};

use crate::gen::SyntheticTrace;
use crate::spec;

/// Stream offset applied to the second thread when both threads run the
/// same benchmark (the paper offsets them by one million instructions).
pub const SAME_BENCH_OFFSET: u64 = 1_000_000;

/// Address-space stride between hardware threads.
pub const THREAD_BASE_STRIDE: Addr = 0x10_0000_0000;

/// One two-thread combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pair {
    /// Benchmark on thread 0.
    pub a: &'static str,
    /// Benchmark on thread 1.
    pub b: &'static str,
}

impl Pair {
    /// `"a:b"` — the paper's pair notation.
    pub fn label(&self) -> String {
        format!("{}:{}", self.a, self.b)
    }

    /// Whether both threads run the same benchmark.
    pub fn is_same(&self) -> bool {
        self.a == self.b
    }

    /// Builds the two trace sources: disjoint address spaces, and the
    /// 1M-instruction offset for same-benchmark pairs.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown.
    pub fn traces(&self) -> (SyntheticTrace, SyntheticTrace) {
        // soe-lint: allow(panic-reachability): documented panicking API; pairs are built from spec::NAMES (paper_pairs) or compile-time literals
        let pa = spec::profile(self.a).unwrap_or_else(|| panic!("unknown benchmark {}", self.a));
        // soe-lint: allow(panic-reachability): same documented contract as the line above
        let pb = spec::profile(self.b).unwrap_or_else(|| panic!("unknown benchmark {}", self.b));
        let offset = if self.is_same() { SAME_BENCH_OFFSET } else { 0 };
        (
            SyntheticTrace::new(pa, THREAD_BASE_STRIDE, 0),
            SyntheticTrace::new(pb, 2 * THREAD_BASE_STRIDE, offset),
        )
    }

    /// The traces as boxed [`TraceSource`]s, ready for the machine.
    pub fn boxed_traces(&self) -> Vec<Box<dyn TraceSource>> {
        let (a, b) = self.traces();
        vec![Box::new(a), Box::new(b)]
    }
}

/// Builds trace sources for an arbitrary N-thread group: each thread gets
/// its own address space, and the k-th duplicate of a benchmark is offset
/// by `k × SAME_BENCH_OFFSET` instructions (generalizing the paper's
/// two-thread offset rule).
///
/// # Panics
///
/// Panics if `names` is empty or contains an unknown benchmark.
pub fn group_traces(names: &[&str]) -> Vec<SyntheticTrace> {
    assert!(!names.is_empty(), "need at least one thread");
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            // soe-lint: allow(panic-reachability): documented panicking API; scenario rosters are validated against spec::profile by the request check before dispatch
            let profile = spec::profile(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
            // soe-lint: allow(panic-reachability): i comes from enumerate(), so the prefix slice is in bounds
            let duplicates_before = names[..i].iter().filter(|n| *n == name).count() as u64;
            SyntheticTrace::new(
                profile,
                (i as Addr + 1) * THREAD_BASE_STRIDE,
                duplicates_before * SAME_BENCH_OFFSET,
            )
        })
        .collect()
}

/// The 16 combinations used throughout the evaluation figures: 8 mixed
/// pairs spanning fair to extremely unfair behaviour, and 8 same-benchmark
/// pairs.
pub fn paper_pairs() -> Vec<Pair> {
    let mixed = [
        ("gcc", "eon"),
        ("galgel", "gcc"),
        ("apsi", "swim"),
        ("lucas", "applu"),
        ("mcf", "gzip"),
        ("art", "eon"),
        ("swim", "bzip2"),
        ("mcf", "mgrid"),
    ];
    let same = [
        "gcc", "eon", "bzip2", "mgrid", "swim", "mcf", "applu", "art",
    ];
    mixed
        .into_iter()
        .map(|(a, b)| Pair { a, b })
        .chain(same.into_iter().map(|n| Pair { a: n, b: n }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_pairs_half_same() {
        let pairs = paper_pairs();
        assert_eq!(pairs.len(), 16);
        assert_eq!(pairs.iter().filter(|p| p.is_same()).count(), 8);
    }

    #[test]
    fn all_pair_benchmarks_resolve() {
        for p in paper_pairs() {
            let (a, b) = p.traces();
            assert_eq!(a.profile().name, p.a);
            assert_eq!(b.profile().name, p.b);
        }
    }

    #[test]
    fn same_pairs_are_offset() {
        let p = Pair { a: "gcc", b: "gcc" };
        let (_, b) = p.traces();
        assert_eq!(b.offset(), SAME_BENCH_OFFSET);
        let q = Pair { a: "gcc", b: "eon" };
        let (_, b) = q.traces();
        assert_eq!(b.offset(), 0);
    }

    #[test]
    fn address_spaces_are_disjoint() {
        let p = Pair { a: "mcf", b: "mcf" };
        let (a, b) = p.traces();
        assert_ne!(a.base(), b.base());
    }

    #[test]
    fn labels_use_colon_notation() {
        assert_eq!(Pair { a: "gcc", b: "eon" }.label(), "gcc:eon");
    }

    #[test]
    fn group_traces_stride_bases_and_offset_duplicates() {
        let g = group_traces(&["swim", "gcc", "swim", "swim"]);
        assert_eq!(g.len(), 4);
        let bases: Vec<u64> = g.iter().map(|t| t.base()).collect();
        let mut unique = bases.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "address spaces must be disjoint");
        assert_eq!(g[0].offset(), 0);
        assert_eq!(g[2].offset(), SAME_BENCH_OFFSET);
        assert_eq!(g[3].offset(), 2 * SAME_BENCH_OFFSET);
        assert_eq!(g[1].offset(), 0, "first gcc instance is unshifted");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_group_panics() {
        group_traces(&[]);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_pair_panics() {
        Pair {
            a: "nope",
            b: "gcc",
        }
        .traces();
    }
}
