//! Division by a precomputed invariant divisor.
//!
//! The trace generator reduces every micro-op position modulo half a
//! dozen profile constants (block length, code footprint, working-set
//! sizes, phase cycle). Hardware 64-bit division costs tens of cycles;
//! multiplying by a precomputed reciprocal costs two. [`FastDiv`]
//! packages the standard magic-number trick in a form that is *exact
//! for every dividend and every non-zero divisor* — the quotient
//! estimate from the truncated reciprocal is at most one too small,
//! and a single conditional fix-up closes the gap — so replacing `/`
//! and `%` with it cannot perturb the bit-deterministic trace streams.

/// A precomputed reciprocal for exact division by a fixed divisor.
///
/// # Examples
///
/// ```
/// use soe_workloads::fastdiv::FastDiv;
///
/// let d = FastDiv::new(7);
/// assert_eq!(d.div_rem(23), (3, 2));
/// assert_eq!(d.rem(u64::MAX), u64::MAX % 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDiv {
    divisor: u64,
    /// `⌊(2^64 − 1) / divisor⌋`. Writing `2^64 = m·d + e` gives an
    /// error term `n·e / 2^64 < d` for every `n`, so the high half of
    /// `n · m` underestimates `n / d` by at most one.
    magic: u64,
}

impl FastDiv {
    /// Prepares division by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor > 0, "division by zero");
        Self {
            divisor,
            magic: u64::MAX / divisor,
        }
    }

    /// The divisor this instance divides by.
    pub fn divisor(self) -> u64 {
        self.divisor
    }

    /// Exact `(n / d, n % d)`.
    #[inline]
    pub fn div_rem(self, n: u64) -> (u64, u64) {
        let mut q = (((n as u128) * (self.magic as u128)) >> 64) as u64;
        let mut r = n - q.wrapping_mul(self.divisor);
        if r >= self.divisor {
            q += 1;
            r -= self.divisor;
        }
        debug_assert_eq!((q, r), (n / self.divisor, n % self.divisor));
        (q, r)
    }

    /// Exact `n / d`.
    ///
    /// Not `std::ops::Div`: `self` is the *divisor* wrapper and `n` the
    /// dividend, the reverse of the trait's operand order.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, n: u64) -> u64 {
        self.div_rem(n).0
    }

    /// Exact `n % d`.
    ///
    /// Not `std::ops::Rem`: operand order is reversed, as with [`Self::div`].
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, n: u64) -> u64 {
        self.div_rem(n).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hardware_division_on_edge_cases() {
        let divisors = [
            1,
            2,
            3,
            5,
            7,
            16,
            63,
            64,
            65,
            1000,
            4096,
            123_456_789,
            u64::MAX - 1,
            u64::MAX,
        ];
        let dividends = [
            0,
            1,
            2,
            62,
            63,
            64,
            65,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for d in divisors {
            let f = FastDiv::new(d);
            for n in dividends {
                assert_eq!(f.div_rem(n), (n / d, n % d), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn matches_hardware_division_exhaustively_around_multiples() {
        // The fix-up fires exactly when the estimate is one short, which
        // happens near multiples of the divisor — sweep those densely.
        for d in [3u64, 10, 77, 1 << 20, (1 << 40) + 1] {
            let f = FastDiv::new(d);
            for k in 0..200u64 {
                for delta in 0..3 {
                    let n = k.wrapping_mul(d).wrapping_add(delta);
                    assert_eq!(f.div_rem(n), (n / d, n % d), "n={n} d={d}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = FastDiv::new(0);
    }
}
