//! The synthetic trace generator: a pure function from `(profile,
//! position)` to micro-ops.

use soe_sim::{Addr, InstrIndex, TraceSource, Uop, UopKind};

use crate::fastdiv::FastDiv;
use crate::hash::{mix, unit, GeometricTable};
use crate::profile::Profile;

// Salts for the independent random streams.
const SALT_KIND: u64 = 1;
const SALT_REGION: u64 = 2;
const SALT_HOT: u64 = 3;
const SALT_WARM: u64 = 4;
const SALT_DEP1: u64 = 5;
const SALT_DEP2: u64 = 6;
const SALT_DEP2_PRESENT: u64 = 7;
const SALT_BR_CLASS: u64 = 8;
const SALT_BR_RANDOM: u64 = 9;
const SALT_CODE: u64 = 10;
const SALT_OFFSET: u64 = 11;
const SALT_STORE_REGION: u64 = 12;
const SALT_BR_BIAS: u64 = 13;
const SALT_CALL_BLOCK: u64 = 14;
const SALT_LEAF: u64 = 15;

// Address-space layout within one thread's base (regions are far apart so
// they never alias).
const CODE_REGION: Addr = 0x0000_0000;
const HOT_REGION: Addr = 0x1000_0000;
const WARM_REGION: Addr = 0x2000_0000;
const COLD_REGION: Addr = 0x4000_0000;
const COLD_STORE_REGION: Addr = 0x6000_0000;
const LINE: Addr = 64;

/// A replayable synthetic micro-op stream generated from a [`Profile`].
///
/// Every micro-op is a pure function of the dynamic position, so the
/// simulator can squash and replay arbitrarily (thread switches, branch
/// redirects) — the role the paper's LIT checkpoints play.
///
/// `base` relocates the whole address space (distinct per hardware
/// thread: co-scheduled threads share caches by capacity, not by
/// aliasing); `offset` shifts the stream position (the paper offsets
/// same-benchmark pairs by one million instructions).
///
/// # Examples
///
/// ```
/// use soe_sim::TraceSource;
/// use soe_workloads::{spec, SyntheticTrace};
///
/// let profile = spec::profile("gcc").expect("gcc is a known profile");
/// let t = SyntheticTrace::new(profile, 0x1_0000_0000, 0);
/// let u = t.uop_at(42);
/// assert_eq!(u, t.uop_at(42)); // pure in the position
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: Profile,
    base: Addr,
    offset: InstrIndex,
    /// One dependency-distance inversion table per phase (a single
    /// entry for stationary profiles), indexed by
    /// [`Profile::phase_index_at`]. Built once at construction;
    /// bit-exact with the closed-form draw the generator used to make
    /// per micro-op.
    dep_tables: Vec<GeometricTable>,
    /// Precomputed reciprocals for every profile constant the per-uop
    /// path divides by — each [`FastDiv`] is exact, so the generated
    /// stream is bit-identical to the hardware-division form.
    div_block: FastDiv,
    div_code: FastDiv,
    div_span: FastDiv,
    div_hot: FastDiv,
    div_warm: FastDiv,
    div_leaves: FastDiv,
    /// Reciprocal of the phase-cycle length (`None` when stationary).
    div_phase_cycle: Option<FastDiv>,
}

impl SyntheticTrace {
    /// Creates a trace for `profile`, with its address space at `base`
    /// and the stream shifted by `offset` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see [`Profile::validate`]).
    pub fn new(profile: Profile, base: Addr, offset: InstrIndex) -> Self {
        profile.validate();
        let dep_tables = if profile.phases.is_empty() {
            vec![GeometricTable::new(profile.mean_dep_dist.max(1.0))]
        } else {
            profile
                .phases
                .iter()
                .map(|ph| GeometricTable::new((profile.mean_dep_dist * ph.ilp_scale).max(1.0)))
                .collect()
        };
        let div_block = FastDiv::new(profile.block_len);
        let div_code = FastDiv::new(profile.code_lines);
        let div_span = FastDiv::new(profile.code_lines * LINE);
        let div_hot = FastDiv::new(profile.mem.hot_lines);
        let div_warm = FastDiv::new(profile.mem.warm_lines);
        let div_leaves = FastDiv::new((profile.code_lines / 8).max(1));
        let div_phase_cycle = profile.phase_cycle().map(FastDiv::new);
        Self {
            profile,
            base,
            offset,
            dep_tables,
            div_block,
            div_code,
            div_span,
            div_hot,
            div_warm,
            div_leaves,
            div_phase_cycle,
        }
    }

    /// The phase state the per-uop path needs at position `i`, in one
    /// walk: `(miss_scale, phase index)` — the split
    /// [`Profile::phase_at`] / [`Profile::phase_index_at`] pair walks
    /// the phase list twice and divides by the cycle length twice.
    fn phase_of(&self, i: InstrIndex) -> (f64, usize) {
        let Some(cycle) = self.div_phase_cycle else {
            return (1.0, 0);
        };
        let mut pos = cycle.rem(i);
        for (k, p) in self.profile.phases.iter().enumerate() {
            if pos < p.len_instrs {
                return (p.miss_scale, k);
            }
            pos -= p.len_instrs;
        }
        // soe-lint: allow(panic-reachability): pos < cycle = Σ len_instrs, so one phase must absorb it
        unreachable!("phase walk covers the cycle")
    }

    /// The underlying profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The stream offset.
    pub fn offset(&self) -> InstrIndex {
        self.offset
    }

    /// The address-space base.
    pub fn base(&self) -> Addr {
        self.base
    }

    fn block_start_pc(&self, block: u64) -> Addr {
        let p = &self.profile;
        // The control-flow path loops every `code_lines` blocks: real
        // programs re-execute the same paths, which is what makes branch
        // prediction and the I-cache work. Within the loop, block starts
        // are scattered pseudo-randomly over the code footprint.
        let slot = self.div_code.rem(block);
        let line = self.div_code.rem(mix(p.seed, slot, SALT_CODE));
        self.base + CODE_REGION + line * LINE
    }

    fn pc_of(&self, block: u64, within: u64) -> Addr {
        let start = self.block_start_pc(block);
        // Straight-line code: 4 bytes per micro-op from the block start,
        // wrapped into the code footprint.
        self.base
            + CODE_REGION
            + self
                .div_span
                .rem(start - self.base - CODE_REGION + within * 4)
    }

    fn data_addr(&self, i: InstrIndex, is_store: bool, miss_scale: f64) -> Addr {
        let p = &self.profile;
        let cold_prob = if is_store {
            p.mem.cold_store_prob
        } else {
            p.mem.cold_load_prob * miss_scale
        };
        let salt = if is_store {
            SALT_STORE_REGION
        } else {
            SALT_REGION
        };
        let r = unit(p.seed, i, salt);
        if r < cold_prob {
            // Streaming: the cold region is walked line by line, one line
            // per cold access on average (a 64-byte-stride stream, like a
            // large array traversal). The ordinal is derived from the
            // expected cold-access rate so the stream is a pure function
            // of the position yet advances densely — keeping the page
            // working set small (TLB-friendly) while every access still
            // touches a fresh line.
            let (rate, region) = if is_store {
                (p.mix.store * cold_prob, COLD_STORE_REGION)
            } else {
                (p.mix.load * cold_prob, COLD_REGION)
            };
            // Four lines per rate bucket, sub-selected by hash: keeps the
            // stream page-dense while making collisions between nearby
            // cold accesses rare.
            let bucket = (i as f64 * rate) as u64;
            let ordinal = bucket * 4 + (mix(p.seed, i, SALT_OFFSET) & 3);
            return self.base + region + (ordinal % 0x40_0000) * LINE;
        }
        let offset = (mix(p.seed, i, SALT_OFFSET) % (LINE / 4)) * 4;
        if (r - cold_prob) / (1.0 - cold_prob).max(1e-12) < p.mem.warm_load_prob {
            let line = self.div_warm.rem(mix(p.seed, i, SALT_WARM));
            self.base + WARM_REGION + line * LINE + offset
        } else {
            let line = self.div_hot.rem(mix(p.seed, i, SALT_HOT));
            self.base + HOT_REGION + line * LINE + offset
        }
    }

    fn deps(&self, i: InstrIndex, phase: usize) -> [u32; 2] {
        let p = &self.profile;
        // soe-lint: allow(slice-index): one table per phase is built at construction and phase indices come from Profile::phase_index_at
        let table = &self.dep_tables[phase];
        let d1 = table.sample(mix(p.seed, i, SALT_DEP1)) as u32;
        let d2 = if unit(p.seed, i, SALT_DEP2_PRESENT) < 0.4 {
            table.sample(mix(p.seed, i, SALT_DEP2)) as u32
        } else {
            0
        };
        [d1, d2]
    }

    fn branch_uop(&self, i: InstrIndex, block: u64, pc: Addr) -> Uop {
        let p = &self.profile;
        let target = self.block_start_pc(block + 1);
        // Whether a branch is well-behaved is a property of the *static*
        // branch (its PC), not of the dynamic instance: predictable
        // branches always resolve the same way (trivially learnable),
        // while the `1 - predictability` fraction of data-dependent
        // branches flip randomly per instance (≈50 % mispredicted).
        // Hash the base-relative PC so relocating the thread (each
        // hardware context gets its own address space) does not change
        // the program's branch behaviour.
        let rel_pc = pc - self.base;
        let taken = if unit(p.seed, rel_pc, SALT_BR_CLASS) < p.branch_predictability {
            mix(p.seed, rel_pc, SALT_BR_BIAS) & 1 == 1
        } else {
            mix(p.seed, i, SALT_BR_RANDOM) & 1 == 1
        };
        Uop::new(UopKind::Branch { taken, target }, pc).with_deps(1, 0)
    }
}

impl SyntheticTrace {
    /// Whether the (static, path-looping) block calls a leaf function.
    fn is_calling_block(&self, block: u64) -> bool {
        let p = &self.profile;
        if p.call_block_frac == 0.0 {
            return false;
        }
        let slot = self.div_code.rem(block);
        unit(p.seed, slot, SALT_CALL_BLOCK) < p.call_block_frac
    }

    /// Entry address of the leaf function a calling block targets — in a
    /// dedicated function region behind the main code footprint, shared
    /// by `code_lines / 8` distinct leaves.
    fn leaf_pc(&self, block: u64) -> Addr {
        let p = &self.profile;
        let slot = self.div_code.rem(block);
        let leaf = self.div_leaves.rem(mix(p.seed, slot, SALT_LEAF));
        self.base + CODE_REGION + (p.code_lines + leaf * 2) * LINE
    }

    /// An ordinary (non-control) micro-op at an explicit `pc`.
    fn plain_uop(&self, i: InstrIndex, pc: Addr, miss_scale: f64, phase: usize) -> Uop {
        let p = &self.profile;
        let r = unit(p.seed, i, SALT_KIND);
        let [d1, d2] = self.deps(i, phase);
        let m = &p.mix;
        if r < m.load {
            Uop::new(UopKind::Load, pc)
                .with_mem(self.data_addr(i, false, miss_scale))
                .with_deps(d1, 0)
        } else if r < m.load + m.store {
            Uop::new(UopKind::Store, pc)
                .with_mem(self.data_addr(i, true, miss_scale))
                .with_deps(d1, d2)
        } else if r < m.load + m.store + m.mul {
            Uop::new(UopKind::Mul, pc).with_deps(d1, d2)
        } else if r < m.load + m.store + m.mul + m.div {
            Uop::new(UopKind::Div, pc).with_deps(d1, d2)
        } else {
            Uop::new(UopKind::Alu, pc).with_deps(d1, d2)
        }
    }

    /// Layout of a calling block: prefix, `call leaf`, leaf body,
    /// `return` (to the call's fall-through), fall-through suffix.
    fn calling_block_uop(
        &self,
        i: InstrIndex,
        block: u64,
        within: u64,
        miss_scale: f64,
        phase: usize,
    ) -> Uop {
        let p = &self.profile;
        let base = self.block_start_pc(block);
        let call_at = p.block_len / 2 - 1;
        let call_pc = base + call_at * 4;
        let leaf = self.leaf_pc(block);
        if within < call_at {
            self.plain_uop(i, base + within * 4, miss_scale, phase)
        } else if within == call_at {
            Uop::new(UopKind::Call { target: leaf }, call_pc)
        } else if within == p.block_len - 2 {
            let body_len = p.block_len - 2 - call_at - 1;
            Uop::new(
                UopKind::Return {
                    target: call_pc + 4,
                },
                leaf + body_len * 4,
            )
            .with_deps(1, 0)
        } else if within == p.block_len - 1 {
            // Fall-through after the return.
            self.plain_uop(i, call_pc + 4, miss_scale, phase)
        } else {
            // Leaf body.
            self.plain_uop(i, leaf + (within - call_at - 1) * 4, miss_scale, phase)
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        let i = index + self.offset;
        let p = &self.profile;
        let (miss_scale, phase) = self.phase_of(i);
        let (block, within) = self.div_block.div_rem(i);

        if self.is_calling_block(block) {
            return self.calling_block_uop(i, block, within, miss_scale, phase);
        }

        let pc = self.pc_of(block, within);
        // Every non-calling block ends with a branch.
        if within == p.block_len - 1 {
            return self.branch_uop(i, block, pc);
        }
        self.plain_uop(i, pc, miss_scale, phase)
    }

    fn name(&self) -> &str {
        &self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn trace(name: &str) -> SyntheticTrace {
        SyntheticTrace::new(spec::profile(name).unwrap(), 0x1_0000_0000, 0)
    }

    #[test]
    fn purity_under_replay() {
        let t = trace("gcc");
        for i in (0..10_000).step_by(97) {
            assert_eq!(t.uop_at(i), t.uop_at(i));
        }
    }

    #[test]
    fn offset_shifts_the_stream() {
        let a = trace("gcc");
        let b = SyntheticTrace::new(spec::profile("gcc").unwrap(), 0x1_0000_0000, 1_000_000);
        assert_eq!(a.uop_at(1_000_123), b.uop_at(123));
    }

    #[test]
    fn base_only_relocates_never_changes_behaviour() {
        // Two copies of the same program in different address spaces must
        // execute identically: same kinds, same dependences, same branch
        // outcomes — only the addresses shift.
        let a = SyntheticTrace::new(spec::profile("bzip2").unwrap(), 0x1_0000_0000, 0);
        let b = SyntheticTrace::new(spec::profile("bzip2").unwrap(), 0x9_0000_0000, 0);
        for i in 0..20_000 {
            let (ua, ub) = (a.uop_at(i), b.uop_at(i));
            assert_eq!(ua.src_dist, ub.src_dist);
            match (ua.kind, ub.kind) {
                (
                    UopKind::Branch {
                        taken: ta,
                        target: tga,
                    },
                    UopKind::Branch {
                        taken: tb,
                        target: tgb,
                    },
                ) => {
                    assert_eq!(ta, tb, "branch outcome changed with base at {i}");
                    assert_eq!(tgb - tga, 0x8_0000_0000);
                }
                (UopKind::Call { target: tga }, UopKind::Call { target: tgb })
                | (UopKind::Return { target: tga }, UopKind::Return { target: tgb }) => {
                    assert_eq!(tgb - tga, 0x8_0000_0000);
                }
                (ka, kb) => assert_eq!(ka, kb),
            }
        }
    }

    #[test]
    fn base_relocates_addresses() {
        let a = SyntheticTrace::new(spec::profile("swim").unwrap(), 0x1_0000_0000, 0);
        let b = SyntheticTrace::new(spec::profile("swim").unwrap(), 0x9_0000_0000, 0);
        for i in 0..1_000 {
            let (ua, ub) = (a.uop_at(i), b.uop_at(i));
            if let (Some(ma), Some(mb)) = (ua.mem_addr, ub.mem_addr) {
                assert_eq!(mb - ma, 0x8_0000_0000);
            }
            assert_eq!(ub.pc - ua.pc, 0x8_0000_0000);
        }
    }

    #[test]
    fn instruction_mix_matches_profile() {
        let t = trace("gcc");
        let p = t.profile().clone();
        let n = 200_000u64;
        let (mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64);
        for i in 0..n {
            match t.uop_at(i).kind {
                UopKind::Load => loads += 1,
                UopKind::Store => stores += 1,
                UopKind::Branch { .. } => branches += 1,
                _ => {}
            }
        }
        // Calling blocks replace their end branch with a call/return
        // pair, so the branch fraction shrinks by the call fraction.
        let bl = p.block_len as f64;
        let control = (1.0 - p.call_block_frac) / bl + p.call_block_frac * 2.0 / bl;
        let non_control = 1.0 - control;
        let lf = loads as f64 / n as f64;
        let sf = stores as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!(
            (lf - p.mix.load * non_control).abs() < 0.02,
            "load frac {lf}"
        );
        assert!(
            (sf - p.mix.store * non_control).abs() < 0.02,
            "store frac {sf}"
        );
        let expect_bf = (1.0 - p.call_block_frac) / bl;
        assert!(
            (bf - expect_bf).abs() < 0.01,
            "branch frac {bf} vs {expect_bf}"
        );
    }

    #[test]
    fn cold_line_rate_tracks_target_ipm() {
        let t = trace("swim");
        let p = t.profile().clone();
        let n = 500_000u64;
        let cold_base = 0x1_0000_0000u64 + COLD_REGION;
        let cold = (0..n)
            .filter(|i| {
                t.uop_at(*i)
                    .mem_addr
                    .is_some_and(|a| a >= cold_base && t.uop_at(*i).kind == UopKind::Load)
            })
            .count() as f64;
        let measured_ipm = n as f64 / cold;
        let target = p.target_ipm();
        assert!(
            (measured_ipm / target - 1.0).abs() < 0.2,
            "measured IPM {measured_ipm} vs target {target}"
        );
    }

    #[test]
    fn cold_addresses_stream_through_mostly_distinct_lines() {
        let t = trace("mcf");
        let cold_base = 0x1_0000_0000u64 + COLD_REGION;
        let cold_store_base = 0x1_0000_0000u64 + COLD_STORE_REGION;
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for i in 0..100_000 {
            let u = t.uop_at(i);
            if u.kind == UopKind::Load {
                if let Some(a) = u.mem_addr {
                    if (cold_base..cold_store_base).contains(&a) {
                        total += 1;
                        seen.insert(a / 64);
                    }
                }
            }
        }
        assert!(seen.len() > 100, "mcf must have plenty of cold lines");
        // The rate-derived ordinal occasionally collides; the stream must
        // still be almost entirely fresh lines.
        assert!(
            seen.len() as f64 > total as f64 * 0.6,
            "{} distinct of {total} cold accesses",
            seen.len()
        );
        // And the pages touched advance densely: the page working set of
        // the stream stays small.
        let pages: std::collections::HashSet<u64> = seen.iter().map(|l| l / 64).collect();
        assert!(
            pages.len() <= seen.len() / 8,
            "cold stream must be page-dense: {} pages for {} lines",
            pages.len(),
            seen.len()
        );
    }

    #[test]
    fn code_stays_in_footprint() {
        let t = trace("eon");
        let p = t.profile().clone();
        // Main code plus the leaf-function region (2 lines per leaf).
        let leaves = (p.code_lines / 8).max(1);
        let span = (p.code_lines + leaves * 2) * 64;
        for i in 0..50_000 {
            let pc = t.uop_at(i).pc - 0x1_0000_0000;
            assert!(pc < span, "pc {pc:#x} outside code footprint {span:#x}");
        }
    }

    #[test]
    fn phased_profile_varies_miss_rate() {
        let t = trace("gcc");
        let p = t.profile().clone();
        assert!(p.phase_cycle().is_some(), "gcc is phased");
        // Count cold loads in the first vs second phase of the cycle.
        let cold_base = 0x1_0000_0000u64 + COLD_REGION;
        let count_cold = |from: u64, len: u64| {
            (from..from + len)
                .filter(|i| {
                    let u = t.uop_at(*i);
                    u.kind == UopKind::Load && u.mem_addr.is_some_and(|a| a >= cold_base)
                })
                .count()
        };
        let p0 = p.phases[0].len_instrs;
        let p1 = p.phases[1].len_instrs;
        let hi = count_cold(0, p0.min(400_000));
        let lo = count_cold(p0, p1.min(400_000));
        // Phase 0 of gcc is the missy one (scales differ by design).
        assert_ne!(hi, lo, "phases must differ in miss rate");
    }
}
