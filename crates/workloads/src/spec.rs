//! Named workload profiles standing in for the SPEC CPU2000 benchmarks
//! the paper evaluates.
//!
//! The parameters are calibrated so that each profile's emergent
//! behaviour on the simulated P6-class machine lands in the regime the
//! named SPEC workload is known for:
//!
//! * **eon, galgel, gzip** — low miss rate (large `IPM`), decent ILP: the
//!   threads that monopolize an unfair SOE core,
//! * **gcc, bzip2, apsi, applu, lucas, mgrid** — moderate miss rates;
//!   gcc additionally alternates between missy and compute phases,
//! * **swim, art, mcf** — memory-bound streamers (small `IPM`); mcf also
//!   has the low ILP of pointer chasing: the threads that starve.
//!
//! `IPM` targets follow `1 / (load_fraction · cold_load_prob)`; exact
//! values emerge from simulation and are validated by the calibration
//! tests in `soe-core`.

use crate::profile::{InstrMix, MemoryBehavior, Phase, Profile};

fn base(name: &str, seed: u64) -> Profile {
    Profile {
        name: name.to_string(),
        seed,
        mix: InstrMix {
            load: 0.25,
            store: 0.10,
            mul: 0.04,
            div: 0.002,
        },
        mean_dep_dist: 5.0,
        branch_predictability: 0.95,
        block_len: 8,
        code_lines: 160,
        call_block_frac: 0.0,
        mem: MemoryBehavior {
            hot_lines: 96,
            warm_lines: 1_024,
            cold_load_prob: 0.001,
            warm_load_prob: 0.05,
            cold_store_prob: 0.0005,
        },
        phases: Vec::new(),
    }
}

/// All profile names, in a stable order.
pub const NAMES: [&str; 16] = [
    "gcc", "eon", "gzip", "bzip2", "mgrid", "swim", "applu", "lucas", "galgel", "apsi", "mcf",
    "art", "vortex", "twolf", "equake", "wupwise",
];

/// Returns the named profile, or `None` for an unknown name.
pub fn profile(name: &str) -> Option<Profile> {
    let p = match name {
        // gcc: moderate miss rate with alternating compiler phases,
        // branchy integer code. IPM target ~2 500.
        "gcc" => {
            let mut p = base("gcc", 0x6cc);
            p.mix = InstrMix {
                load: 0.26,
                store: 0.12,
                mul: 0.01,
                div: 0.0,
            };
            p.mean_dep_dist = 4.0;
            p.branch_predictability = 0.92;
            p.block_len = 6;
            p.call_block_frac = 0.25;
            p.code_lines = 224;
            p.mem.cold_load_prob = 1.0 / 650.0;
            p.phases = vec![
                Phase {
                    len_instrs: 1_500_000,
                    miss_scale: 1.6,
                    ilp_scale: 0.9,
                },
                Phase {
                    len_instrs: 1_000_000,
                    miss_scale: 0.4,
                    ilp_scale: 1.2,
                },
            ];
            p
        }
        // eon: C++ ray tracer — tiny data working set, almost no L2
        // misses, well-predicted branches. IPM target ~20 000.
        "eon" => {
            let mut p = base("eon", 0xe0e);
            p.mix.load = 0.24;
            p.mean_dep_dist = 5.5;
            p.branch_predictability = 0.97;
            p.block_len = 8;
            p.call_block_frac = 0.3;
            p.mem.cold_load_prob = 1.0 / 12_000.0;
            p.mem.warm_load_prob = 0.04;
            p.mem.cold_store_prob = 0.000_05;
            p
        }
        // gzip: compression over an in-cache window. IPM target ~8 000.
        "gzip" => {
            let mut p = base("gzip", 0x621b);
            p.mix.load = 0.22;
            p.mean_dep_dist = 4.5;
            p.branch_predictability = 0.93;
            p.block_len = 7;
            p.call_block_frac = 0.15;
            p.mem.cold_load_prob = 1.0 / 1_760.0;
            p.mem.cold_store_prob = 0.000_1;
            p
        }
        // bzip2: blocksort compression, moderate misses. IPM ~4 000.
        "bzip2" => {
            let mut p = base("bzip2", 0xb21f);
            p.mix.load = 0.26;
            p.mean_dep_dist = 4.2;
            p.branch_predictability = 0.91;
            p.block_len = 7;
            p.call_block_frac = 0.12;
            p.mem.cold_load_prob = 1.0 / 1_040.0;
            p.mem.warm_load_prob = 0.15;
            p
        }
        // mgrid: FP multigrid — long vectorizable loops, high ILP,
        // streaming grids. IPM ~1 200.
        "mgrid" => {
            let mut p = base("mgrid", 0x369d);
            p.mix = InstrMix {
                load: 0.30,
                store: 0.08,
                mul: 0.12,
                div: 0.002,
            };
            p.mean_dep_dist = 8.0;
            p.branch_predictability = 0.99;
            p.block_len = 16;
            p.code_lines = 96;
            p.mem.cold_load_prob = 1.0 / 360.0;
            p
        }
        // swim: shallow-water FP kernel — heavy streaming. IPM ~600.
        "swim" => {
            let mut p = base("swim", 0x5817);
            p.mix = InstrMix {
                load: 0.32,
                store: 0.10,
                mul: 0.10,
                div: 0.0,
            };
            p.mean_dep_dist = 8.0;
            p.branch_predictability = 0.99;
            p.block_len = 16;
            p.code_lines = 64;
            p.mem.cold_load_prob = 1.0 / 288.0;
            p.mem.cold_store_prob = 0.002;
            p
        }
        // applu: FP PDE solver. IPM ~1 500.
        "applu" => {
            let mut p = base("applu", 0xa7b1);
            p.mix = InstrMix {
                load: 0.29,
                store: 0.09,
                mul: 0.11,
                div: 0.002,
            };
            p.mean_dep_dist = 7.0;
            p.branch_predictability = 0.98;
            p.block_len = 12;
            p.code_lines = 96;
            p.mem.cold_load_prob = 1.0 / 430.0;
            p
        }
        // lucas: FP number theory — FFT-ish strides. IPM ~1 000.
        "lucas" => {
            let mut p = base("lucas", 0x10ca5);
            p.mix = InstrMix {
                load: 0.28,
                store: 0.08,
                mul: 0.14,
                div: 0.0,
            };
            p.mean_dep_dist = 7.0;
            p.branch_predictability = 0.99;
            p.block_len = 12;
            p.mem.cold_load_prob = 1.0 / 280.0;
            p
        }
        // galgel: FP fluid dynamics with an L2-resident working set —
        // high ILP, rare misses. IPM ~10 000.
        "galgel" => {
            let mut p = base("galgel", 0x6a16e1);
            p.mix = InstrMix {
                load: 0.27,
                store: 0.07,
                mul: 0.12,
                div: 0.001,
            };
            p.mean_dep_dist = 8.5;
            p.branch_predictability = 0.98;
            p.block_len = 14;
            p.mem.cold_load_prob = 1.0 / 6_000.0;
            p.mem.warm_load_prob = 0.12;
            p.mem.cold_store_prob = 0.000_1;
            p
        }
        // apsi: FP meteorology. IPM ~3 000.
        "apsi" => {
            let mut p = base("apsi", 0xa951);
            p.mix = InstrMix {
                load: 0.28,
                store: 0.09,
                mul: 0.10,
                div: 0.003,
            };
            p.mean_dep_dist = 6.0;
            p.branch_predictability = 0.97;
            p.block_len = 10;
            p.mem.cold_load_prob = 1.0 / 840.0;
            p
        }
        // mcf: pointer-chasing network simplex — tiny ILP, constant
        // misses. IPM ~250.
        "mcf" => {
            let mut p = base("mcf", 0x3cf);
            p.mix = InstrMix {
                load: 0.32,
                store: 0.08,
                mul: 0.0,
                div: 0.0,
            };
            p.mean_dep_dist = 2.2;
            p.branch_predictability = 0.88;
            p.block_len = 5;
            p.call_block_frac = 0.2;
            p.code_lines = 80;
            p.mem.cold_load_prob = 1.0 / 104.0;
            p.mem.warm_load_prob = 0.15;
            p
        }
        // art: neural-net image recognition — streaming with low ILP.
        // IPM ~400.
        "art" => {
            let mut p = base("art", 0xa47);
            p.mix = InstrMix {
                load: 0.34,
                store: 0.06,
                mul: 0.08,
                div: 0.0,
            };
            p.mean_dep_dist = 3.0;
            p.branch_predictability = 0.93;
            p.block_len = 8;
            p.code_lines = 48;
            p.mem.cold_load_prob = 1.0 / 170.0;
            p
        }
        // vortex: object-oriented database — call-heavy integer code with
        // an L2-resident object heap. IPM ~6 000.
        "vortex" => {
            let mut p = base("vortex", 0x407e);
            p.mix = InstrMix {
                load: 0.28,
                store: 0.14,
                mul: 0.0,
                div: 0.0,
            };
            p.mean_dep_dist = 4.0;
            p.branch_predictability = 0.94;
            p.block_len = 6;
            p.code_lines = 256;
            p.call_block_frac = 0.35;
            p.mem.cold_load_prob = 1.0 / 1_680.0;
            p.mem.warm_load_prob = 0.12;
            p.mem.cold_store_prob = 0.000_1;
            p
        }
        // twolf: place-and-route — branchy integer code with moderate
        // misses. IPM ~1 500.
        "twolf" => {
            let mut p = base("twolf", 0x2201f);
            p.mix = InstrMix {
                load: 0.27,
                store: 0.08,
                mul: 0.02,
                div: 0.001,
            };
            p.mean_dep_dist = 3.2;
            p.branch_predictability = 0.89;
            p.block_len = 5;
            p.code_lines = 192;
            p.call_block_frac = 0.15;
            p.mem.cold_load_prob = 1.0 / 405.0;
            p
        }
        // equake: FP earthquake simulation — sparse-matrix streaming.
        // IPM ~700.
        "equake" => {
            let mut p = base("equake", 0xe90a2e);
            p.mix = InstrMix {
                load: 0.31,
                store: 0.08,
                mul: 0.11,
                div: 0.002,
            };
            p.mean_dep_dist = 5.5;
            p.branch_predictability = 0.97;
            p.block_len = 12;
            p.code_lines = 80;
            p.mem.cold_load_prob = 1.0 / 217.0;
            p
        }
        // wupwise: FP quantum chromodynamics — dense kernels with an
        // L2-friendly lattice. IPM ~2 500.
        "wupwise" => {
            let mut p = base("wupwise", 0x3b93);
            p.mix = InstrMix {
                load: 0.28,
                store: 0.09,
                mul: 0.14,
                div: 0.001,
            };
            p.mean_dep_dist = 7.5;
            p.branch_predictability = 0.99;
            p.block_len = 14;
            p.code_lines = 96;
            p.mem.cold_load_prob = 1.0 / 700.0;
            p
        }
        _ => return None,
    };
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve_and_validate() {
        for name in NAMES {
            let p = profile(name).unwrap_or_else(|| panic!("{name} missing"));
            p.validate();
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(profile("quake").is_none());
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = NAMES.iter().map(|n| profile(n).unwrap().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), NAMES.len());
    }

    #[test]
    fn ipm_targets_span_two_orders_of_magnitude() {
        let ipms: Vec<f64> = NAMES
            .iter()
            .map(|n| profile(n).unwrap().target_ipm())
            .collect();
        let min = ipms.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ipms.iter().copied().fold(0.0f64, f64::max);
        assert!(min < 500.0, "need a memory-bound profile, min {min}");
        assert!(max > 10_000.0, "need a compute-bound profile, max {max}");
        assert!(max / min > 30.0, "spread {}", max / min);
    }

    #[test]
    fn missy_profiles_are_missier_than_compute_profiles() {
        let ipm = |n: &str| profile(n).unwrap().target_ipm();
        assert!(ipm("mcf") < ipm("gcc"));
        assert!(ipm("swim") < ipm("apsi"));
        assert!(ipm("gcc") < ipm("eon"));
        assert!(ipm("art") < ipm("galgel"));
    }

    #[test]
    fn gcc_is_phased() {
        assert!(profile("gcc").unwrap().phase_cycle().is_some());
    }
}
