//! LIT-like checkpoints: serializable architectural snapshots of a
//! synthetic trace.
//!
//! The paper's methodology is built on Long Instruction Traces (LITs) —
//! checkpoints of architectural state plus injectable external events,
//! from which simulation can resume at any point. For a synthetic trace
//! the architectural state collapses to `(profile, position, address
//! base)`; this module provides exactly that, serialized as JSON, plus
//! the injectable-event analogue (a periodic interrupt overlay).

use serde::{Deserialize, Serialize};
use soe_sim::{Addr, InstrIndex, TraceSource, Uop, UopKind};

use crate::gen::SyntheticTrace;
use crate::profile::Profile;

/// A serializable snapshot from which a [`SyntheticTrace`] can be
/// reconstructed mid-stream.
///
/// # Examples
///
/// ```
/// use soe_sim::TraceSource;
/// use soe_workloads::{spec, Checkpoint, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(spec::profile("swim").unwrap(), 0x2_0000_0000, 0);
/// let cp = Checkpoint::capture(&trace, 5_000);
/// let json = cp.to_json().unwrap();
/// let resumed = Checkpoint::from_json(&json).unwrap().into_trace();
/// assert_eq!(resumed.uop_at(0), trace.uop_at(5_000));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The generating profile.
    pub profile: Profile,
    /// Absolute stream position of the snapshot.
    pub position: InstrIndex,
    /// Address-space base of the thread.
    pub base: Addr,
}

impl Checkpoint {
    /// Captures a checkpoint of `trace` at `position` instructions past
    /// the trace's current offset.
    pub fn capture(trace: &SyntheticTrace, position: InstrIndex) -> Self {
        Self {
            profile: trace.profile().clone(),
            position: trace.offset() + position,
            base: trace.base(),
        }
    }

    /// Reconstructs the trace, resuming at the snapshot position.
    pub fn into_trace(self) -> SyntheticTrace {
        SyntheticTrace::new(self.profile, self.base, self.position)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails (it cannot
    /// for well-formed profiles).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// A stable, filesystem-safe memoization key for this checkpoint:
    /// the profile name and stream coordinates in clear (for
    /// debuggability of cache directories) plus an FNV-1a-64 digest of
    /// the *full* canonical serialization, so editing any profile
    /// parameter — not just renaming it — invalidates cache entries
    /// derived from the old behaviour.
    pub fn memo_key(&self) -> String {
        let canonical = serde_json::to_string(self).unwrap_or_default();
        format!(
            "{}-p{}-b{:x}-{:016x}",
            self.profile.name,
            self.position,
            self.base,
            fnv1a64(canonical.as_bytes())
        )
    }
}

/// FNV-1a 64-bit — the same digest the supervision journal uses; tiny,
/// dependency-free, and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The LIT "injectable external events" analogue: a periodic interrupt
/// that overlays a kernel handler onto the underlying trace.
///
/// Every `period` instructions, the next `handler_len` micro-ops are
/// replaced by handler code (ALU ops and loads in a dedicated kernel
/// region), perturbing the I-cache and branch predictor the way real
/// interrupt/OS activity does in LIT-driven simulation.
#[derive(Debug, Clone)]
pub struct InterruptOverlay<T> {
    inner: T,
    period: u64,
    handler_len: u64,
    kernel_base: Addr,
}

impl<T: TraceSource> InterruptOverlay<T> {
    /// Wraps `inner`, injecting a `handler_len`-instruction handler every
    /// `period` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `handler_len >= period`.
    pub fn new(inner: T, period: u64, handler_len: u64, kernel_base: Addr) -> Self {
        assert!(period > 0, "interrupt period must be positive");
        assert!(
            handler_len < period,
            "handler must be shorter than the period"
        );
        Self {
            inner,
            period,
            handler_len,
            kernel_base,
        }
    }
}

impl<T: TraceSource> TraceSource for InterruptOverlay<T> {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        let phase = index % self.period;
        if phase < self.handler_len {
            let pc = self.kernel_base + phase * 4;
            if phase % 5 == 4 {
                Uop::new(UopKind::Load, pc).with_mem(self.kernel_base + 0x8000 + (phase % 64) * 64)
            } else {
                Uop::new(UopKind::Alu, pc).with_deps(1, 0)
            }
        } else {
            // The underlying program resumes where it left off: handler
            // instructions do not consume program positions. All handlers
            // up to and including the current period's are complete here.
            let handler_instrs = (index / self.period + 1) * self.handler_len;
            self.inner.uop_at(index - handler_instrs)
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn trace() -> SyntheticTrace {
        SyntheticTrace::new(spec::profile("gzip").unwrap(), 0x3_0000_0000, 100)
    }

    #[test]
    fn capture_and_resume_round_trip() {
        let t = trace();
        let cp = Checkpoint::capture(&t, 1_234);
        let r = cp.into_trace();
        for i in 0..100 {
            assert_eq!(r.uop_at(i), t.uop_at(1_234 + i));
        }
    }

    #[test]
    fn json_round_trip() {
        let cp = Checkpoint::capture(&trace(), 77);
        let json = cp.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Checkpoint::from_json("{not json").is_err());
    }

    #[test]
    fn memo_key_is_stable_and_parameter_sensitive() {
        let t = trace();
        let a = Checkpoint::capture(&t, 500);
        assert_eq!(a.memo_key(), Checkpoint::capture(&t, 500).memo_key());
        assert_ne!(a.memo_key(), Checkpoint::capture(&t, 501).memo_key());
        let mut tweaked = a.clone();
        tweaked.profile.mem.cold_load_prob *= 1.5;
        assert_ne!(
            a.memo_key(),
            tweaked.memo_key(),
            "parameter change must invalidate"
        );
        assert!(
            a.memo_key()
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'),
            "filesystem-safe: {}",
            a.memo_key()
        );
    }

    #[test]
    fn interrupt_overlay_injects_kernel_code() {
        let o = InterruptOverlay::new(trace(), 1_000, 50, 0xdead_0000_0000);
        let u = o.uop_at(0);
        assert!(u.pc >= 0xdead_0000_0000, "handler at period start");
        let v = o.uop_at(500);
        assert!(v.pc < 0xdead_0000_0000, "program code between interrupts");
    }

    #[test]
    fn interrupt_overlay_is_pure() {
        let o = InterruptOverlay::new(trace(), 997, 31, 0xdead_0000);
        for i in (0..5_000).step_by(53) {
            assert_eq!(o.uop_at(i), o.uop_at(i));
        }
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn oversized_handler_panics() {
        InterruptOverlay::new(trace(), 10, 10, 0);
    }
}
