//! Synthetic SPEC-CPU2000-like workloads for the SOE fairness
//! reproduction.
//!
//! The paper drives its simulator with proprietary Long Instruction
//! Traces (LITs) of SPEC CPU2000. This crate substitutes deterministic
//! synthetic workloads with the same *statistical* structure:
//!
//! * a [`Profile`] describes a benchmark (instruction mix, ILP, branch
//!   predictability, working sets, last-level miss rate, phases),
//! * [`SyntheticTrace`] turns a profile into a replayable micro-op stream
//!   — a pure function of the stream position, which is exactly the
//!   resume-anywhere property LIT checkpoints provide,
//! * [`spec`] names sixteen calibrated profiles after the SPEC workloads
//!   the paper's figures use (gcc, eon, swim, mcf, ...),
//! * [`pairs`] lists the 16 two-thread combinations of the evaluation,
//! * [`Checkpoint`] and [`InterruptOverlay`] mirror the LIT snapshot and
//!   injectable-event machinery.
//!
//! # Examples
//!
//! ```
//! use soe_workloads::pairs::paper_pairs;
//!
//! let pairs = paper_pairs();
//! assert_eq!(pairs.len(), 16);
//! let traces = pairs[0].boxed_traces(); // ready for soe_sim::Machine
//! assert_eq!(traces.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod checkpoint;
pub mod fastdiv;
mod gen;
pub mod hash;
mod litfile;
mod overlay;
pub mod pairs;
mod profile;
pub mod spec;

pub use analysis::{analyze_trace, TraceStats};
pub use checkpoint::{Checkpoint, InterruptOverlay};
pub use gen::SyntheticTrace;
pub use litfile::LitFile;
pub use overlay::{PauseOverlay, RelocateOverlay};
pub use pairs::Pair;
pub use profile::{InstrMix, MemoryBehavior, Phase, Profile};
