//! Trace overlays: composable wrappers that modify an underlying
//! micro-op stream without breaking its replayability.

use soe_sim::{Addr, InstrIndex, TraceSource, Uop, UopKind};

/// Injects a `pause` switch hint every `period` instructions — the
/// spin-wait / busy-poll pattern behind the paper's Section 6 note that
/// explicit instructions (x86 `pause`) can trigger thread switches.
///
/// Like every trace transform here, the overlay is a pure function of
/// position: the hint replaces the underlying micro-op at positions
/// divisible by `period` (the program conceptually has the hint compiled
/// in).
///
/// # Examples
///
/// ```
/// use soe_sim::{TraceSource, UopKind};
/// use soe_workloads::{spec, PauseOverlay, SyntheticTrace};
///
/// let inner = SyntheticTrace::new(spec::profile("eon").unwrap(), 0x1_0000_0000, 0);
/// let t = PauseOverlay::new(inner, 1_000);
/// assert_eq!(t.uop_at(0).kind, UopKind::Pause);
/// assert_ne!(t.uop_at(1).kind, UopKind::Pause);
/// ```
#[derive(Debug, Clone)]
pub struct PauseOverlay<T> {
    inner: T,
    period: u64,
}

impl<T: TraceSource> PauseOverlay<T> {
    /// Wraps `inner`, pausing every `period` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` (the stream must keep real work).
    pub fn new(inner: T, period: u64) -> Self {
        assert!(period >= 2, "pause period must leave room for real work");
        Self { inner, period }
    }
}

impl<T: TraceSource> TraceSource for PauseOverlay<T> {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        if index.is_multiple_of(self.period) {
            let pc = self.inner.uop_at(index).pc;
            Uop::new(UopKind::Pause, pc)
        } else {
            self.inner.uop_at(index)
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Remaps an underlying trace's address space by a fixed displacement —
/// useful for placing pre-built traces into fresh address ranges without
/// regenerating them.
#[derive(Debug, Clone)]
pub struct RelocateOverlay<T> {
    inner: T,
    displacement: Addr,
}

impl<T: TraceSource> RelocateOverlay<T> {
    /// Wraps `inner`, adding `displacement` to every code and data
    /// address.
    pub fn new(inner: T, displacement: Addr) -> Self {
        Self {
            inner,
            displacement,
        }
    }
}

impl<T: TraceSource> TraceSource for RelocateOverlay<T> {
    fn uop_at(&self, index: InstrIndex) -> Uop {
        let mut u = self.inner.uop_at(index);
        u.pc += self.displacement;
        if let Some(a) = u.mem_addr.as_mut() {
            *a += self.displacement;
        }
        match u.kind {
            UopKind::Branch { taken, target } => {
                u.kind = UopKind::Branch {
                    taken,
                    target: target + self.displacement,
                };
            }
            UopKind::Call { target } => {
                u.kind = UopKind::Call {
                    target: target + self.displacement,
                };
            }
            UopKind::Return { target } => {
                u.kind = UopKind::Return {
                    target: target + self.displacement,
                };
            }
            _ => {}
        }
        u
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, SyntheticTrace};

    fn inner() -> SyntheticTrace {
        SyntheticTrace::new(spec::profile("gzip").unwrap(), 0x1_0000_0000, 0)
    }

    #[test]
    fn pause_overlay_period() {
        let t = PauseOverlay::new(inner(), 100);
        for i in 0..1_000 {
            let is_pause = t.uop_at(i).kind == UopKind::Pause;
            assert_eq!(is_pause, i % 100 == 0, "at {i}");
        }
    }

    #[test]
    fn pause_overlay_is_pure() {
        let t = PauseOverlay::new(inner(), 37);
        for i in (0..2_000).step_by(13) {
            assert_eq!(t.uop_at(i), t.uop_at(i));
        }
    }

    #[test]
    fn relocate_shifts_all_addresses() {
        let base = inner();
        let t = RelocateOverlay::new(inner(), 0x100_0000_0000);
        for i in 0..2_000 {
            let (a, b) = (base.uop_at(i), t.uop_at(i));
            assert_eq!(b.pc - a.pc, 0x100_0000_0000);
            assert_eq!(a.kind.is_mem(), b.kind.is_mem());
            if let (Some(ma), Some(mb)) = (a.mem_addr, b.mem_addr) {
                assert_eq!(mb - ma, 0x100_0000_0000);
            }
            match (a.kind, b.kind) {
                (UopKind::Branch { target: ta, .. }, UopKind::Branch { target: tb, .. })
                | (UopKind::Call { target: ta }, UopKind::Call { target: tb })
                | (UopKind::Return { target: ta }, UopKind::Return { target: tb }) => {
                    assert_eq!(tb - ta, 0x100_0000_0000);
                }
                _ => {}
            }
        }
    }

    #[test]
    #[should_panic(expected = "room for real work")]
    fn tiny_pause_period_panics() {
        PauseOverlay::new(inner(), 1);
    }
}
