//! Static trace analysis: summarize a window of any [`TraceSource`]
//! without running the simulator — instruction mix, control behaviour,
//! dependence structure and memory footprint.
//!
//! Useful for sanity-checking recorded LIT files, validating generator
//! calibration and characterizing third-party traces before simulation.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use soe_sim::{InstrIndex, TraceSource, UopKind};

/// Aggregate statistics of a trace window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Window length in micro-ops.
    pub window: u64,
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of branches.
    pub branch_frac: f64,
    /// Fraction of calls (returns match within ±1).
    pub call_frac: f64,
    /// Fraction of taken branches among branches.
    pub taken_frac: f64,
    /// Mean non-zero producer distance.
    pub mean_dep_dist: f64,
    /// Distinct 64-byte data lines touched.
    pub data_lines: u64,
    /// Distinct 4-KiB data pages touched.
    pub data_pages: u64,
    /// Distinct 64-byte code lines touched.
    pub code_lines: u64,
    /// Micro-ops per *fresh* data line (first-touch): a static
    /// approximation of the instructions-per-miss a cold cache would see.
    pub instrs_per_fresh_line: f64,
}

/// Analyzes `count` micro-ops of `source` starting at `start`.
///
/// # Examples
///
/// ```
/// use soe_workloads::{analyze_trace, spec, SyntheticTrace};
///
/// let t = SyntheticTrace::new(spec::profile("swim").unwrap(), 0x1_0000_0000, 0);
/// let stats = analyze_trace(&t, 0, 50_000);
/// assert!(stats.load_frac > 0.2);
/// assert!(stats.data_lines > 100);
/// ```
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn analyze_trace(source: &dyn TraceSource, start: InstrIndex, count: u64) -> TraceStats {
    assert!(count > 0, "cannot analyze an empty window");
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    let mut taken = 0u64;
    let mut calls = 0u64;
    let mut dep_sum = 0u64;
    let mut dep_n = 0u64;
    let mut data_lines: HashSet<u64> = HashSet::new();
    let mut data_pages: HashSet<u64> = HashSet::new();
    let mut code_lines: HashSet<u64> = HashSet::new();
    let mut fresh_lines = 0u64;

    for i in start..start + count {
        let u = source.uop_at(i);
        code_lines.insert(u.pc >> 6);
        for d in u.src_dist {
            if d > 0 {
                dep_sum += d as u64;
                dep_n += 1;
            }
        }
        match u.kind {
            UopKind::Load => loads += 1,
            UopKind::Store => stores += 1,
            UopKind::Branch { taken: t, .. } => {
                branches += 1;
                if t {
                    taken += 1;
                }
            }
            UopKind::Call { .. } => calls += 1,
            _ => {}
        }
        if let Some(addr) = u.mem_addr {
            if data_lines.insert(addr >> 6) {
                fresh_lines += 1;
            }
            data_pages.insert(addr >> 12);
        }
    }
    let n = count as f64;
    TraceStats {
        window: count,
        load_frac: loads as f64 / n,
        store_frac: stores as f64 / n,
        branch_frac: branches as f64 / n,
        call_frac: calls as f64 / n,
        taken_frac: if branches == 0 {
            0.0
        } else {
            taken as f64 / branches as f64
        },
        mean_dep_dist: if dep_n == 0 {
            0.0
        } else {
            dep_sum as f64 / dep_n as f64
        },
        data_lines: data_lines.len() as u64,
        data_pages: data_pages.len() as u64,
        code_lines: code_lines.len() as u64,
        instrs_per_fresh_line: if fresh_lines == 0 {
            f64::INFINITY
        } else {
            n / fresh_lines as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, LitFile, SyntheticTrace};

    fn trace(name: &str) -> SyntheticTrace {
        SyntheticTrace::new(spec::profile(name).unwrap(), 0x1_0000_0000, 0)
    }

    #[test]
    fn mix_matches_the_generating_profile() {
        let t = trace("swim");
        let p = t.profile().clone();
        let s = analyze_trace(&t, 0, 100_000);
        let non_control = 1.0 - 1.0 / p.block_len as f64;
        assert!((s.load_frac - p.mix.load * non_control).abs() < 0.02);
        assert!((s.store_frac - p.mix.store * non_control).abs() < 0.02);
        assert!(s.branch_frac > 0.0);
    }

    #[test]
    fn call_heavy_profile_shows_calls() {
        let s = analyze_trace(&trace("vortex"), 0, 60_000);
        assert!(s.call_frac > 0.02, "vortex calls: {}", s.call_frac);
        let s2 = analyze_trace(&trace("swim"), 0, 60_000);
        assert_eq!(s2.call_frac, 0.0, "swim has no calls");
    }

    #[test]
    fn memory_bound_profiles_touch_more_fresh_lines() {
        let missy = analyze_trace(&trace("mcf"), 0, 200_000);
        let compute = analyze_trace(&trace("eon"), 0, 200_000);
        assert!(
            missy.instrs_per_fresh_line < compute.instrs_per_fresh_line,
            "mcf {} vs eon {}",
            missy.instrs_per_fresh_line,
            compute.instrs_per_fresh_line
        );
    }

    #[test]
    fn code_footprint_is_bounded_by_the_profile() {
        let t = trace("gzip");
        let p = t.profile().clone();
        let s = analyze_trace(&t, 0, 100_000);
        let leaves = (p.code_lines / 8).max(1);
        assert!(s.code_lines <= p.code_lines + leaves * 2 + 2);
    }

    #[test]
    fn analysis_works_on_recorded_traces() {
        let live = trace("apsi");
        let lit = LitFile::record(&live, 0, 30_000);
        let a = analyze_trace(&live, 0, 30_000);
        let b = analyze_trace(&lit, 0, 30_000);
        assert_eq!(a, b, "recording must not change the statistics");
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        analyze_trace(&trace("gcc"), 0, 0);
    }
}
