//! Deterministic mixing functions: the randomness backbone of the
//! synthetic traces.
//!
//! Every workload decision (instruction kind, address, dependency
//! distance, branch outcome) is a pure function of `(seed, instruction
//! index, salt)`, which makes traces replayable from any position — the
//! property the simulator's squash-and-replay relies on.

/// SplitMix64-style avalanche of a 64-bit value.
#[inline]
pub fn avalanche(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes a seed, an instruction index and a salt into a uniform 64-bit
/// value.
#[inline]
pub fn mix(seed: u64, index: u64, salt: u64) -> u64 {
    avalanche(seed ^ avalanche(index.wrapping_add(salt.wrapping_mul(0x2545_f491_4f6c_dd1d))))
}

/// A uniform `f64` in `[0, 1)` derived from `(seed, index, salt)`.
#[inline]
pub fn unit(seed: u64, index: u64, salt: u64) -> f64 {
    (mix(seed, index, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A geometric-like positive integer with the given mean, derived from
/// `(seed, index, salt)` — used for dependency distances.
///
/// # Panics
///
/// Panics if `mean < 1.0`.
#[inline]
pub fn geometric(seed: u64, index: u64, salt: u64, mean: f64) -> u64 {
    assert!(mean >= 1.0, "geometric mean must be at least 1");
    let u = unit(seed, index, salt);
    // Inverse-CDF of a shifted exponential, giving mean ≈ `mean`.
    let v = 1.0 - (1.0 - u).ln() * (mean - 1.0);
    v.round().clamp(1.0, 256.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = unit(42, i, 7);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn geometric_mean_is_close() {
        for target in [1.0, 3.0, 8.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|i| geometric(9, i, 1, target)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - target).abs() < target * 0.15 + 0.2,
                "target {target} got {mean}"
            );
        }
    }

    #[test]
    fn geometric_is_at_least_one() {
        for i in 0..1_000 {
            assert!(geometric(1, i, 2, 1.5) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn tiny_mean_panics() {
        geometric(0, 0, 0, 0.5);
    }
}
