//! Deterministic mixing functions: the randomness backbone of the
//! synthetic traces.
//!
//! Every workload decision (instruction kind, address, dependency
//! distance, branch outcome) is a pure function of `(seed, instruction
//! index, salt)`, which makes traces replayable from any position — the
//! property the simulator's squash-and-replay relies on.

/// SplitMix64-style avalanche of a 64-bit value.
#[inline]
pub fn avalanche(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes a seed, an instruction index and a salt into a uniform 64-bit
/// value.
#[inline]
pub fn mix(seed: u64, index: u64, salt: u64) -> u64 {
    avalanche(seed ^ avalanche(index.wrapping_add(salt.wrapping_mul(0x2545_f491_4f6c_dd1d))))
}

/// A uniform `f64` in `[0, 1)` derived from `(seed, index, salt)`.
#[inline]
pub fn unit(seed: u64, index: u64, salt: u64) -> f64 {
    (mix(seed, index, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The number of uniform bits behind [`unit`]; samples live in
/// `[0, 2^53)`.
const SAMPLE_BITS: u32 = 53;
const SAMPLE_LIMIT: u64 = 1 << SAMPLE_BITS;

/// The closed-form inverse CDF on a raw 53-bit sample: the single
/// source of truth shared by [`geometric`] and [`GeometricTable`].
#[inline]
fn geometric_from_sample(sample: u64, mean: f64) -> u64 {
    let u = sample as f64 * (1.0 / SAMPLE_LIMIT as f64);
    // Inverse-CDF of a shifted exponential, giving mean ≈ `mean`.
    let v = 1.0 - (1.0 - u).ln() * (mean - 1.0);
    v.round().clamp(1.0, 256.0) as u64
}

/// A geometric-like positive integer with the given mean, derived from
/// `(seed, index, salt)` — used for dependency distances.
///
/// # Panics
///
/// Panics if `mean < 1.0`.
#[inline]
pub fn geometric(seed: u64, index: u64, salt: u64, mean: f64) -> u64 {
    assert!(mean >= 1.0, "geometric mean must be at least 1");
    geometric_from_sample(mix(seed, index, salt) >> 11, mean)
}

/// A precomputed inversion of [`geometric`] for one fixed mean.
///
/// The closed form is monotone nondecreasing in the 53-bit uniform
/// sample, so it is fully described by the 255 sample thresholds at
/// which the output steps from `k` to `k + 1`. [`GeometricTable::sample`]
/// recovers the output with a binary search over those thresholds —
/// bit-exact with the closed form for *every* possible sample (the
/// thresholds are found by binary search on the closed form itself),
/// replacing an `ln` per dependency draw with a few table probes.
#[derive(Clone)]
pub struct GeometricTable {
    /// `thresholds[k]` = smallest sample whose output is `>= k + 2`
    /// (`SAMPLE_LIMIT` when that output is never reached).
    thresholds: [u64; 255],
}

impl std::fmt::Debug for GeometricTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeometricTable").finish_non_exhaustive()
    }
}

impl GeometricTable {
    /// Builds the inversion table for `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean < 1.0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean >= 1.0, "geometric mean must be at least 1");
        let mut thresholds = [SAMPLE_LIMIT; 255];
        let top = geometric_from_sample(SAMPLE_LIMIT - 1, mean);
        for (k, slot) in thresholds.iter_mut().enumerate() {
            let target = k as u64 + 2;
            if top < target {
                // Larger outputs are never produced; the remaining
                // thresholds stay at the never-reached sentinel.
                break;
            }
            // First sample in [0, SAMPLE_LIMIT) whose output reaches
            // `target`; valid because the closed form is monotone.
            let (mut lo, mut hi) = (0u64, SAMPLE_LIMIT - 1);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if geometric_from_sample(mid, mean) >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            *slot = lo;
        }
        Self { thresholds }
    }

    /// The table-driven equivalent of [`geometric`]: pass the same
    /// [`mix`] value and get the identical draw.
    #[inline]
    pub fn sample(&self, mixed: u64) -> u64 {
        let sample = mixed >> 11;
        1 + self.thresholds.partition_point(|&t| t <= sample) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = unit(42, i, 7);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn geometric_mean_is_close() {
        for target in [1.0, 3.0, 8.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|i| geometric(9, i, 1, target)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - target).abs() < target * 0.15 + 0.2,
                "target {target} got {mean}"
            );
        }
    }

    #[test]
    fn geometric_is_at_least_one() {
        for i in 0..1_000 {
            assert!(geometric(1, i, 2, 1.5) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn tiny_mean_panics() {
        geometric(0, 0, 0, 0.5);
    }

    #[test]
    fn table_matches_closed_form_on_random_draws() {
        for mean in [1.0, 1.2, 2.0, 3.7, 8.0, 21.0, 300.0] {
            let table = GeometricTable::new(mean);
            for i in 0..50_000u64 {
                let m = mix(17, i, 5);
                assert_eq!(
                    table.sample(m),
                    geometric(17, i, 5, mean),
                    "mean {mean} index {i}"
                );
            }
        }
    }

    #[test]
    fn table_matches_closed_form_at_every_threshold_boundary() {
        // The strongest check: at each recorded step, the sample one
        // below and the threshold itself must reproduce the closed
        // form exactly — so the two agree on the entire sample domain,
        // not just on sampled points.
        for mean in [1.0, 1.5, 4.0, 21.0] {
            let table = GeometricTable::new(mean);
            for &t in &table.thresholds {
                for s in [t.saturating_sub(1), t] {
                    if s >= SAMPLE_LIMIT {
                        continue;
                    }
                    assert_eq!(
                        table.sample(s << 11),
                        geometric_from_sample(s, mean),
                        "mean {mean} sample {s}"
                    );
                }
            }
            // Domain endpoints.
            for s in [0, SAMPLE_LIMIT - 1] {
                assert_eq!(table.sample(s << 11), geometric_from_sample(s, mean));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn table_tiny_mean_panics() {
        let _ = GeometricTable::new(0.99);
    }
}
