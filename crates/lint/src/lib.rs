//! soe-lint: a workspace-aware static-analysis pass enforcing the
//! reproduction's simulator determinism and panic-safety invariants.
//!
//! The simulator's headline claim — bit-identical results for identical
//! `(config, seed)` regardless of parallelism, sharding or resume — is
//! only as strong as the code's discipline about three things:
//!
//! 1. **Determinism**: no unordered collections or wall-clock reads in
//!    code that feeds simulated state ([`rules`]: `unordered-collections`,
//!    `unordered-iteration`, `wall-clock`).
//! 2. **Panic safety**: a panic inside a sweep kills a worker and takes
//!    the whole run's wall-time with it; simulator and policy code must
//!    return typed errors (`panic-unwrap`, `panic-macro`, `slice-index`).
//! 3. **Artifact hygiene**: result files must be written atomically and
//!    every config knob must be validated before a sweep consumes it
//!    (`raw-fs-write`, `config-fields-validated`).
//!
//! Design constraints: std-only and registry-free (no syn/proc-macro2 —
//! the gate must build offline), a small hand-rolled lexer rather than a
//! full parser, inline `// soe-lint: allow(rule): reason` suppressions,
//! and a checked-in ratcheting baseline for grandfathered findings.
//!
//! See `LINTS.md` at the workspace root for the rule catalog.

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod suppress;

pub use baseline::Baseline;
pub use diag::{summarize, Finding, Severity, Summary, Waiver};
pub use engine::{analyze_source, analyze_workspace, analyze_workspace_filtered, Analysis};
pub use rules::{all_rules, Rule};
pub use source::SourceFile;
