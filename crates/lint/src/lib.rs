//! soe-lint: a workspace-aware static-analysis pass enforcing the
//! reproduction's simulator determinism and panic-safety invariants.
//!
//! The simulator's headline claim — bit-identical results for identical
//! `(config, seed)` regardless of parallelism, sharding or resume — is
//! only as strong as the code's discipline about three things:
//!
//! 1. **Determinism**: no unordered collections or wall-clock reads in
//!    code that feeds simulated state ([`rules`]: `unordered-collections`,
//!    `unordered-iteration`, `wall-clock`).
//! 2. **Panic safety**: a panic inside a sweep kills a worker and takes
//!    the whole run's wall-time with it; simulator and policy code must
//!    return typed errors (`panic-unwrap`, `panic-macro`, `slice-index`).
//! 3. **Artifact hygiene**: result files must be written atomically and
//!    every config knob must be validated before a sweep consumes it
//!    (`raw-fs-write`, `config-fields-validated`).
//!
//! On top of the per-file rules, a set of workspace [`passes`] analyzes
//! the cross-file structure: an [`items`] parser (built on the same
//! lexer) feeds a [`workspace`] symbol table and over-approximate call
//! graph, from which `panic-reachability` closes over the simulator hot
//! path, `determinism-taint` tracks nondeterminism sources into
//! serialization sinks, and `trace-schema-coverage` keeps every
//! exporter/validator match total over the trace/protocol enums.
//!
//! Design constraints: std-only and registry-free (no syn/proc-macro2 —
//! the gate must build offline), a small hand-rolled lexer rather than a
//! full parser, inline `// soe-lint: allow(rule): reason` suppressions,
//! and a checked-in ratcheting baseline for grandfathered findings.
//!
//! See `LINTS.md` at the workspace root for the rule catalog.

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod rules;
pub mod source;
pub mod suppress;
pub mod workspace;

pub use baseline::Baseline;
pub use diag::{summarize, Finding, Severity, Summary, TrailStep, Waiver};
pub use engine::{
    analyze_files, analyze_source, analyze_workspace, analyze_workspace_filtered, build_workspace,
    Analysis,
};
pub use passes::{all_passes, Pass, HOT_PATH_ROOTS, SCHEMA_ENUMS, SERIALIZATION_SINKS};
pub use rules::{all_rules, Rule};
pub use source::SourceFile;
pub use workspace::Workspace;
