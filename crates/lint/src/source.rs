//! The per-file analysis unit: tokens, comments, and the line ranges
//! that count as test code.

use crate::lexer::{lex, Comment, Token};

/// One lexed source file plus the context rules need to scope
/// themselves: where it lives in the workspace and which lines are test
/// code.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (stable across platforms
    /// for baselines and diagnostics).
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments, for suppression scanning.
    pub comments: Vec<Comment>,
    /// Inclusive line ranges of `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
    /// Whether the whole file is test/dev code (under `tests/`,
    /// `examples/` or `benches/`).
    whole_file_test: bool,
}

impl SourceFile {
    /// Lexes `src` as the file at workspace-relative `path`.
    pub fn parse(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let whole_file_test = {
            let mut parts = path.split('/');
            // `tests/…` at the workspace root, or `crates/x/tests/…`,
            // `crates/x/examples/…`, `crates/x/benches/…`.
            let top = parts.next().unwrap_or("");
            matches!(top, "tests" | "examples" | "benches")
                || path
                    .split('/')
                    .any(|p| p == "tests" || p == "examples" || p == "benches")
        };
        Self {
            path: path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_ranges,
            whole_file_test,
        }
    }

    /// Whether `line` is inside test code (a `#[cfg(test)]` item or a
    /// file that is test-only as a whole).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.whole_file_test
            || self
                .test_ranges
                .iter()
                .any(|(a, b)| (*a..=*b).contains(&line))
    }

    /// Whether the file's path starts with any of `prefixes`.
    pub fn under_any(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p))
    }
}

/// Finds the inclusive line ranges of items annotated `#[cfg(test)]`.
///
/// Strategy: find the attribute token sequence `# [ cfg ( test ) ]`,
/// skip any further attributes, then consume the annotated item — up to
/// its matching close brace (for `mod`/`fn`/`impl` bodies) or a `;`
/// (for braceless items like `use`), whichever comes first.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start_line = tokens[i].line;
            let mut j = i + 7; // past `# [ cfg ( test ) ]`
                               // Skip any further attributes (`#[test]`, `#[should_panic]`…).
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            // Consume the item: to `;` at depth 0 or through `{…}`.
            let mut depth = 0usize;
            let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
            while j < tokens.len() {
                let t = &tokens[j];
                end_line = t.line;
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    // A stray close brace (attribute on a statement at
                    // the end of a block) also ends the item.
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            ranges.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Whether the tokens at `i` spell `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let at = |k: usize| tokens.get(i + k);
    at(0).is_some_and(|t| t.is_punct('#'))
        && at(1).is_some_and(|t| t.is_punct('['))
        && at(2).is_some_and(|t| t.is_ident("cfg"))
        && at(3).is_some_and(|t| t.is_punct('('))
        && at(4).is_some_and(|t| t.is_ident("test"))
        && at(5).is_some_and(|t| t.is_punct(')'))
        && at(6).is_some_and(|t| t.is_punct(']'))
}

/// Advances past one attribute starting at the `#` at `i`, returning
/// the index after its closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_range_is_detected() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("crates/sim/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3), "the attribute line itself");
        assert!(f.is_test_line(6), "inside the module");
        assert!(f.is_test_line(7), "closing brace");
        assert!(!f.is_test_line(8));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn live() {}\n";
        let f = SourceFile::parse("crates/sim/src/x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn tests_dir_is_whole_file_test() {
        let f = SourceFile::parse("tests/determinism.rs", "fn x() {}");
        assert!(f.is_test_line(1));
        let g = SourceFile::parse("crates/sim/tests/integration.rs", "fn x() {}");
        assert!(g.is_test_line(1));
        let h = SourceFile::parse("crates/sim/src/core.rs", "fn x() {}");
        assert!(!h.is_test_line(1));
    }

    #[test]
    fn nested_braces_inside_test_mod_do_not_truncate_the_range() {
        let src = "#[cfg(test)]\nmod tests {\n    fn a() { if x { y(); } }\n    fn b() {}\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/sim/src/x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }
}
