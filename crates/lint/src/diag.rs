//! Findings and diagnostic output (human-readable and JSON).

use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the run — heuristic rules whose
    /// false-positive rate is inherently nonzero.
    Warning,
    /// Fails the run (unless suppressed or baselined).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Why a finding is not counted against the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiver {
    /// Counted: nothing waives it.
    None,
    /// An inline `// soe-lint: allow(rule)` comment covers it.
    Suppressed,
    /// The checked-in baseline grandfathers it.
    Baselined,
}

/// One step of a multi-location trail (a call path or taint flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrailStep {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What happens at this step (`Machine::step calls issue`, …).
    pub note: String,
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule id (e.g. `panic-unwrap`).
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Whether (and why) the finding is waived.
    pub waiver: Waiver,
    /// Supporting locations: for workspace passes, the call path from a
    /// root to the site (or the source→sink flow). Empty for per-file
    /// rules.
    pub trail: Vec<TrailStep>,
}

impl Finding {
    /// Whether this finding should fail the run.
    pub fn counts_as_error(&self) -> bool {
        self.severity == Severity::Error && self.waiver == Waiver::None
    }
}

/// Aggregate counts over a run's findings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Unwaived errors (nonzero fails the run).
    pub errors: usize,
    /// Unwaived warnings.
    pub warnings: usize,
    /// Findings waived by inline suppressions.
    pub suppressed: usize,
    /// Findings waived by the baseline file.
    pub baselined: usize,
    /// Files scanned.
    pub files: usize,
}

/// Computes the summary for `findings` over `files` scanned files.
pub fn summarize(findings: &[Finding], files: usize) -> Summary {
    let mut s = Summary {
        files,
        ..Summary::default()
    };
    for f in findings {
        match f.waiver {
            Waiver::Suppressed => s.suppressed += 1,
            Waiver::Baselined => s.baselined += 1,
            Waiver::None => match f.severity {
                Severity::Error => s.errors += 1,
                Severity::Warning => s.warnings += 1,
            },
        }
    }
    s
}

/// Renders findings for a terminal. Waived findings are shown only with
/// `verbose`.
pub fn render_text(findings: &[Finding], summary: Summary, verbose: bool) -> String {
    let mut out = String::new();
    for f in findings {
        let tag = match f.waiver {
            Waiver::None => f.severity.to_string(),
            Waiver::Suppressed => "allowed".to_string(),
            Waiver::Baselined => "baselined".to_string(),
        };
        if f.waiver != Waiver::None && !verbose {
            continue;
        }
        out.push_str(&format!(
            "{}:{}: {tag}[{}]: {}\n",
            f.file, f.line, f.rule, f.message
        ));
        for step in &f.trail {
            out.push_str(&format!(
                "    path: {}:{}: {}\n",
                step.file, step.line, step.note
            ));
        }
        out.push_str(&format!("    fix: {}\n", f.hint));
    }
    out.push_str(&format!(
        "soe-lint: {} file(s): {} error(s), {} warning(s), {} suppressed, {} baselined\n",
        summary.files, summary.errors, summary.warnings, summary.suppressed, summary.baselined
    ));
    out
}

/// Renders findings as a single JSON document (machine-readable CI
/// output). Hand-rolled: the lint gate stays dependency-free.
pub fn render_json(findings: &[Finding], summary: Summary) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut path = String::from("[");
        for (j, step) in f.trail.iter().enumerate() {
            if j > 0 {
                path.push_str(", ");
            }
            path.push_str(&format!(
                "{{\"file\": {}, \"line\": {}, \"note\": {}}}",
                json_str(&step.file),
                step.line,
                json_str(&step.note)
            ));
        }
        path.push(']');
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \
             \"message\": {}, \"hint\": {}, \"waiver\": {}, \"path\": {path}}}",
            json_str(f.rule),
            json_str(&f.severity.to_string()),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(f.hint),
            json_str(match f.waiver {
                Waiver::None => "none",
                Waiver::Suppressed => "suppressed",
                Waiver::Baselined => "baselined",
            }),
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"files\": {}, \"errors\": {}, \"warnings\": {}, \
         \"suppressed\": {}, \"baselined\": {}}}\n}}\n",
        summary.files, summary.errors, summary.warnings, summary.suppressed, summary.baselined
    ));
    out
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, waiver: Waiver, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "a \"quoted\" message".into(),
            hint: "do the thing",
            waiver,
            trail: Vec::new(),
        }
    }

    #[test]
    fn summary_buckets_by_waiver_and_severity() {
        let fs = vec![
            finding("a", Waiver::None, Severity::Error),
            finding("b", Waiver::None, Severity::Warning),
            finding("c", Waiver::Suppressed, Severity::Error),
            finding("d", Waiver::Baselined, Severity::Error),
        ];
        let s = summarize(&fs, 7);
        assert_eq!(
            (s.errors, s.warnings, s.suppressed, s.baselined, s.files),
            (1, 1, 1, 1, 7)
        );
    }

    #[test]
    fn json_output_escapes_and_parses_shape() {
        let fs = vec![finding("a", Waiver::None, Severity::Error)];
        let json = render_json(&fs, summarize(&fs, 1));
        assert!(json.contains(r#"\"quoted\""#));
        assert!(json.contains("\"errors\": 1"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn trails_render_in_text_and_json() {
        let mut f = finding("panic-reachability", Waiver::None, Severity::Error);
        f.trail = vec![
            TrailStep {
                file: "crates/sim/src/core.rs".into(),
                line: 701,
                note: "Machine::step calls drain".into(),
            },
            TrailStep {
                file: "crates/stats/src/lib.rs".into(),
                line: 12,
                note: "drain panics via .unwrap()".into(),
            },
        ];
        let s = summarize(&[f.clone()], 1);
        let text = render_text(&[f.clone()], s, false);
        assert!(text.contains("    path: crates/sim/src/core.rs:701: Machine::step calls drain"));
        assert!(text.contains("    path: crates/stats/src/lib.rs:12:"));
        let json = render_json(&[f], s);
        assert!(json.contains("\"path\": [{\"file\": \"crates/sim/src/core.rs\", \"line\": 701"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_output_hides_waived_unless_verbose() {
        let fs = vec![
            finding("a", Waiver::None, Severity::Error),
            finding("b", Waiver::Suppressed, Severity::Error),
        ];
        let s = summarize(&fs, 1);
        let quiet = render_text(&fs, s, false);
        assert!(quiet.contains("error[a]"));
        assert!(!quiet.contains("allowed[b]"));
        let loud = render_text(&fs, s, true);
        assert!(loud.contains("allowed[b]"));
    }
}
