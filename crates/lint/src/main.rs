//! CLI for soe-lint.
//!
//! ```text
//! cargo run -p soe-lint                     # lint the workspace, text output
//! cargo run -p soe-lint -- --format json    # machine-readable (CI)
//! cargo run -p soe-lint -- --update-baseline
//! cargo run -p soe-lint -- --list-rules
//! cargo run -p soe-lint -- --explain panic-reachability
//! cargo run -p soe-lint -- --graph Machine::step
//! ```
//!
//! Exit codes: 0 clean, 1 unwaived errors, 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use soe_lint::baseline::Baseline;
use soe_lint::diag::{render_json, render_text, summarize};
use soe_lint::engine::{analyze_workspace_filtered, build_workspace, rule_exists};
use soe_lint::passes::all_passes;
use soe_lint::rules::all_rules;

const USAGE: &str = "\
soe-lint: enforce simulator determinism and panic-safety invariants

USAGE: soe-lint [OPTIONS]

OPTIONS:
  --root <DIR>        workspace root (default: autodetected from the
                      lint crate's location, else the current directory)
  --baseline <PATH>   baseline file (default: <root>/lint-baseline.txt)
  --update-baseline   rewrite the baseline from current findings and exit
  --format <F>        text | json (default: text)
  --rule <ID>         run only the named rule or pass
  --list-rules        print the rule catalog and exit
  --explain <ID>      print the LINTS.md rationale for a rule and exit
  --graph <SYMBOL>    dump the call-graph neighborhood of a symbol
                      (`name` or `Type::name`) and exit
  --verbose           also show suppressed/baselined findings
  --help              this message
";

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    format: Format,
    rule: Option<String>,
    list_rules: bool,
    explain: Option<String>,
    graph: Option<String>,
    verbose: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        update_baseline: false,
        format: Format::Text,
        rule: None,
        list_rules: false,
        explain: None,
        graph: None,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a value")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--rule" => {
                let v = it.next().ok_or("--rule needs a value")?;
                if !rule_exists(v) {
                    return Err(format!("unknown rule `{v}` (try --list-rules)"));
                }
                opts.rule = Some(v.clone());
            }
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule id")?;
                if !rule_exists(v) {
                    return Err(format!("unknown rule `{v}` (try --list-rules)"));
                }
                opts.explain = Some(v.clone());
            }
            "--graph" => {
                let v = it.next().ok_or("--graph needs a symbol")?;
                opts.graph = Some(v.clone());
            }
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Writes to stdout, swallowing errors: piping into `head` closes the
/// pipe early, and a lint tool that panics on that would fail its own
/// panic-safety standards.
fn emit(s: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

/// Autodetects the workspace root: the directory two levels above this
/// crate's manifest (crates/lint -> workspace), falling back to the
/// current directory when the binary is run standalone.
fn detect_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .filter(|p| p.join("Cargo.toml").is_file())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Extracts the rationale paragraph for `id` from LINTS.md: the
/// `- **\`id\`** — …` bullet, through any indented continuation lines.
fn explain_from_lints_md(text: &str, id: &str) -> Option<String> {
    let marker = format!("- **`{id}`**");
    let mut out = String::new();
    let mut in_entry = false;
    for line in text.lines() {
        if line.trim_start().starts_with(&marker) {
            in_entry = true;
            out.push_str(line.trim_start());
            out.push('\n');
            continue;
        }
        if in_entry {
            // Continuation: indented, or blank inside the bullet.
            let is_continuation = line.starts_with("  ") && !line.trim_start().starts_with("- **");
            if is_continuation {
                out.push_str(line.trim_start());
                out.push('\n');
            } else if line.trim().is_empty() && out.ends_with("\n\n") {
                break;
            } else if line.trim().is_empty() {
                out.push('\n');
            } else {
                break;
            }
        }
    }
    if out.trim().is_empty() {
        None
    } else {
        Some(out.trim_end().to_string() + "\n")
    }
}

fn run_explain(root: &std::path::Path, id: &str) -> ExitCode {
    let lints_path = root.join("LINTS.md");
    let text = match std::fs::read_to_string(&lints_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("soe-lint: cannot read {}: {e}", lints_path.display());
            return ExitCode::from(2);
        }
    };
    match explain_from_lints_md(&text, id) {
        Some(rationale) => {
            emit(&rationale);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "soe-lint: `{id}` has no entry in {} — every rule must be documented there",
                lints_path.display()
            );
            ExitCode::from(2)
        }
    }
}

fn run_graph(root: &std::path::Path, symbol: &str) -> ExitCode {
    let ws = match build_workspace(root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("soe-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let hits = ws.lookup(symbol);
    if hits.is_empty() {
        eprintln!("soe-lint: `{symbol}` does not resolve to any workspace function");
        return ExitCode::from(1);
    }
    use std::fmt::Write as _;
    let mut out = String::new();
    for idx in hits {
        let node = &ws.fns[idx];
        let _ = writeln!(
            out,
            "{} ({}:{})",
            node.item.qualified(),
            ws.path_of(idx),
            node.item.line
        );
        let _ = writeln!(out, "  callers ({}):", ws.callers[idx].len());
        for e in &ws.callers[idx] {
            let _ = writeln!(
                out,
                "    {} ({}:{})",
                ws.fns[e.to].item.qualified(),
                ws.path_of(e.to),
                e.line
            );
        }
        let _ = writeln!(out, "  callees ({}):", ws.callees[idx].len());
        for e in &ws.callees[idx] {
            let _ = writeln!(
                out,
                "    {} ({}:{}, call at line {})",
                ws.fns[e.to].item.qualified(),
                ws.path_of(e.to),
                ws.fns[e.to].item.line,
                e.line
            );
        }
    }
    emit(&out);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("soe-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in all_rules() {
            let scope = if r.scope.is_empty() {
                "workspace".to_string()
            } else {
                r.scope.join(", ")
            };
            let tests = if r.applies_in_tests {
                "incl. tests"
            } else {
                "non-test"
            };
            println!(
                "{:<26} {:<12} {:<8} [{scope}; {tests}]",
                r.id,
                r.category,
                r.severity.to_string()
            );
            println!(
                "    {}",
                r.description
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        for p in all_passes() {
            println!(
                "{:<26} {:<12} {:<8} [workspace pass; non-test]",
                p.id,
                p.category,
                p.severity.to_string()
            );
            println!(
                "    {}",
                p.description
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = opts.root.unwrap_or_else(detect_root);

    if let Some(id) = &opts.explain {
        return run_explain(&root, id);
    }
    if let Some(symbol) = &opts.graph {
        return run_graph(&root, symbol);
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let baseline = if opts.update_baseline {
        Baseline::default() // regenerate from scratch: old waivers don't carry over
    } else if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "soe-lint: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("soe-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let analysis = match analyze_workspace_filtered(&root, &baseline, opts.rule.as_deref()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soe-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let errors: Vec<_> = analysis
            .findings
            .iter()
            .filter(|f| f.counts_as_error())
            .cloned()
            .collect();
        let text = Baseline::regenerate(&errors);
        // soe-lint: allow(raw-fs-write): the baseline is a dev-time artifact regenerated on demand, not a results file
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("soe-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "soe-lint: baseline {} rewritten ({} grandfathered finding(s))",
            baseline_path.display(),
            errors.len()
        );
        return ExitCode::SUCCESS;
    }

    let summary = summarize(&analysis.findings, analysis.files);
    match opts.format {
        Format::Text => {
            print!("{}", render_text(&analysis.findings, summary, opts.verbose));
            for (rule, file) in &analysis.missing_baseline_files {
                eprintln!(
                    "soe-lint: baseline names a file that no longer exists: {rule} {file} — regenerate with --update-baseline"
                );
            }
            for (rule, file, count) in &analysis.stale_baseline {
                if analysis
                    .missing_baseline_files
                    .iter()
                    .any(|(r, f)| r == rule && f == file)
                {
                    continue; // already reported with the sharper message
                }
                eprintln!("soe-lint: stale baseline entry: {rule} {file} ({count} unused) — regenerate with --update-baseline");
            }
        }
        Format::Json => print!("{}", render_json(&analysis.findings, summary)),
    }

    if analysis.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
