//! CLI for soe-lint.
//!
//! ```text
//! cargo run -p soe-lint                     # lint the workspace, text output
//! cargo run -p soe-lint -- --format json    # machine-readable (CI)
//! cargo run -p soe-lint -- --update-baseline
//! cargo run -p soe-lint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 unwaived errors, 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use soe_lint::baseline::Baseline;
use soe_lint::diag::{render_json, render_text, summarize};
use soe_lint::engine::{analyze_workspace_filtered, rule_exists};
use soe_lint::rules::all_rules;

const USAGE: &str = "\
soe-lint: enforce simulator determinism and panic-safety invariants

USAGE: soe-lint [OPTIONS]

OPTIONS:
  --root <DIR>        workspace root (default: autodetected from the
                      lint crate's location, else the current directory)
  --baseline <PATH>   baseline file (default: <root>/lint-baseline.txt)
  --update-baseline   rewrite the baseline from current findings and exit
  --format <F>        text | json (default: text)
  --rule <ID>         run only the named rule
  --list-rules        print the rule catalog and exit
  --verbose           also show suppressed/baselined findings
  --help              this message
";

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    format: Format,
    rule: Option<String>,
    list_rules: bool,
    verbose: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        update_baseline: false,
        format: Format::Text,
        rule: None,
        list_rules: false,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a value")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--rule" => {
                let v = it.next().ok_or("--rule needs a value")?;
                if !rule_exists(v) {
                    return Err(format!("unknown rule `{v}` (try --list-rules)"));
                }
                opts.rule = Some(v.clone());
            }
            "--list-rules" => opts.list_rules = true,
            "--verbose" => opts.verbose = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Autodetects the workspace root: the directory two levels above this
/// crate's manifest (crates/lint -> workspace), falling back to the
/// current directory when the binary is run standalone.
fn detect_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .filter(|p| p.join("Cargo.toml").is_file())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("soe-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in all_rules() {
            let scope = if r.scope.is_empty() {
                "workspace".to_string()
            } else {
                r.scope.join(", ")
            };
            let tests = if r.applies_in_tests {
                "incl. tests"
            } else {
                "non-test"
            };
            println!(
                "{:<26} {:<12} {:<8} [{scope}; {tests}]",
                r.id,
                r.category,
                r.severity.to_string()
            );
            println!(
                "    {}",
                r.description
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = opts.root.unwrap_or_else(detect_root);
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let baseline = if opts.update_baseline {
        Baseline::default() // regenerate from scratch: old waivers don't carry over
    } else if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "soe-lint: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("soe-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let analysis = match analyze_workspace_filtered(&root, &baseline, opts.rule.as_deref()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soe-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let errors: Vec<_> = analysis
            .findings
            .iter()
            .filter(|f| f.counts_as_error())
            .cloned()
            .collect();
        let text = Baseline::regenerate(&errors);
        // soe-lint: allow(raw-fs-write): the baseline is a dev-time artifact regenerated on demand, not a results file
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("soe-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "soe-lint: baseline {} rewritten ({} grandfathered finding(s))",
            baseline_path.display(),
            errors.len()
        );
        return ExitCode::SUCCESS;
    }

    let summary = summarize(&analysis.findings, analysis.files);
    match opts.format {
        Format::Text => {
            print!("{}", render_text(&analysis.findings, summary, opts.verbose));
            for (rule, file, count) in &analysis.stale_baseline {
                eprintln!("soe-lint: stale baseline entry: {rule} {file} ({count} unused) — regenerate with --update-baseline");
            }
        }
        Format::Json => print!("{}", render_json(&analysis.findings, summary)),
    }

    if analysis.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
