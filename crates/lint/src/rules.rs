//! The rule set.
//!
//! Every rule is a pure function over one [`SourceFile`]'s token stream;
//! the engine handles suppressions, the baseline and aggregation. Rules
//! are scoped by path (the determinism and panic-safety invariants only
//! bind the simulator and enforcement-engine crates) and most exempt
//! test code, where panics are the assertion mechanism and wall-clock
//! time is what is being measured.

use crate::diag::{Finding, Severity, Waiver};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Path prefixes of the crates whose code must be deterministic and
/// panic-free: the cycle-level simulator and the fairness/supervision
/// engine. (`crates/bench` drives experiments but does not execute
/// inside the simulated machine; `crates/model`/`stats`/`workloads` are
/// pure functions whose panics cannot take a sweep down mid-run because
/// they run before jobs are spawned.)
const SIM_CORE: &[&str] = &["crates/sim/src/", "crates/core/src/"];

/// Descriptor + implementation of one rule.
pub struct Rule {
    /// Stable id, used in suppressions and the baseline.
    pub id: &'static str,
    /// Rule category (`determinism`, `panic-safety`, `hygiene`).
    pub category: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line description (for `--list-rules` and LINTS.md parity).
    pub description: &'static str,
    /// Whether the rule also applies inside test code.
    pub applies_in_tests: bool,
    /// Path prefixes the rule is scoped to (empty = whole workspace).
    pub scope: &'static [&'static str],
    check: fn(&SourceFile, &Rule) -> Vec<Finding>,
}

impl Rule {
    /// Runs the rule over `file`, already filtered to its scope and
    /// (unless `applies_in_tests`) to non-test lines.
    pub fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !self.scope.is_empty() && !file.under_any(self.scope) {
            return Vec::new();
        }
        let mut findings = (self.check)(file, self);
        if !self.applies_in_tests {
            findings.retain(|f| !file.is_test_line(f.line));
        }
        findings
    }

    fn finding(
        &self,
        file: &SourceFile,
        line: u32,
        message: String,
        hint: &'static str,
    ) -> Finding {
        Finding {
            rule: self.id,
            severity: self.severity,
            file: file.path.clone(),
            line,
            message,
            hint,
            waiver: Waiver::None,
            trail: Vec::new(),
        }
    }
}

/// The full rule set, in stable order.
pub fn all_rules() -> Vec<Rule> {
    vec![
        Rule {
            id: "unordered-collections",
            category: "determinism",
            severity: Severity::Error,
            description: "no HashMap/HashSet in simulator or policy code: their \
                          iteration order varies run-to-run and breaks bit-determinism",
            applies_in_tests: false,
            scope: SIM_CORE,
            check: check_unordered_collections,
        },
        Rule {
            id: "wall-clock",
            category: "determinism",
            severity: Severity::Error,
            description: "no Instant::now/SystemTime in simulator or policy code: \
                          wall-clock reads make cycle-level results host-dependent",
            applies_in_tests: false,
            scope: SIM_CORE,
            check: check_wall_clock,
        },
        Rule {
            id: "panic-unwrap",
            category: "panic-safety",
            severity: Severity::Error,
            description: "no .unwrap()/.expect() in non-test simulator or policy code: \
                          a panic mid-sweep costs the whole worker, not one job",
            applies_in_tests: false,
            scope: SIM_CORE,
            check: check_panic_unwrap,
        },
        Rule {
            id: "panic-macro",
            category: "panic-safety",
            severity: Severity::Error,
            description: "no panic!/unreachable!/todo!/unimplemented! in non-test \
                          simulator or policy code",
            applies_in_tests: false,
            scope: SIM_CORE,
            check: check_panic_macro,
        },
        Rule {
            id: "slice-index",
            category: "panic-safety",
            severity: Severity::Error,
            description: "no bracket indexing in non-test simulator or policy code: \
                          out-of-bounds indexes panic; prefer get()/typed errors or a \
                          justified allow at a bounds-guaranteed funnel",
            applies_in_tests: false,
            scope: SIM_CORE,
            check: check_slice_index,
        },
        Rule {
            id: "raw-fs-write",
            category: "hygiene",
            severity: Severity::Error,
            description: "no bare std::fs::write anywhere: artifacts must go through \
                          atomic_write so a crash never leaves a half-written file",
            applies_in_tests: true,
            scope: &[],
            check: check_raw_fs_write,
        },
        Rule {
            id: "config-fields-validated",
            category: "hygiene",
            severity: Severity::Error,
            description: "every field of a *Config struct with a check() method must be \
                          mentioned in that check(): new knobs must be validated (or \
                          explicitly acknowledged) before sweeps consume them",
            applies_in_tests: true,
            scope: &[],
            check: check_config_fields_validated,
        },
        Rule {
            id: "request-fields-validated",
            category: "hygiene",
            severity: Severity::Error,
            description: "every *Request/*Scenario struct in the service layer must \
                          have a check() that mentions every field: request fields \
                          cross a trust boundary and must be validated (or explicitly \
                          acknowledged) before the scheduler consumes them",
            applies_in_tests: true,
            scope: &["crates/core/src/serve/"],
            check: check_request_fields_validated,
        },
    ]
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

fn check_unordered_collections(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in &file.tokens {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(rule.finding(
                file,
                t.line,
                format!("`{}` in simulator/policy code", t.text),
                "use BTreeMap/BTreeSet (deterministic order) or an index-ordered Vec",
            ));
        }
    }
    out
}

fn check_wall_clock(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push(rule.finding(
                file,
                t.line,
                "`SystemTime` in simulator/policy code".into(),
                "derive anything time-like from the simulated cycle counter or a seed",
            ));
        }
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            out.push(rule.finding(
                file,
                t.line,
                "`Instant::now()` in simulator/policy code".into(),
                "wall-clock reads are only legitimate for watchdogs/progress; \
                 suppress with a justification if this is one",
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// panic-safety
// ---------------------------------------------------------------------------

fn check_panic_unwrap(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            out.push(rule.finding(
                file,
                t.line,
                format!("`.{}()` in simulator/policy code", t.text),
                "return a typed error (SimError / io::Error), use unwrap_or/match, \
                 or suppress with an invariant justification",
            ));
        }
    }
    out
}

fn check_panic_macro(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(rule.finding(
                file,
                t.line,
                format!("`{}!` in simulator/policy code", t.text),
                "return a typed error, or suppress if this is a documented \
                 panicking API wrapper around a try_ variant",
            ));
        }
    }
    out
}

fn check_slice_index(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    // Keywords that can precede a `[` that is a type or a fresh
    // expression (`&mut [Line]`, `return [0; 4]`), never an indexing
    // base.
    const NON_VALUE_KEYWORDS: &[&str] = &[
        "mut", "dyn", "in", "as", "return", "break", "continue", "else", "match", "impl", "ref",
        "move", "box", "where", "const", "static", "let", "fn", "pub", "use", "crate", "struct",
        "enum", "type", "trait", "unsafe", "extern", "if", "while", "for", "loop",
    ];
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        // An index expression follows a place/value: `ident[`, `)[`,
        // `][`. Array types/literals and attributes follow punctuation
        // (`: [u8; 4]`, `#[derive]`, `= [1, 2]`) and never match.
        let indexes_value = (prev.kind == TokenKind::Ident
            && !NON_VALUE_KEYWORDS.contains(&prev.text.as_str()))
            || prev.is_punct(')')
            || prev.is_punct(']');
        if !indexes_value {
            continue;
        }
        // `#[attr]` and `#![attr]`: `[` directly after `#` or `#!`.
        if prev.kind == TokenKind::Ident && i >= 2 && tokens[i - 2].is_punct('#') {
            continue;
        }
        // Macro invocation brackets: `vec![…]`, `matches![…]`.
        if prev.is_punct(']') && i >= 2 && tokens[i - 2].is_punct('!') {
            continue;
        }
        let subject = if prev.kind == TokenKind::Ident {
            format!("`{}[…]`", prev.text)
        } else {
            "`…[…]`".to_string()
        };
        out.push(rule.finding(
            file,
            t.line,
            format!("{subject} indexing in simulator/policy code can panic"),
            "use .get()/.get_mut() with a typed error, or funnel through one \
             bounds-guaranteed helper carrying an allow + invariant comment",
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// hygiene
// ---------------------------------------------------------------------------

fn check_raw_fs_write(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        // `fs :: write (` — with or without a `std ::` prefix; `use`
        // imports don't call it and are not flagged (no open paren).
        if t.is_ident("fs")
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|a| a.is_ident("write"))
            && tokens.get(i + 4).is_some_and(|a| a.is_punct('('))
        {
            out.push(rule.finding(
                file,
                t.line,
                "bare `std::fs::write` (non-atomic: a crash can leave a torn file)".into(),
                "use soe_core::atomic_write (temp file + sync + rename), or suppress \
                 when a test deliberately fabricates a corrupt/torn artifact",
            ));
        }
    }
    out
}

/// Collects `(struct_name, line, fields)` for every named struct whose
/// name ends with one of `suffixes`.
fn structs_with_suffix(tokens: &[Token], suffixes: &[&str]) -> Vec<(String, u32, Vec<String>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("struct")
            && tokens.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && suffixes.iter().any(|s| n.text.ends_with(s))
            })
            && tokens.get(i + 2).is_some_and(|b| b.is_punct('{'))
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i + 1].line;
            let mut fields = Vec::new();
            let mut j = i + 3;
            let mut depth = 1i32; // inside the struct body
            let mut expect_field = true;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    depth -= 1;
                } else if depth == 1 {
                    if expect_field
                        && t.kind == TokenKind::Ident
                        && t.text != "pub"
                        && tokens.get(j + 1).is_some_and(|c| c.is_punct(':'))
                    {
                        fields.push(t.text.clone());
                        expect_field = false;
                    } else if t.is_punct(',') {
                        expect_field = true;
                    }
                }
                j += 1;
            }
            out.push((name, line, fields));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Finds the token range of `fn check` inside `impl <name>`, if any.
fn check_fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            // `impl Name {` (skip generics; reject `impl Trait for Name`).
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("for") {
                    break;
                }
                j += 1;
            }
            let is_inherent = tokens.get(j).is_some_and(|t| t.is_punct('{'))
                && tokens[i + 1..j].iter().any(|t| t.is_ident(name));
            if is_inherent {
                // Scan the impl body for `fn check`.
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < tokens.len() && depth > 0 {
                    let t = &tokens[k];
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 1
                        && t.is_ident("fn")
                        && tokens.get(k + 1).is_some_and(|n| n.is_ident("check"))
                    {
                        // Body: from the fn's `{` to its matching `}`.
                        let mut b = k + 2;
                        while b < tokens.len() && !tokens[b].is_punct('{') {
                            b += 1;
                        }
                        let start = b + 1;
                        let mut bd = 1i32;
                        let mut e = start;
                        while e < tokens.len() && bd > 0 {
                            if tokens[e].is_punct('{') {
                                bd += 1;
                            } else if tokens[e].is_punct('}') {
                                bd -= 1;
                            }
                            e += 1;
                        }
                        return Some((start, e));
                    }
                    k += 1;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    None
}

fn check_config_fields_validated(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (name, line, fields) in structs_with_suffix(tokens, &["Config"]) {
        let Some((start, end)) = check_fn_body(tokens, &name) else {
            continue; // no check() — the struct opted out of validation
        };
        push_unmentioned_fields(
            file,
            rule,
            &name,
            line,
            &fields,
            &tokens[start..end],
            &mut out,
        );
    }
    out
}

fn check_request_fields_validated(file: &SourceFile, rule: &Rule) -> Vec<Finding> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    for (name, line, fields) in structs_with_suffix(tokens, &["Request", "Scenario"]) {
        let Some((start, end)) = check_fn_body(tokens, &name) else {
            // Unlike *Config, wire-facing types may NOT opt out:
            // unvalidated request fields reach the scheduler.
            out.push(rule.finding(
                file,
                line,
                format!("{name} has no check() method"),
                "requests cross a trust boundary: add a check() that validates \
                 (or explicitly acknowledges) every field before the service \
                 consumes it",
            ));
            continue;
        };
        push_unmentioned_fields(
            file,
            rule,
            &name,
            line,
            &fields,
            &tokens[start..end],
            &mut out,
        );
    }
    out
}

/// Shared tail of the fields-validated rules: report every field of
/// `name` that its check() body never mentions as an identifier.
fn push_unmentioned_fields(
    file: &SourceFile,
    rule: &Rule,
    name: &str,
    line: u32,
    fields: &[String],
    body: &[Token],
    out: &mut Vec<Finding>,
) {
    let missing: Vec<&str> = fields
        .iter()
        .filter(|f| {
            !body
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == **f)
        })
        .map(String::as_str)
        .collect();
    if !missing.is_empty() {
        out.push(rule.finding(
            file,
            line,
            format!(
                "{name}::check() never mentions field(s): {}",
                missing.join(", ")
            ),
            "validate the field in check(), or acknowledge it there explicitly \
             (e.g. `let _ = (self.flag, …); // no invariant`)",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(id: &str, path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let rules = all_rules();
        let rule = rules.iter().find(|r| r.id == id).expect("rule exists");
        rule.check(&file)
    }

    const SIM: &str = "crates/sim/src/mem/x.rs";

    #[test]
    fn unordered_collections_positive_and_negative() {
        assert_eq!(
            run_rule(
                "unordered-collections",
                SIM,
                "use std::collections::HashMap;"
            )
            .len(),
            1
        );
        assert_eq!(
            run_rule(
                "unordered-collections",
                SIM,
                "struct S { m: std::collections::HashSet<u64> }"
            )
            .len(),
            1
        );
        assert!(run_rule(
            "unordered-collections",
            SIM,
            "use std::collections::BTreeMap;"
        )
        .is_empty());
        // Out of scope: other crates may use hash containers.
        assert!(run_rule(
            "unordered-collections",
            "crates/stats/src/x.rs",
            "use std::collections::HashMap;"
        )
        .is_empty());
        // Test code is exempt.
        assert!(run_rule(
            "unordered-collections",
            SIM,
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }"
        )
        .is_empty());
    }

    #[test]
    fn wall_clock_flags_now_but_not_duration() {
        assert_eq!(
            run_rule("wall-clock", SIM, "fn f() { let t = Instant::now(); }").len(),
            1
        );
        assert_eq!(
            run_rule("wall-clock", SIM, "fn f() { let t = SystemTime::now(); }").len(),
            1
        );
        assert!(run_rule("wall-clock", SIM, "fn f(d: Duration) { }").is_empty());
        assert!(
            run_rule("wall-clock", SIM, "fn f(started: Instant) { }").is_empty(),
            "storing is not reading"
        );
    }

    #[test]
    fn panic_unwrap_positive_and_negative() {
        assert_eq!(
            run_rule("panic-unwrap", SIM, "fn f() { x.unwrap(); }").len(),
            1
        );
        assert_eq!(
            run_rule("panic-unwrap", SIM, "fn f() { x.expect(\"m\"); }").len(),
            1
        );
        assert!(run_rule("panic-unwrap", SIM, "fn f() { x.unwrap_or(0); }").is_empty());
        assert!(run_rule("panic-unwrap", SIM, "fn f() { x.unwrap_or_else(|| 0); }").is_empty());
        // Strings and docs never trigger.
        assert!(run_rule("panic-unwrap", SIM, "fn f() { let s = \".unwrap()\"; }").is_empty());
        assert!(run_rule("panic-unwrap", SIM, "/// call .unwrap() freely\nfn f() {}").is_empty());
    }

    #[test]
    fn panic_macro_positive_and_negative() {
        assert_eq!(
            run_rule("panic-macro", SIM, "fn f() { panic!(\"boom\"); }").len(),
            1
        );
        assert_eq!(
            run_rule("panic-macro", SIM, "fn f() { unreachable!(); }").len(),
            1
        );
        assert!(
            run_rule("panic-macro", SIM, "fn f() { assert!(x > 0); }").is_empty(),
            "asserts are invariants"
        );
        assert!(
            run_rule("panic-macro", SIM, "fn panic_message() {}").is_empty(),
            "no bang"
        );
    }

    #[test]
    fn slice_index_positive_and_negative() {
        assert_eq!(
            run_rule("slice-index", SIM, "fn f() { let x = v[i]; }").len(),
            1
        );
        assert_eq!(
            run_rule("slice-index", SIM, "fn f() { g()[0] = 1; }").len(),
            1
        );
        assert_eq!(
            run_rule("slice-index", SIM, "fn f() { m[a][b] = 1; }").len(),
            2
        );
        assert!(
            run_rule("slice-index", SIM, "#[derive(Debug)]\nstruct S;").is_empty(),
            "attributes"
        );
        assert!(run_rule(
            "slice-index",
            SIM,
            "fn f(x: [u8; 4]) -> Vec<u8> { vec![1, 2] }"
        )
        .is_empty());
        assert!(
            run_rule("slice-index", SIM, "fn f() { let a = [0u8; 8]; }").is_empty(),
            "array literal"
        );
        assert!(run_rule("slice-index", SIM, "fn f(v: &[u8]) { v.get(0); }").is_empty());
        assert!(
            run_rule("slice-index", SIM, "fn set(&mut self) -> &mut [u8] { }").is_empty(),
            "slice type"
        );
        assert!(
            run_rule("slice-index", SIM, "fn f() { return [0u8; 4]; }").is_empty(),
            "array after keyword"
        );
    }

    #[test]
    fn raw_fs_write_applies_everywhere_even_tests() {
        assert_eq!(
            run_rule(
                "raw-fs-write",
                "crates/stats/src/x.rs",
                "fn f() { std::fs::write(p, b).unwrap(); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run_rule(
                "raw-fs-write",
                "tests/x.rs",
                "fn f() { fs::write(p, b).unwrap(); }"
            )
            .len(),
            1
        );
        assert!(run_rule(
            "raw-fs-write",
            "tests/x.rs",
            "fn f() { std::fs::read(p).unwrap(); }"
        )
        .is_empty());
        assert!(
            run_rule("raw-fs-write", "tests/x.rs", "use std::fs::write;").is_empty(),
            "imports alone are not calls"
        );
    }

    #[test]
    fn config_fields_validated_finds_missing_fields() {
        let src = "struct FooConfig { a: u64, pub b: u64, c: bool }\n\
                   impl FooConfig {\n\
                     pub fn check(&self) -> Result<(), E> { ensure!(self.a > 0); let _ = self.c; Ok(()) }\n\
                   }";
        let found = run_rule("config-fields-validated", "crates/sim/src/config.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.ends_with("field(s): b"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn config_without_check_is_skipped() {
        let src = "struct BarConfig { a: u64 }\nimpl BarConfig { pub fn new() -> Self { Self { a: 1 } } }";
        assert!(run_rule("config-fields-validated", "crates/sim/src/config.rs", src).is_empty());
    }

    #[test]
    fn config_check_on_trait_impl_is_ignored() {
        // `impl Default for BazConfig` must not count as the check() home.
        let src = "struct BazConfig { a: u64 }\n\
                   impl Default for BazConfig { fn default() -> Self { Self { a: 1 } } }\n\
                   impl BazConfig { fn check(&self) -> bool { self.a > 0 } }";
        assert!(run_rule("config-fields-validated", "crates/sim/src/config.rs", src).is_empty());
    }

    #[test]
    fn request_structs_must_have_a_check() {
        // Unlike *Config, a service-layer *Request without check() is a
        // finding — wire-facing fields may not opt out of validation.
        let src = "struct PingRequest { id: String }\n\
                   impl PingRequest { fn new() -> Self { todo!() } }";
        let found = run_rule(
            "request-fields-validated",
            "crates/core/src/serve/proto.rs",
            src,
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("no check() method"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn request_check_must_mention_every_field() {
        let src = "struct RunScenario { roster: Vec<String>, f: f64, extra: u64 }\n\
                   impl RunScenario {\n\
                     fn check(&self) -> Result<(), E> { validate(&self.roster)?; bound(self.f) }\n\
                   }";
        let found = run_rule(
            "request-fields-validated",
            "crates/core/src/serve/proto.rs",
            src,
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.ends_with("field(s): extra"),
            "{}",
            found[0].message
        );
        let complete = "struct RunScenario { roster: Vec<String>, f: f64 }\n\
                        impl RunScenario {\n\
                          fn check(&self) -> Result<(), E> { validate(&self.roster)?; bound(self.f) }\n\
                        }";
        assert!(run_rule(
            "request-fields-validated",
            "crates/core/src/serve/proto.rs",
            complete
        )
        .is_empty());
    }

    #[test]
    fn generic_fields_do_not_confuse_the_field_scan() {
        let src = "struct QuxConfig { m: BTreeMap<String, Vec<u64>>, n: u64 }\n\
                   impl QuxConfig { fn check(&self) -> bool { self.m.is_empty() && self.n > 0 } }";
        assert!(run_rule("config-fields-validated", "crates/x/src/y.rs", src).is_empty());
        // Drop `n` from check: only `n` is reported, not the generics' idents.
        let src2 = "struct QuxConfig { m: BTreeMap<String, Vec<u64>>, n: u64 }\n\
                    impl QuxConfig { fn check(&self) -> bool { self.m.is_empty() } }";
        let found = run_rule("config-fields-validated", "crates/x/src/y.rs", src2);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.ends_with("n"), "{}", found[0].message);
    }
}
