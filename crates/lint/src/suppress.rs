//! Inline suppressions: `// soe-lint: allow(rule-id): reason`.
//!
//! A suppression covers findings of the named rule(s) on the same line
//! as the comment, or on the line directly below it (the usual "allow
//! comment above the offending statement" style). Multiple rule ids may
//! be listed comma-separated inside the parentheses.

use crate::lexer::Comment;

/// One parsed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule ids the comment allows.
    pub rules: Vec<String>,
    /// Line the comment sits on.
    pub line: u32,
}

impl Suppression {
    /// Whether this suppression waives a finding of `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        (line == self.line || line == self.line + 1) && self.rules.iter().any(|r| r == rule)
    }
}

/// Extracts all suppressions from a file's comments.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let Some(idx) = c.text.find("soe-lint:") else {
            continue;
        };
        let rest = c.text[idx + "soe-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            out.push(Suppression {
                rules,
                line: c.line,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn suppressions(src: &str) -> Vec<Suppression> {
        parse_suppressions(&lex(src).comments)
    }

    #[test]
    fn parses_single_and_multi_rule_allows() {
        let s = suppressions("// soe-lint: allow(panic-unwrap): len checked above\nx.unwrap();\n");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rules, vec!["panic-unwrap"]);
        assert_eq!(s[0].line, 1);

        let s = suppressions(
            "let x = v[i]; // soe-lint: allow(slice-index, panic-unwrap): bounds-guaranteed\n",
        );
        assert_eq!(s[0].rules, vec!["slice-index", "panic-unwrap"]);
    }

    #[test]
    fn covers_same_line_and_next_line_only() {
        let s = Suppression {
            rules: vec!["panic-unwrap".into()],
            line: 10,
        };
        assert!(s.covers("panic-unwrap", 10));
        assert!(s.covers("panic-unwrap", 11));
        assert!(!s.covers("panic-unwrap", 12));
        assert!(!s.covers("panic-unwrap", 9));
        assert!(!s.covers("slice-index", 10));
    }

    #[test]
    fn ignores_malformed_and_unrelated_comments() {
        assert!(suppressions("// just a comment mentioning soe-lint: nothing\n").is_empty());
        assert!(suppressions("// soe-lint: allow\n").is_empty());
        assert!(suppressions("// soe-lint: allow()\n").is_empty());
        assert!(suppressions("// soe-lint: deny(panic-unwrap)\n").is_empty());
    }

    #[test]
    fn block_comments_work_too() {
        let s =
            suppressions("/* soe-lint: allow(wall-clock): watchdog */\nlet t = Instant::now();\n");
        assert_eq!(s.len(), 1);
        assert!(s[0].covers("wall-clock", 2));
    }
}
