//! The checked-in baseline: grandfathered findings that predate a rule.
//!
//! Format (diff-friendly plain text, one entry per line):
//!
//! ```text
//! # comment
//! rule-id path/to/file.rs count
//! ```
//!
//! Up to `count` findings of `rule-id` in that file are waived as
//! [`Waiver::Baselined`]; any excess counts against the run, so the
//! baseline ratchets: new violations in a baselined file still fail.
//! Entries that no longer match anything are reported as stale so the
//! baseline shrinks over time instead of rotting.

use std::collections::BTreeMap;

use crate::diag::{Finding, Waiver};

/// Parsed baseline: (rule, file) -> allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parses the baseline text. Unparseable lines are returned as
    /// errors (line number, content) rather than silently dropped — a
    /// corrupt baseline must not quietly widen the gate.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `rule path count`, got `{line}`",
                    n + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: count `{count}` is not a number", n + 1))?;
            *entries
                .entry((rule.to_string(), path.to_string()))
                .or_insert(0) += count;
        }
        Ok(Self { entries })
    }

    /// Marks up to the baselined count of matching findings as waived.
    /// Findings must already be in their final (deterministic) order so
    /// that *which* findings get waived is stable run-to-run.
    ///
    /// Returns the stale entries: (rule, file) pairs whose allowance was
    /// not fully consumed.
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<(String, String, usize)> {
        let mut remaining = self.entries.clone();
        for f in findings.iter_mut() {
            if f.waiver != Waiver::None {
                continue;
            }
            let key = (f.rule.to_string(), f.file.clone());
            if let Some(left) = remaining.get_mut(&key) {
                if *left > 0 {
                    *left -= 1;
                    f.waiver = Waiver::Baselined;
                }
            }
        }
        remaining
            .into_iter()
            .filter(|(_, left)| *left > 0)
            .map(|((rule, file), left)| (rule, file, left))
            .collect()
    }

    /// Regenerates baseline text from the current unwaived findings
    /// (`--update-baseline`). Suppressed findings are excluded: an
    /// inline allow is already a durable waiver.
    pub fn regenerate(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for f in findings {
            if f.waiver == Waiver::Suppressed {
                continue;
            }
            *counts.entry((f.rule, f.file.as_str())).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# soe-lint baseline: grandfathered findings, one `rule path count` per line.\n\
             # Regenerate with `cargo run -p soe-lint -- --update-baseline`.\n\
             # The gate ratchets: findings beyond a file's count still fail the run.\n",
        );
        for ((rule, file), count) in counts {
            out.push_str(&format!("{rule} {file} {count}\n"));
        }
        out
    }

    /// All (rule, file, count) entries, in sorted order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.entries
            .iter()
            .map(|((rule, file), count)| (rule.as_str(), file.as_str(), *count))
    }

    /// Number of distinct (rule, file) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: "m".into(),
            hint: "h",
            waiver: Waiver::None,
            trail: Vec::new(),
        }
    }

    #[test]
    fn parse_apply_waives_up_to_count_and_reports_stale() {
        let b = Baseline::parse(
            "# header\n\
             panic-unwrap crates/sim/src/a.rs 2\n\
             slice-index crates/sim/src/b.rs 5\n",
        )
        .unwrap();
        let mut fs = vec![
            finding("panic-unwrap", "crates/sim/src/a.rs", 1),
            finding("panic-unwrap", "crates/sim/src/a.rs", 2),
            finding("panic-unwrap", "crates/sim/src/a.rs", 3), // beyond count
            finding("slice-index", "crates/sim/src/c.rs", 1),  // not baselined
        ];
        let stale = b.apply(&mut fs);
        assert_eq!(fs[0].waiver, Waiver::Baselined);
        assert_eq!(fs[1].waiver, Waiver::Baselined);
        assert_eq!(fs[2].waiver, Waiver::None, "ratchet: excess still fails");
        assert_eq!(fs[3].waiver, Waiver::None);
        assert_eq!(
            stale,
            vec![("slice-index".into(), "crates/sim/src/b.rs".into(), 5)]
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Baseline::parse("panic-unwrap crates/sim/src/a.rs\n").is_err());
        assert!(Baseline::parse("panic-unwrap crates/sim/src/a.rs two\n").is_err());
        assert!(Baseline::parse("a b 1 extra\n").is_err());
        assert!(Baseline::parse("\n# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn regenerate_round_trips_through_parse() {
        let fs = vec![
            finding("panic-unwrap", "crates/sim/src/a.rs", 1),
            finding("panic-unwrap", "crates/sim/src/a.rs", 9),
            finding("slice-index", "crates/sim/src/b.rs", 4),
        ];
        let text = Baseline::regenerate(&fs);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.len(), 2);
        let mut fs2 = fs.clone();
        let stale = b.apply(&mut fs2);
        assert!(stale.is_empty());
        assert!(fs2.iter().all(|f| f.waiver == Waiver::Baselined));
    }

    #[test]
    fn regenerate_excludes_suppressed_findings() {
        let mut f = finding("panic-unwrap", "crates/sim/src/a.rs", 1);
        f.waiver = Waiver::Suppressed;
        let text = Baseline::regenerate(&[f]);
        assert!(Baseline::parse(&text).unwrap().is_empty());
    }
}
