//! Orchestration: walk the workspace, run every rule over every file,
//! apply suppressions and the baseline, and return findings in a
//! deterministic order.

use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::diag::{Finding, Waiver};
use crate::rules::{all_rules, Rule};
use crate::source::SourceFile;
use crate::suppress::parse_suppressions;

/// Directories never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", "results", ".git", ".github"];

/// Result of one full analysis pass.
#[derive(Debug)]
pub struct Analysis {
    /// All findings (including waived ones), sorted by (file, line,
    /// rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Stale baseline entries: (rule, file, unused count).
    pub stale_baseline: Vec<(String, String, usize)>,
}

impl Analysis {
    /// Whether the run should fail (any unwaived error-severity
    /// finding).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(Finding::counts_as_error)
    }
}

/// Analyzes one file's content against `rules`, applying inline
/// suppressions (but not the baseline — that is a workspace-level
/// concern). Public so tests can lint fixture strings directly.
pub fn analyze_source(path: &str, content: &str, rules: &[Rule]) -> Vec<Finding> {
    let file = SourceFile::parse(path, content);
    let suppressions = parse_suppressions(&file.comments);
    let mut findings = Vec::new();
    for rule in rules {
        for mut f in rule.check(&file) {
            if suppressions.iter().any(|s| s.covers(f.rule, f.line)) {
                f.waiver = Waiver::Suppressed;
            }
            findings.push(f);
        }
    }
    findings
}

/// Lists every `.rs` file under `root` that the lint pass covers, as
/// workspace-relative `/`-separated paths, sorted (the walk order is
/// part of the tool's determinism contract).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// Converts an absolute path under `root` to the workspace-relative
/// `/`-separated form used in findings, suppressible baselines and
/// diagnostics.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Runs the full pass over the workspace at `root`.
pub fn analyze_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<Analysis> {
    analyze_workspace_filtered(root, baseline, None)
}

/// Like [`analyze_workspace`] but optionally restricted to one rule id
/// (`--rule`).
pub fn analyze_workspace_filtered(
    root: &Path,
    baseline: &Baseline,
    only_rule: Option<&str>,
) -> std::io::Result<Analysis> {
    let mut rules = all_rules();
    if let Some(id) = only_rule {
        rules.retain(|r| r.id == id);
    }
    let paths = workspace_files(root)?;
    let mut findings = Vec::new();
    for path in &paths {
        let rel = relative_path(root, path);
        let content = std::fs::read_to_string(path)?;
        findings.extend(analyze_source(&rel, &content, &rules));
    }
    // Deterministic order before the baseline consumes allowances, so
    // which findings get grandfathered is stable run-to-run.
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let stale_baseline = baseline.apply(&mut findings);
    Ok(Analysis {
        findings,
        files: paths.len(),
        stale_baseline,
    })
}

/// Returns the rule with id `id`, if any (CLI validation).
pub fn rule_exists(id: &str) -> bool {
    all_rules().iter().any(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn analyze_source_applies_suppressions() {
        let src = "fn f() {\n\
                   // soe-lint: allow(panic-unwrap): invariant: always Some here\n\
                   x.unwrap();\n\
                   y.unwrap();\n\
                   }\n";
        let findings = analyze_source("crates/sim/src/x.rs", src, &all_rules());
        let unwraps: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "panic-unwrap")
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert_eq!(
            unwraps[0].waiver,
            Waiver::Suppressed,
            "covered by line above"
        );
        assert_eq!(unwraps[1].waiver, Waiver::None, "one allow covers one line");
    }

    #[test]
    fn suppression_does_not_cover_other_rules() {
        let src = "fn f() {\n\
                   // soe-lint: allow(slice-index): wrong rule\n\
                   x.unwrap();\n\
                   }\n";
        let findings = analyze_source("crates/sim/src/x.rs", src, &all_rules());
        let f = findings.iter().find(|f| f.rule == "panic-unwrap").unwrap();
        assert_eq!(f.waiver, Waiver::None);
    }

    #[test]
    fn severities_survive_the_pipeline() {
        let src = "fn f() { let mut m = HashMap::new(); for k in &m {} }";
        let findings = analyze_source("crates/bench/src/x.rs", src, &all_rules());
        let it = findings
            .iter()
            .find(|f| f.rule == "unordered-iteration")
            .unwrap();
        assert_eq!(it.severity, Severity::Warning);
        assert!(!it.counts_as_error());
    }
}
