//! Orchestration: walk the workspace, run every per-file rule and every
//! workspace pass, apply suppressions and the baseline, and return
//! findings in a deterministic order.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::diag::{Finding, Waiver};
use crate::passes::all_passes;
use crate::rules::{all_rules, Rule};
use crate::source::SourceFile;
use crate::suppress::{parse_suppressions, Suppression};
use crate::workspace::Workspace;

/// Directories never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", "results", ".git", ".github"];

/// Result of one full analysis pass.
#[derive(Debug)]
pub struct Analysis {
    /// All findings (including waived ones), sorted by (file, line,
    /// rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Stale baseline entries: (rule, file, unused count).
    pub stale_baseline: Vec<(String, String, usize)>,
    /// Baseline entries naming files that no longer exist: (rule,
    /// file). These are also stale (their allowance cannot be
    /// consumed), but deserve a sharper message: the file was deleted
    /// or moved and the baseline still grandfathers it.
    pub missing_baseline_files: Vec<(String, String)>,
}

impl Analysis {
    /// Whether the run should fail (any unwaived error-severity
    /// finding).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(Finding::counts_as_error)
    }
}

/// Rules whose inline allow also waives a finding of `rule` at the same
/// site. A justified allow at a panic site documents why the panic
/// cannot fire — that justification is path-independent, so it also
/// covers `panic-reachability` reporting the same line. `wall-clock`
/// deliberately does NOT alias to `determinism-taint`: "this read is a
/// legitimate watchdog" does not argue the value stays out of
/// serialized bytes, so a taint flow needs its own allow.
fn rule_aliases(rule: &str) -> &'static [&'static str] {
    match rule {
        "panic-reachability" => &["panic-unwrap", "panic-macro", "slice-index"],
        "unordered-iteration" => &["unordered-collections"],
        _ => &[],
    }
}

/// Whether `sup` (one file's suppressions) waives a finding, directly
/// or through an alias.
fn suppressed(sup: &[Suppression], f: &Finding) -> bool {
    sup.iter().any(|s| {
        s.covers(f.rule, f.line) || rule_aliases(f.rule).iter().any(|id| s.covers(id, f.line))
    })
}

/// Analyzes one file's content against `rules`, applying inline
/// suppressions (but not the baseline — that is a workspace-level
/// concern). Public so tests can lint fixture strings directly.
/// Workspace passes are not run here; see [`analyze_files`].
pub fn analyze_source(path: &str, content: &str, rules: &[Rule]) -> Vec<Finding> {
    let file = SourceFile::parse(path, content);
    let suppressions = parse_suppressions(&file.comments);
    let mut findings = Vec::new();
    for rule in rules {
        for mut f in rule.check(&file) {
            if suppressed(&suppressions, &f) {
                f.waiver = Waiver::Suppressed;
            }
            findings.push(f);
        }
    }
    findings
}

/// Lists every `.rs` file under `root` that the lint pass covers, as
/// workspace-relative `/`-separated paths, sorted (the walk order is
/// part of the tool's determinism contract).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.clone());
        }
    }
    Ok(())
}

/// Converts an absolute path under `root` to the workspace-relative
/// `/`-separated form used in findings, suppressible baselines and
/// diagnostics.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Runs the full pass over the workspace at `root`.
pub fn analyze_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<Analysis> {
    analyze_workspace_filtered(root, baseline, None)
}

/// Like [`analyze_workspace`] but optionally restricted to one rule or
/// pass id (`--rule`).
pub fn analyze_workspace_filtered(
    root: &Path,
    baseline: &Baseline,
    only_rule: Option<&str>,
) -> std::io::Result<Analysis> {
    let paths = workspace_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = relative_path(root, path);
        let content = std::fs::read_to_string(path)?;
        files.push((rel, content));
    }
    let borrowed: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, c)| (p.as_str(), c.as_str()))
        .collect();
    Ok(analyze_files(&borrowed, baseline, only_rule))
}

/// Runs per-file rules *and* workspace passes over in-memory files —
/// the single analysis entry point, shared by the CLI (via
/// [`analyze_workspace_filtered`]) and fixture tests.
pub fn analyze_files(
    files: &[(&str, &str)],
    baseline: &Baseline,
    only_rule: Option<&str>,
) -> Analysis {
    let mut rules = all_rules();
    let mut passes = all_passes();
    if let Some(id) = only_rule {
        rules.retain(|r| r.id == id);
        passes.retain(|p| p.id == id);
    }
    let mut findings = Vec::new();
    let mut sources = Vec::with_capacity(files.len());
    let mut suppressions: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    for (path, content) in files {
        let file = SourceFile::parse(path, content);
        let sup = parse_suppressions(&file.comments);
        for rule in &rules {
            for mut f in rule.check(&file) {
                if suppressed(&sup, &f) {
                    f.waiver = Waiver::Suppressed;
                }
                findings.push(f);
            }
        }
        suppressions.insert(file.path.clone(), sup);
        sources.push(file);
    }
    let ws = Workspace::build(sources);
    for pass in &passes {
        for mut f in pass.check(&ws) {
            if let Some(sup) = suppressions.get(&f.file) {
                if suppressed(sup, &f) {
                    f.waiver = Waiver::Suppressed;
                }
            }
            findings.push(f);
        }
    }
    // Deterministic order before the baseline consumes allowances, so
    // which findings get grandfathered is stable run-to-run.
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let stale_baseline = baseline.apply(&mut findings);
    let scanned: BTreeSet<&str> = files.iter().map(|(p, _)| *p).collect();
    let missing_baseline_files = baseline
        .entries()
        .filter(|(_, file, _)| !scanned.contains(file))
        .map(|(rule, file, _)| (rule.to_string(), file.to_string()))
        .collect();
    Analysis {
        findings,
        files: files.len(),
        stale_baseline,
        missing_baseline_files,
    }
}

/// Builds the workspace symbol table and call graph for `root`
/// (`--graph` debugging support).
pub fn build_workspace(root: &Path) -> std::io::Result<Workspace> {
    let paths = workspace_files(root)?;
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = relative_path(root, path);
        let content = std::fs::read_to_string(path)?;
        sources.push(SourceFile::parse(&rel, &content));
    }
    Ok(Workspace::build(sources))
}

/// Returns whether a rule or pass with id `id` exists (CLI validation).
pub fn rule_exists(id: &str) -> bool {
    all_rules().iter().any(|r| r.id == id) || crate::passes::pass_exists(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn analyze_source_applies_suppressions() {
        let src = "fn f() {\n\
                   // soe-lint: allow(panic-unwrap): invariant: always Some here\n\
                   x.unwrap();\n\
                   y.unwrap();\n\
                   }\n";
        let findings = analyze_source("crates/sim/src/x.rs", src, &all_rules());
        let unwraps: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "panic-unwrap")
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert_eq!(
            unwraps[0].waiver,
            Waiver::Suppressed,
            "covered by line above"
        );
        assert_eq!(unwraps[1].waiver, Waiver::None, "one allow covers one line");
    }

    #[test]
    fn suppression_does_not_cover_other_rules() {
        let src = "fn f() {\n\
                   // soe-lint: allow(slice-index): wrong rule\n\
                   x.unwrap();\n\
                   }\n";
        let findings = analyze_source("crates/sim/src/x.rs", src, &all_rules());
        let f = findings.iter().find(|f| f.rule == "panic-unwrap").unwrap();
        assert_eq!(f.waiver, Waiver::None);
    }

    #[test]
    fn warning_severities_survive_the_pipeline() {
        let a = analyze_files(
            &[(
                "crates/bench/src/x.rs",
                "fn f() { let mut m = HashMap::new(); for k in &m {} }",
            )],
            &Baseline::default(),
            Some("unordered-iteration"),
        );
        let it = a
            .findings
            .iter()
            .find(|f| f.rule == "unordered-iteration")
            .unwrap();
        assert_eq!(it.severity, Severity::Warning);
        assert!(!it.counts_as_error());
    }

    #[test]
    fn panic_allow_aliases_to_reachability() {
        // One allow at the panic site waives both the per-file rule and
        // the workspace pass pointing at the same line.
        let a = analyze_files(
            &[(
                "crates/sim/src/core.rs",
                "impl Machine {\n\
                 fn step(&mut self) {\n\
                 // soe-lint: allow(panic-unwrap): invariant: queue non-empty\n\
                 x.unwrap();\n\
                 }\n\
                 fn schedule_wake_events(&mut self) {}\n\
                 }\n",
            )],
            &Baseline::default(),
            None,
        );
        let reach: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == "panic-reachability" && f.line == 4)
            .collect();
        assert_eq!(reach.len(), 1, "{:?}", a.findings);
        assert_eq!(reach[0].waiver, Waiver::Suppressed);
        let unwrap = a
            .findings
            .iter()
            .find(|f| f.rule == "panic-unwrap")
            .unwrap();
        assert_eq!(unwrap.waiver, Waiver::Suppressed);
    }

    #[test]
    fn wall_clock_allow_does_not_waive_taint() {
        let a = analyze_files(
            &[
                (
                    "crates/core/src/supervise.rs",
                    "impl Journal { fn append(&mut self) {\n\
                     // soe-lint: allow(wall-clock): watchdog timestamp\n\
                     let t = Instant::now();\n\
                     } }\n",
                ),
                (
                    "crates/core/src/other.rs",
                    "fn trace_jsonl() {}\nfn chrome_trace() {}\nfn trace_series() {}\n\
                     fn full_results() {}\nimpl MetricsRegistry { fn to_csv(&self) {} }\n\
                     impl SloReport { fn build() {} }\n\
                     impl Machine { fn step(&self) {} fn schedule_wake_events(&self) {} \
                     fn event_valid(&self) {} }\n\
                     impl Calendar { fn schedule(&mut self) {} }\n\
                     fn run_pair_with_policy() {}\nfn serve() {}\nfn run_scenario() {}\n\
                     impl FairnessPolicy { fn recalc(&self) {} fn on_switch_in(&self) {} \
                     fn on_switch_out(&self) {} fn after_retire(&self) {} fn each_cycle(&self) {} }",
                ),
            ],
            &Baseline::default(),
            None,
        );
        let wall = a.findings.iter().find(|f| f.rule == "wall-clock").unwrap();
        assert_eq!(wall.waiver, Waiver::Suppressed);
        let taint = a
            .findings
            .iter()
            .find(|f| f.rule == "determinism-taint")
            .unwrap();
        assert_eq!(
            taint.waiver,
            Waiver::None,
            "taint needs its own justification"
        );
    }

    #[test]
    fn baseline_entries_for_missing_files_are_reported() {
        let baseline = Baseline::parse(
            "panic-unwrap crates/sim/src/deleted.rs 2\n\
             wall-clock crates/bench/src/x.rs 1\n",
        )
        .unwrap();
        let a = analyze_files(
            &[("crates/bench/src/x.rs", "fn f() {}")],
            &baseline,
            Some("wall-clock"),
        );
        assert_eq!(
            a.missing_baseline_files,
            vec![(
                "panic-unwrap".to_string(),
                "crates/sim/src/deleted.rs".to_string()
            )]
        );
        // The existing-but-clean file is stale, not missing.
        assert!(a
            .stale_baseline
            .iter()
            .any(|(r, f, _)| r == "wall-clock" && f == "crates/bench/src/x.rs"));
    }
}
