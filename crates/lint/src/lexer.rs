//! A small, dependency-free Rust lexer.
//!
//! `soe-lint` does not need a full parser: every rule it enforces can be
//! phrased over a token stream plus a little local context (previous /
//! next token, brace depth, attribute adjacency). The lexer therefore
//! only has to get the *hard* part of Rust's lexical grammar right —
//! the places where naive substring matching lies:
//!
//! - strings (plain, raw `r#"…"#`, byte, byte-raw) so that
//!   `"call unwrap() here"` in a message is not a finding,
//! - comments (line, nested block, doc) so that code examples in docs
//!   are not findings — and so suppression comments can be collected,
//! - char literals vs lifetimes (`'a'` vs `'a`),
//! - numeric literals with suffixes and `..` ranges (`0..10` must not
//!   swallow the dots).
//!
//! Tokens carry 1-based line numbers for diagnostics.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `HashMap`).
    Ident,
    /// A single punctuation character (`.`, `[`, `!`, `:` — multi-char
    /// operators arrive as consecutive tokens).
    Punct,
    /// A string, char, byte or numeric literal (contents opaque).
    Literal,
    /// A lifetime (`'a`) — kept distinct so char-literal handling never
    /// confuses the two.
    Lifetime,
}

/// One lexeme with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Literal`], the raw literal
    /// including quotes; rules never inspect literal interiors).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the exact punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the exact identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A comment with its source position, collected for suppression
/// scanning (`// soe-lint: allow(rule): reason`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text, including the `//` or `/*` markers.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and comments. Invalid input never
/// panics: unrecognized bytes are skipped, unterminated literals run to
/// end of input — a linter must degrade gracefully on the code it is
/// about to complain about.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let start_line = self.line;
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start_line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start_line),
                b'"' => self.string(self.pos, start_line),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'\'' => self.char_or_lifetime(start_line),
                b'0'..=b'9' => self.number(start_line),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start_line),
                _ => {
                    let ch_len = utf8_len(b);
                    let text = self.slice(self.pos, self.pos + ch_len);
                    self.pos += ch_len;
                    self.push(TokenKind::Punct, text, start_line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn slice(&self, from: usize, to: usize) -> String {
        String::from_utf8_lossy(&self.src[from..to.min(self.src.len())]).into_owned()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn count_newlines(&mut self, from: usize, to: usize) {
        self.line += self.src[from..to.min(self.src.len())]
            .iter()
            .filter(|b| **b == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = self.slice(start, self.pos);
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text = self.slice(start, self.pos);
        self.out.comments.push(Comment { text, line });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`; returns
    /// false (consuming nothing) when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let mut p = self.pos;
        if self.src[p] == b'b' {
            p += 1;
        }
        let mut raw = false;
        if self.src.get(p) == Some(&b'r') {
            raw = true;
            p += 1;
        }
        let mut hashes = 0usize;
        while raw && self.src.get(p) == Some(&b'#') {
            hashes += 1;
            p += 1;
        }
        match self.src.get(p) {
            Some(b'"') => {}
            Some(b'\'') if !raw && self.src[start] == b'b' => {
                // Byte char literal b'x'.
                self.pos = p;
                self.char_or_lifetime(line);
                let text = self.slice(start, self.pos);
                if let Some(last) = self.out.tokens.last_mut() {
                    last.text = text;
                }
                return true;
            }
            _ => return false, // plain identifier starting with r/b
        }
        if raw {
            // Raw string: ends at `"` followed by `hashes` hashes.
            let mut q = p + 1;
            loop {
                match self.src.get(q) {
                    None => break,
                    Some(b'"')
                        if self.src[q + 1..].iter().take_while(|b| **b == b'#').count()
                            >= hashes =>
                    {
                        q += 1 + hashes;
                        break;
                    }
                    Some(_) => q += 1,
                }
            }
            self.count_newlines(start, q);
            let text = self.slice(start, q);
            self.pos = q;
            self.push(TokenKind::Literal, text, line);
        } else {
            self.pos = p;
            self.string(start, line);
        }
        true
    }

    /// Lexes a plain (escaped) string starting at the `"` at `self.pos`,
    /// emitting a literal token whose text begins at `token_start`.
    fn string(&mut self, token_start: usize, line: u32) {
        let mut p = self.pos + 1;
        while p < self.src.len() {
            match self.src[p] {
                b'\\' => p += 2,
                b'"' => {
                    p += 1;
                    break;
                }
                _ => p += 1,
            }
        }
        self.count_newlines(token_start, p);
        let text = self.slice(token_start, p);
        self.pos = p;
        self.push(TokenKind::Literal, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        let start = self.pos;
        // `'` then: escape => char; `X'` => char; ident-start not
        // followed by a closing quote => lifetime.
        match self.peek(1) {
            Some(b'\\') => {
                let mut p = self.pos + 2;
                p += 1; // the escaped character
                if self.src.get(p - 1) == Some(&b'u') {
                    // '\u{…}'
                    while p < self.src.len() && self.src[p - 1] != b'}' {
                        p += 1;
                    }
                } else if self.src.get(p - 1) == Some(&b'x') {
                    p += 2;
                }
                while p < self.src.len() && self.src[p] != b'\'' {
                    p += 1;
                }
                p = (p + 1).min(self.src.len());
                let text = self.slice(start, p);
                self.pos = p;
                self.push(TokenKind::Literal, text, line);
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a (lifetime): look past the
                // identifier run for a closing quote.
                let mut p = self.pos + 1;
                while p < self.src.len() && is_ident_continue(self.src[p]) {
                    p += 1;
                }
                if self.src.get(p) == Some(&b'\'') && p == self.pos + 2 {
                    let text = self.slice(start, p + 1);
                    self.pos = p + 1;
                    self.push(TokenKind::Literal, text, line);
                } else {
                    let text = self.slice(start, p);
                    self.pos = p;
                    self.push(TokenKind::Lifetime, text, line);
                }
            }
            Some(_) => {
                // Non-identifier char literal like '+' or '🦀'.
                let mut p = self.pos + 1;
                while p < self.src.len() && self.src[p] != b'\'' && self.src[p] != b'\n' {
                    p += 1;
                }
                p = (p + 1).min(self.src.len());
                let text = self.slice(start, p);
                self.pos = p;
                self.push(TokenKind::Literal, text, line);
            }
            None => {
                self.pos += 1;
                self.push(TokenKind::Punct, "'".into(), line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        let mut p = self.pos;
        while p < self.src.len() {
            let b = self.src[p];
            if b.is_ascii_alphanumeric() || b == b'_' {
                p += 1;
            } else if b == b'.'
                && self.src.get(p + 1) != Some(&b'.')
                && self.src.get(p + 1).is_some_and(u8::is_ascii_digit)
            {
                // Decimal point, but never a `..` range.
                p += 1;
            } else {
                break;
            }
        }
        let text = self.slice(start, p);
        self.pos = p;
        self.push(TokenKind::Literal, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        let mut p = self.pos;
        while p < self.src.len() && is_ident_continue(self.src[p]) {
            p += 1;
        }
        let text = self.slice(start, p);
        self.pos = p;
        self.push(TokenKind::Ident, text, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let x = "call unwrap() and HashMap"; x.len();"#);
        assert!(!idents(r#"let x = "call unwrap() and HashMap"; x.len();"#)
            .iter()
            .any(|i| i == "unwrap" || i == "HashMap"));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r###"let s = r#"quote " inside, unwrap()"#; s.len();"###;
        assert!(!idents(src).iter().any(|i| i == "unwrap"));
        assert!(idents(src).iter().any(|i| i == "len"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let src = r###"let a = b"unwrap()"; let b = br#"HashMap"#; ok();"###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "HashMap"));
        assert!(ids.iter().any(|i| i == "ok"));
    }

    #[test]
    fn line_and_nested_block_comments_are_collected() {
        let src = "// outer unwrap()\nfn f() {} /* a /* nested */ block */\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("outer"));
        assert!(l.comments[1].text.contains("nested"));
        assert!(!l.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let src = "/// ```\n/// m.outstanding(0x40, 0).unwrap();\n/// ```\nfn real() {}\n";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(l.comments.len(), 3);
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let src = "let c = 'a'; let nl = '\\n'; fn f<'a>(x: &'a str) {} let u = '\\u{1F980}';";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('\''))
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn nested_generics_lex_cleanly() {
        let src =
            "fn f(m: BTreeMap<String, Vec<Option<u64>>>) -> Result<Vec<u8>, Box<dyn Error>> { }";
        let ids = idents(src);
        for want in [
            "BTreeMap", "String", "Vec", "Option", "u64", "Result", "Box", "dyn", "Error",
        ] {
            assert!(ids.iter().any(|i| i == want), "missing {want}");
        }
        // Every `>` arrives as its own punct: shifts never merge tokens.
        let gt = lex(src).tokens.iter().filter(|t| t.is_punct('>')).count();
        assert_eq!(gt, 7, "5 closing generics + 1 arrow + 1 nested");
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let l = lex("for i in 0..10 { a[i] = 1.5e3_f64; }");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` must stay two punct tokens");
        assert!(l.tokens.iter().any(|t| t.text == "1.5e3_f64"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\";\n/* c\nc */ let b = 2;\nlet c = r#\"l1\nl2\"#;\nfinal_ident();";
        let l = lex(src);
        let fin = l.tokens.iter().find(|t| t.text == "final_ident").unwrap();
        assert_eq!(fin.line, 6, "block comment spans 2-3, raw string spans 4-5");
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let l = lex("let s = \"never closed");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }
}
