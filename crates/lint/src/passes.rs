//! Workspace analysis passes: cross-file checks over the call graph.
//!
//! Unlike [`crate::rules`] (pure per-file token scans), a pass sees the
//! whole [`Workspace`] — symbol table, call graph, struct/enum tables —
//! and emits findings whose `trail` carries the multi-location evidence
//! (a call path from a hot-path root, a source→sink taint flow, the
//! enum definition a match fails to cover).
//!
//! Over-approximation contract (inherited from [`crate::workspace`]):
//! every real call edge is in the graph, so these passes can miss
//! nothing reachable — they can only over-report when names collide,
//! and over-reports are waived with the same justified-allow machinery
//! as per-file rules.

use crate::diag::{Finding, Severity, TrailStep, Waiver};
use crate::items::{FnItem, PanicKind};
use crate::lexer::{Token, TokenKind};
use crate::workspace::Workspace;

/// The functions the simulator cannot afford to have panic or drift:
/// the cycle-level hot loop, the event-calendar dispatch loop and its
/// handlers (`Machine::step` pops entries, `schedule_wake_events`
/// schedules every live wake source, `event_valid` revalidates popped
/// entries against live state), the pair/scenario runners, the service
/// dispatch entry points, and every `FairnessPolicy` tick. Panic
/// reachability is computed from these. `lookup` resolves each name;
/// the pass reports a configuration error if one stops resolving (so a
/// rename cannot silently empty the analysis — see the self-check).
pub const HOT_PATH_ROOTS: &[&str] = &[
    "Machine::step",
    "Machine::schedule_wake_events",
    "Machine::event_valid",
    "run_pair_with_policy",
    "serve",
    "run_scenario",
    "FairnessPolicy::recalc",
    "FairnessPolicy::on_switch_in",
    "FairnessPolicy::on_switch_out",
    "FairnessPolicy::after_retire",
    "FairnessPolicy::each_cycle",
    "IslipPolicy::pick_next",
    "IslipPolicy::each_cycle",
    "UsageFairPolicy::pick_next",
    "UsageFairPolicy::each_cycle",
    "WdrrPolicy::after_retire",
    "WdrrPolicy::each_cycle",
];

/// Functions that serialize state into artifacts whose bytes the
/// reproduction contract covers: the supervision journal, trace
/// exporters, the metrics registry, SLO reports and swept ResultSets.
/// Determinism taint is reported when a nondeterminism source can flow
/// into one of these.
pub const SERIALIZATION_SINKS: &[&str] = &[
    "Journal::append",
    "trace_jsonl",
    "chrome_trace",
    "trace_series",
    "MetricsRegistry::to_csv",
    "SloReport::build",
    "full_results",
];

/// Functions that decide *when simulated events happen*: the global
/// event calendar's scheduling entry points. A nondeterministic value
/// reaching one of these perturbs dispatch order — and through it every
/// downstream artifact — even if no serializer ever sees the value
/// directly, so they are determinism-taint sinks of their own kind.
pub const ORDERING_SINKS: &[&str] = &["Calendar::schedule", "Machine::schedule_wake_events"];

/// Enums whose variants are a serialization schema: every exporter or
/// validator `match` that dispatches on them must handle all variants,
/// so adding a variant breaks the build loudly instead of silently
/// skipping an oracle.
pub const SCHEMA_ENUMS: &[&str] = &["EventKind", "Response"];

/// Path prefixes where `unordered-iteration` escalates from warning to
/// error (mirrors the scope of the per-file determinism rules).
const SIM_CORE: &[&str] = &["crates/sim/src/", "crates/core/src/"];

/// Descriptor + implementation of one workspace pass.
pub struct Pass {
    /// Stable id, used in suppressions and the baseline.
    pub id: &'static str,
    /// Pass category (`determinism`, `panic-safety`, `schema`).
    pub category: &'static str,
    /// Nominal severity (individual findings may downgrade).
    pub severity: Severity,
    /// One-line description (for `--list-rules` and LINTS.md parity).
    pub description: &'static str,
    check: fn(&Workspace, &Pass) -> Vec<Finding>,
}

impl Pass {
    /// Runs the pass over the workspace.
    pub fn check(&self, ws: &Workspace) -> Vec<Finding> {
        (self.check)(ws, self)
    }

    fn finding(
        &self,
        file: &str,
        line: u32,
        message: String,
        hint: &'static str,
        trail: Vec<TrailStep>,
    ) -> Finding {
        Finding {
            rule: self.id,
            severity: self.severity,
            file: file.to_string(),
            line,
            message,
            hint,
            waiver: Waiver::None,
            trail,
        }
    }
}

/// The full pass set, in stable order.
pub fn all_passes() -> Vec<Pass> {
    vec![
        Pass {
            id: "panic-reachability",
            category: "panic-safety",
            severity: Severity::Error,
            description: "no panic site (unwrap/expect/panic-family macro/bracket index) \
                          in ANY workspace crate may be reachable from the simulator \
                          hot path; the diagnostic carries the call path",
            check: check_panic_reachability,
        },
        Pass {
            id: "determinism-taint",
            category: "determinism",
            severity: Severity::Error,
            description: "no nondeterminism source (wall clock, env, hash iteration, \
                          thread ids) may flow through the call graph into journal/\
                          trace/metrics/SLO/ResultSet serialization or into event-\
                          calendar scheduling (which sets simulated dispatch order)",
            check: check_determinism_taint,
        },
        Pass {
            id: "trace-schema-coverage",
            category: "schema",
            severity: Severity::Error,
            description: "every match dispatching on a trace/protocol enum (EventKind, \
                          Response) must handle all variants explicitly, so a new \
                          variant cannot silently skip an exporter or oracle",
            check: check_trace_schema_coverage,
        },
        Pass {
            id: "unordered-iteration",
            category: "determinism",
            severity: Severity::Warning,
            description: "iteration over a binding resolved to HashMap/HashSet via the \
                          symbol table (param/let/field types); error in simulator and \
                          policy code, warning elsewhere",
            check: check_unordered_iteration,
        },
    ]
}

/// Returns the pass with id `id`, if any (CLI validation).
pub fn pass_exists(id: &str) -> bool {
    all_passes().iter().any(|p| p.id == id)
}

// ---------------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------------

/// Multi-root BFS over `callees`; `pred[v] = (caller, call line)` for
/// every reached fn, `None` for roots.
struct Reach {
    visited: Vec<bool>,
    pred: Vec<Option<(usize, u32)>>,
    /// BFS visit order (deterministic: roots in declaration order,
    /// edges in source order).
    order: Vec<usize>,
}

fn reach_from(ws: &Workspace, roots: &[usize]) -> Reach {
    let n = ws.fns.len();
    let mut r = Reach {
        visited: vec![false; n],
        pred: vec![None; n],
        order: Vec::new(),
    };
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &root in roots {
        if !r.visited[root] {
            r.visited[root] = true;
            r.order.push(root);
            queue.push_back(root);
        }
    }
    while let Some(u) = queue.pop_front() {
        for e in &ws.callees[u] {
            if !r.visited[e.to] {
                r.visited[e.to] = true;
                r.pred[e.to] = Some((u, e.line));
                r.order.push(e.to);
                queue.push_back(e.to);
            }
        }
    }
    r
}

/// The call path root → … → `idx` as trail steps (root definition
/// first, then one step per call edge).
fn call_trail(ws: &Workspace, reach: &Reach, idx: usize) -> Vec<TrailStep> {
    let mut chain = Vec::new();
    let mut cur = idx;
    while let Some((caller, line)) = reach.pred[cur] {
        chain.push((caller, line, cur));
        cur = caller;
    }
    chain.reverse();
    let root = &ws.fns[cur];
    let mut steps = vec![TrailStep {
        file: ws.path_of(cur).to_string(),
        line: root.item.line,
        note: format!("hot-path root `{}` defined here", root.item.qualified()),
    }];
    for (caller, line, callee) in chain {
        steps.push(TrailStep {
            file: ws.path_of(caller).to_string(),
            line,
            note: format!(
                "`{}` calls `{}`",
                ws.fns[caller].item.qualified(),
                ws.fns[callee].item.qualified()
            ),
        });
    }
    steps
}

fn check_panic_reachability(ws: &Workspace, pass: &Pass) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut roots = Vec::new();
    for name in HOT_PATH_ROOTS {
        let hits = ws.lookup(name);
        if hits.is_empty() {
            out.push(pass.finding(
                "crates/lint/src/passes.rs",
                1,
                format!(
                    "hot-path root `{name}` does not resolve to any workspace symbol \
                     (renamed or removed?) — the reachability analysis is incomplete"
                ),
                "update HOT_PATH_ROOTS in crates/lint/src/passes.rs to the new name",
                Vec::new(),
            ));
        }
        roots.extend(hits);
    }
    let reach = reach_from(ws, &roots);
    for &idx in &reach.order {
        let node = &ws.fns[idx];
        for p in &node.item.panics {
            let what = match p.kind {
                PanicKind::Unwrap => format!("`{}`", p.what),
                PanicKind::Macro => format!("`{}`", p.what),
                PanicKind::Index => format!("indexing `{}`", p.what),
            };
            out.push(pass.finding(
                ws.path_of(idx),
                p.line,
                format!(
                    "{what} in `{}` is reachable from the simulator hot path",
                    node.item.qualified()
                ),
                "return a typed error along this path, or allow at the panic site \
                 with the invariant that makes it unreachable",
                call_trail(ws, &reach, idx),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------------

/// Nondeterminism sources in one fn: direct wall-clock/env/thread reads
/// plus hash-container iterations resolved through the symbol table.
fn taint_sources(ws: &Workspace, idx: usize) -> Vec<(String, u32)> {
    let node = &ws.fns[idx];
    let mut out: Vec<(String, u32)> = node
        .item
        .taints
        .iter()
        .map(|t| (format!("`{}`", t.what), t.line))
        .collect();
    for site in &node.item.iters {
        if let Some(u) = resolve_unordered(ws, idx, site) {
            out.push((
                format!("{} iteration over `{}`", u.container, site.name),
                site.line,
            ));
        }
    }
    out.sort_by_key(|(_, line)| *line);
    out
}

fn check_determinism_taint(ws: &Workspace, pass: &Pass) -> Vec<Finding> {
    let mut out = Vec::new();
    // Resolve sinks; an unresolvable sink is a configuration error for
    // the same reason an unresolvable root is. Each resolved index
    // remembers which list it came from so the finding can say whether
    // the taint reaches serialized bytes or event ordering.
    let mut sink_idx: Vec<(usize, &'static str)> = Vec::new();
    for (list, label, fix_hint) in [
        (
            SERIALIZATION_SINKS,
            "serialization",
            "update SERIALIZATION_SINKS in crates/lint/src/passes.rs",
        ),
        (
            ORDERING_SINKS,
            "event-ordering",
            "update ORDERING_SINKS in crates/lint/src/passes.rs",
        ),
    ] {
        for name in list {
            let hits = ws.lookup(name);
            if hits.is_empty() {
                out.push(pass.finding(
                    "crates/lint/src/passes.rs",
                    1,
                    format!(
                        "{label} sink `{name}` does not resolve to any workspace \
                         symbol (renamed or removed?) — the taint analysis is incomplete"
                    ),
                    fix_hint,
                    Vec::new(),
                ));
            }
            sink_idx.extend(hits.into_iter().map(|i| (i, label)));
        }
    }
    let is_sink = |i: usize| sink_idx.iter().find(|(s, _)| *s == i).map(|&(_, l)| l);

    for src_fn in 0..ws.fns.len() {
        let sources = taint_sources(ws, src_fn);
        if sources.is_empty() {
            continue;
        }
        // BFS *up* the callers from the source fn: every visited fn's
        // execution can observe the source's value. pred[c] = (callee,
        // line at which c calls it) — the witness back down to the
        // source.
        let n = ws.fns.len();
        let mut visited = vec![false; n];
        let mut pred: Vec<Option<(usize, u32)>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        visited[src_fn] = true;
        queue.push_back(src_fn);
        // The flow that fires: (entry fn holding tainted data, the sink
        // it feeds, the sink's kind label, Some(call line) when the
        // entry passes into the sink rather than being the sink).
        let mut flow: Option<(usize, usize, &'static str, Option<u32>)> = None;
        'bfs: while let Some(f) = queue.pop_front() {
            // The source fn itself being a sink (a wall-clock read in a
            // serializer's own body) is the tightest possible flow.
            if let Some(label) = is_sink(f) {
                flow = Some((f, f, label, None));
                break 'bfs;
            }
            // A tainted fn handing data into a sink it calls.
            for e in &ws.callees[f] {
                if let Some(label) = is_sink(e.to) {
                    flow = Some((f, e.to, label, Some(e.line)));
                    break 'bfs;
                }
            }
            for e in &ws.callers[f] {
                if !visited[e.to] {
                    visited[e.to] = true;
                    pred[e.to] = Some((f, e.line));
                    queue.push_back(e.to);
                }
            }
        }
        let Some((entry, sink, sink_label, via)) = flow else {
            continue;
        };
        // Trail: sink end first, then the call chain down to the source.
        let mut trail = Vec::new();
        if let Some(line) = via {
            trail.push(TrailStep {
                file: ws.path_of(entry).to_string(),
                line,
                note: format!(
                    "`{}` passes data into {sink_label} sink `{}`",
                    ws.fns[entry].item.qualified(),
                    ws.fns[sink].item.qualified()
                ),
            });
        } else {
            trail.push(TrailStep {
                file: ws.path_of(sink).to_string(),
                line: ws.fns[sink].item.line,
                note: format!(
                    "{sink_label} sink `{}` runs while tainted",
                    ws.fns[sink].item.qualified()
                ),
            });
        }
        let mut cur = entry;
        while let Some((callee, line)) = pred[cur] {
            trail.push(TrailStep {
                file: ws.path_of(cur).to_string(),
                line,
                note: format!(
                    "`{}` calls `{}`",
                    ws.fns[cur].item.qualified(),
                    ws.fns[callee].item.qualified()
                ),
            });
            cur = callee;
        }
        for (what, line) in sources {
            out.push(pass.finding(
                ws.path_of(src_fn),
                line,
                format!(
                    "nondeterminism source {what} in `{}` can flow into \
                     {sink_label} sink `{}`",
                    ws.fns[src_fn].item.qualified(),
                    ws.fns[sink].item.qualified()
                ),
                "derive the value deterministically (cycle counter, seed, ordered \
                 container), keep it out of serialized artifacts and event \
                 scheduling, or allow at the source with the reason the bytes \
                 stay stable",
                trail.clone(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// trace-schema-coverage
// ---------------------------------------------------------------------------

fn check_trace_schema_coverage(ws: &Workspace, pass: &Pass) -> Vec<Finding> {
    let mut out = Vec::new();
    for unit in &ws.files {
        for m in &unit.items.matches {
            if unit.source.is_test_line(m.line) {
                continue;
            }
            for enum_name in SCHEMA_ENUMS {
                let defs = ws.enums_named(enum_name);
                let Some((def_unit, def)) = defs.first() else {
                    continue;
                };
                let mentioned: Vec<&str> = m
                    .mentions
                    .iter()
                    .filter(|(q, v)| q == enum_name && def.variants.iter().any(|dv| dv == v))
                    .map(|(_, v)| v.as_str())
                    .collect();
                // A match naming 0 variants doesn't dispatch on the enum;
                // naming exactly 1 is a projection (`if let` in match
                // clothing). Two or more means schema dispatch: then every
                // variant must appear.
                if mentioned.len() < 2 || mentioned.len() >= def.variants.len() {
                    continue;
                }
                let missing: Vec<&str> = def
                    .variants
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !mentioned.contains(v))
                    .collect();
                out.push(pass.finding(
                    &unit.source.path,
                    m.line,
                    format!(
                        "match dispatches on `{enum_name}` but handles {} of {} \
                         variants (missing: {}){}",
                        mentioned.len(),
                        def.variants.len(),
                        missing.join(", "),
                        if m.has_wildcard {
                            "; the `_` arm will silently swallow new variants"
                        } else {
                            ""
                        },
                    ),
                    "name every variant explicitly (group don't-care arms as \
                     `A | B => …`) so adding a variant fails here instead of \
                     skipping an oracle",
                    vec![TrailStep {
                        file: def_unit.source.path.clone(),
                        line: def.line,
                        note: format!(
                            "`{enum_name}` defined here with {} variants",
                            def.variants.len()
                        ),
                    }],
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unordered-iteration (precise)
// ---------------------------------------------------------------------------

/// A binding resolved to an unordered container.
struct UnorderedBinding {
    /// `HashMap` or `HashSet`.
    container: &'static str,
    /// Where the type was established.
    decl_file: String,
    decl_line: u32,
    decl_what: String,
}

/// Container classification of a type/initializer token window.
fn classify(texts: impl Iterator<Item = String>) -> Option<&'static str> {
    // First known container name wins: `Option<HashMap<…>>` is a
    // HashMap for ordering purposes; `BTreeMap<K, HashSet<V>>` iterates
    // in key order at the top level, which is what the rule cares about.
    const ORDERED: &[&str] = &[
        "BTreeMap", "BTreeSet", "Vec", "VecDeque", "String", "str", "IndexMap", "slice",
    ];
    for t in texts {
        if t == "HashMap" {
            return Some("HashMap");
        }
        if t == "HashSet" {
            return Some("HashSet");
        }
        if ORDERED.contains(&t.as_str()) {
            return None;
        }
    }
    None
}

/// Resolves the declared type of the binding iterated at `site` in fn
/// `idx`, returning it only when it is an unordered container.
///
/// Resolution tiers:
/// 1. local bindings: the nearest preceding `let [mut] name …` in the
///    fn body, else a `name: Type` parameter;
/// 2. `self.name`: the enclosing impl type's struct field, resolved
///    workspace-wide (same file preferred);
/// 3. `other.name`: a field named `name` of any struct in the same file.
///
/// Anything unresolvable is skipped — this is the false-positive fix
/// over the old local-declaration heuristic, which flagged every
/// same-named binding in the file.
fn resolve_unordered(
    ws: &Workspace,
    idx: usize,
    site: &crate::items::IterSite,
) -> Option<UnorderedBinding> {
    let node = &ws.fns[idx];
    let unit = &ws.files[node.file];
    let tokens = &unit.source.tokens;
    if !site.via_self && !site.via_field {
        if let Some(b) = resolve_local(tokens, &node.item, &site.name, site.line, &unit.source.path)
        {
            return b;
        }
        return None;
    }
    let field_of = |s: &crate::items::StructItem| -> Option<Option<UnorderedBinding>> {
        let (_, ty) = s.fields.iter().find(|(n, _)| n == &site.name)?;
        Some(
            classify(ty.split_whitespace().map(str::to_string)).map(|container| UnorderedBinding {
                container,
                decl_file: unit.source.path.clone(),
                decl_line: s.line,
                decl_what: format!("field `{}` of `{}`", site.name, s.name),
            }),
        )
    };
    if site.via_self {
        let owner = node.item.owner.as_deref()?;
        let s = ws.struct_named(owner, node.file)?;
        // Resolve decl_file properly: the struct may live in another file.
        let (_, ty) = s.fields.iter().find(|(n, _)| n == &site.name)?;
        return classify(ty.split_whitespace().map(str::to_string)).map(|container| {
            UnorderedBinding {
                container,
                decl_file: struct_file(ws, owner, node.file)
                    .unwrap_or_else(|| unit.source.path.clone()),
                decl_line: s.line,
                decl_what: format!("field `{}` of `{}`", site.name, s.name),
            }
        });
    }
    // via_field: same-file structs only.
    for s in &unit.items.structs {
        if let Some(res) = field_of(s) {
            return res;
        }
    }
    None
}

/// The path of the file defining struct `name` (same preference order
/// as [`Workspace::struct_named`]).
fn struct_file(ws: &Workspace, name: &str, near_file: usize) -> Option<String> {
    let hits = ws.structs.get(name)?;
    let &(fi, _) = hits
        .iter()
        .find(|(fi, _)| *fi == near_file)
        .or_else(|| hits.first())?;
    Some(ws.files[fi].source.path.clone())
}

/// Tier 1: `let` statements in the body (nearest preceding the site
/// wins), then parameters. Returns `Some(None)` when the binding
/// resolves to an *ordered* type (definitely not a finding),
/// `Some(Some(_))` when unordered, `None` when undeclared here.
fn resolve_local(
    tokens: &[Token],
    item: &FnItem,
    name: &str,
    before_line: u32,
    path: &str,
) -> Option<Option<UnorderedBinding>> {
    let (b0, b1) = item.body;
    let body = &tokens[b0.min(tokens.len())..b1.min(tokens.len())];
    let mut best: Option<(u32, Option<&'static str>)> = None;
    for (k, t) in body.iter().enumerate() {
        if !t.is_ident("let") {
            continue;
        }
        let mut n = k + 1;
        if body.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        let Some(bind) = body.get(n).filter(|t| t.is_ident(name)) else {
            continue;
        };
        if bind.line > before_line {
            continue;
        }
        // Type annotation (`let m: HashMap<…>`) or initializer head
        // (`let m = HashMap::new()`): classify the tokens up to the
        // statement's `;`/`=` boundary.
        let window: Vec<String> = body[n + 1..]
            .iter()
            .take_while(|t| !t.is_punct(';'))
            .take(32)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        let class = classify(window.into_iter());
        match &best {
            Some((line, _)) if *line > bind.line => {}
            _ => best = Some((bind.line, class)),
        }
    }
    if best.is_none() {
        // Parameters: `name : Type` in the param list.
        let (p0, p1) = item.params;
        let params = &tokens[p0.min(tokens.len())..p1.min(tokens.len())];
        for (k, t) in params.iter().enumerate() {
            if t.is_ident(name)
                && params.get(k + 1).is_some_and(|c| c.is_punct(':'))
                && !params.get(k + 2).is_some_and(|c| c.is_punct(':'))
            {
                let window: Vec<String> = params[k + 2..]
                    .iter()
                    .take(32)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                best = Some((t.line, classify(window.into_iter())));
                break;
            }
        }
    }
    let (decl_line, class) = best?;
    Some(class.map(|container| UnorderedBinding {
        container,
        decl_file: path.to_string(),
        decl_line,
        decl_what: format!("`{name}` declared here"),
    }))
}

fn check_unordered_iteration(ws: &Workspace, pass: &Pass) -> Vec<Finding> {
    let mut out = Vec::new();
    for idx in 0..ws.fns.len() {
        let node = &ws.fns[idx];
        let path = ws.path_of(idx);
        for site in &node.item.iters {
            let Some(u) = resolve_unordered(ws, idx, site) else {
                continue;
            };
            let severity = if SIM_CORE.iter().any(|p| path.starts_with(p)) {
                Severity::Error
            } else {
                Severity::Warning
            };
            let how = if site.how == "for" {
                "for-loop over".to_string()
            } else {
                format!(".{}() on", site.how)
            };
            let mut f = pass.finding(
                path,
                site.line,
                format!(
                    "{how} `{}`, resolved to an unordered `{}`",
                    site.name, u.container
                ),
                "iterate a BTree collection or sort the items first",
                vec![TrailStep {
                    file: u.decl_file,
                    line: u.decl_line,
                    note: u.decl_what,
                }],
            );
            f.severity = severity;
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect())
    }

    fn run(ws: &Workspace, id: &str) -> Vec<Finding> {
        let passes = all_passes();
        let pass = passes.iter().find(|p| p.id == id).unwrap();
        pass.check(ws)
    }

    /// A minimal workspace where every root and sink resolves, so pass
    /// tests see no configuration-error findings.
    fn scaffold() -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "crates/sim/src/core.rs",
                "impl Machine { fn step(&mut self) { } fn schedule_wake_events(&mut self) { } \
                 fn event_valid(&self) { } }",
            ),
            (
                "crates/sim/src/calendar.rs",
                "impl Calendar { fn schedule(&mut self) { } }",
            ),
            (
                "crates/core/src/runner.rs",
                "fn run_pair_with_policy() { }\nfn run_scenario() { }\nfn serve() { }",
            ),
            (
                "crates/core/src/policy.rs",
                "impl FairnessPolicy { fn recalc(&mut self) {} fn on_switch_in(&mut self) {} \
                 fn on_switch_out(&mut self) {} fn after_retire(&mut self) {} \
                 fn each_cycle(&mut self) {} }",
            ),
            (
                "crates/core/src/policies/mod.rs",
                "impl IslipPolicy { fn pick_next(&mut self) {} fn each_cycle(&mut self) {} }\n\
                 impl UsageFairPolicy { fn pick_next(&mut self) {} fn each_cycle(&mut self) {} }\n\
                 impl WdrrPolicy { fn after_retire(&mut self) {} fn each_cycle(&mut self) {} }",
            ),
            (
                "crates/core/src/sinks.rs",
                "impl Journal { fn append(&mut self) {} }\n\
                 impl MetricsRegistry { fn to_csv(&self) {} }\n\
                 impl SloReport { fn build() {} }\n\
                 fn trace_jsonl() {}\nfn chrome_trace() {}\nfn trace_series() {}\n\
                 fn full_results() {}",
            ),
        ]
    }

    #[test]
    fn scaffold_is_clean() {
        let w = ws(&scaffold());
        assert!(run(&w, "panic-reachability").is_empty());
        assert!(run(&w, "determinism-taint").is_empty());
    }

    #[test]
    fn unresolved_root_is_a_configuration_error() {
        let mut files = scaffold();
        files[0] = (
            "crates/sim/src/core.rs",
            "impl Machine { fn renamed(&self) {} }",
        );
        let w = ws(&files);
        let fs = run(&w, "panic-reachability");
        assert!(fs
            .iter()
            .any(|f| f.message.contains("`Machine::step` does not resolve")));
    }

    #[test]
    fn reachable_panic_reports_the_call_path() {
        let mut files = scaffold();
        files[0] = (
            "crates/sim/src/core.rs",
            "impl Machine { fn step(&mut self) { tally(1); } \
             fn schedule_wake_events(&mut self) { } fn event_valid(&self) { } }",
        );
        files.push((
            "crates/stats/src/lib.rs",
            "fn tally(v: u64) { deep(v); }\nfn deep(v: u64) { let x = opt.unwrap(); }",
        ));
        let w = ws(&files);
        let fs = run(&w, "panic-reachability");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.file, "crates/stats/src/lib.rs");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("`.unwrap()`"), "{}", f.message);
        let notes: Vec<&str> = f.trail.iter().map(|s| s.note.as_str()).collect();
        assert!(notes[0].contains("hot-path root `Machine::step`"));
        assert!(notes[1].contains("`Machine::step` calls `tally`"));
        assert!(notes[2].contains("`tally` calls `deep`"));
    }

    #[test]
    fn unreachable_panic_is_not_reported() {
        let mut files = scaffold();
        files.push((
            "crates/stats/src/lib.rs",
            "fn cold() { x.unwrap(); }", // nothing on the hot path calls it
        ));
        let w = ws(&files);
        assert!(run(&w, "panic-reachability").is_empty());
    }

    #[test]
    fn taint_flows_from_source_through_caller_into_sink() {
        let mut files = scaffold();
        files.push((
            "crates/bench/src/lib.rs",
            "fn stamp() -> u64 { let t = Instant::now(); 0 }\n\
             fn collect() { let s = stamp(); full_results(); }",
        ));
        let w = ws(&files);
        let fs = run(&w, "determinism-taint");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.file, "crates/bench/src/lib.rs");
        assert_eq!(f.line, 1);
        assert!(f.message.contains("`Instant::now`"));
        assert!(f.message.contains("`full_results`"));
        let notes: Vec<&str> = f.trail.iter().map(|s| s.note.as_str()).collect();
        assert!(notes[0].contains("passes data into serialization sink `full_results`"));
        assert!(notes[1].contains("`collect` calls `stamp`"));
    }

    #[test]
    fn source_with_no_route_to_a_sink_is_clean() {
        let mut files = scaffold();
        files.push((
            "crates/bench/src/lib.rs",
            "fn watchdog() { let t = Instant::now(); }",
        ));
        let w = ws(&files);
        assert!(run(&w, "determinism-taint").is_empty());
    }

    #[test]
    fn tainted_sink_body_is_reported() {
        let mut files = scaffold();
        let sinks = files
            .iter()
            .position(|(p, _)| *p == "crates/core/src/sinks.rs")
            .unwrap();
        files[sinks] = (
            "crates/core/src/sinks.rs",
            "impl Journal { fn append(&mut self) { let t = now_ms(); } }\n\
             impl MetricsRegistry { fn to_csv(&self) {} }\n\
             impl SloReport { fn build() {} }\n\
             fn trace_jsonl() {}\nfn chrome_trace() {}\nfn trace_series() {}\n\
             fn full_results() {}\n\
             fn now_ms() -> u64 { let t = SystemTime::now(); 0 }",
        );
        let w = ws(&files);
        let fs = run(&w, "determinism-taint");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`SystemTime::now`"));
        assert!(fs[0].message.contains("`Journal::append`"));
    }

    #[test]
    fn partial_schema_match_is_reported_with_missing_variants() {
        let mut files = scaffold();
        files.push((
            "crates/sim/src/obs.rs",
            "pub enum EventKind { SwitchOut, SwitchIn, L2Miss }",
        ));
        files.push((
            "crates/core/src/export.rs",
            "fn label(k: EventKind) -> &'static str {\n\
             match k { EventKind::SwitchOut => \"out\", EventKind::SwitchIn => \"in\", _ => \"?\" }\n\
             }",
        ));
        let w = ws(&files);
        let fs = run(&w, "trace-schema-coverage");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.file, "crates/core/src/export.rs");
        assert!(f.message.contains("missing: L2Miss"), "{}", f.message);
        assert!(f.message.contains("swallow new variants"));
        assert_eq!(f.trail[0].file, "crates/sim/src/obs.rs");
    }

    #[test]
    fn full_and_single_variant_matches_are_clean() {
        let mut files = scaffold();
        files.push((
            "crates/sim/src/obs.rs",
            "pub enum EventKind { SwitchOut, SwitchIn }",
        ));
        files.push((
            "crates/core/src/export.rs",
            "fn full(k: EventKind) -> u8 { match k { EventKind::SwitchOut => 0, \
             EventKind::SwitchIn => 1 } }\n\
             fn project(k: EventKind) -> bool { match k { EventKind::SwitchIn => true, _ => false } }",
        ));
        let w = ws(&files);
        assert!(run(&w, "trace-schema-coverage").is_empty());
    }

    #[test]
    fn schema_matches_in_test_code_are_exempt() {
        let mut files = scaffold();
        files.push((
            "crates/sim/src/obs.rs",
            "pub enum EventKind { SwitchOut, SwitchIn, L2Miss }",
        ));
        files.push((
            "crates/core/tests/it.rs",
            "fn t(k: EventKind) -> u8 { match k { EventKind::SwitchOut => 0, \
             EventKind::SwitchIn => 1, _ => 2 } }",
        ));
        let w = ws(&files);
        assert!(run(&w, "trace-schema-coverage").is_empty());
    }

    #[test]
    fn unordered_iteration_resolves_let_param_and_field() {
        let w = ws(&[(
            "crates/bench/src/lib.rs",
            "struct S { m: HashMap<u64, u64>, v: Vec<u64> }\n\
             impl S { fn a(&self) { for k in &self.m {} for k in &self.v {} } }\n\
             fn b(m: &HashMap<u64, u64>) { m.keys().count(); }\n\
             fn c() { let mut m = HashMap::new(); m.iter().count(); }\n\
             fn d() { let m = BTreeMap::new(); m.iter().count(); }\n\
             fn e(other: &S) { other.m.iter().count(); }",
        )]);
        let fs = run(&w, "unordered-iteration");
        let lines: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert!(lines.contains(&2), "self.m via field: {fs:?}");
        assert!(lines.contains(&3), "param type: {fs:?}");
        assert!(lines.contains(&4), "let init head: {fs:?}");
        assert!(
            !fs.iter().any(|f| f.line == 5),
            "BTreeMap is ordered: {fs:?}"
        );
        assert!(lines.contains(&6), "other.m via same-file field: {fs:?}");
        // self.v (Vec) on line 2 must NOT fire: exactly one finding there.
        assert_eq!(lines.iter().filter(|&&l| l == 2).count(), 1);
        assert!(fs.iter().all(|f| f.severity == Severity::Warning));
        assert!(fs.iter().all(|f| !f.trail.is_empty()), "decl site in trail");
    }

    #[test]
    fn unordered_iteration_skips_unresolved_bindings() {
        // The old heuristic flagged any same-file name match; the
        // symbol-table version skips what it cannot resolve.
        let w = ws(&[(
            "crates/bench/src/lib.rs",
            "fn f() { let m = load(); m.iter().count(); }\n\
             fn g(m: &BTreeMap<u64, u64>) { m.iter().count(); }",
        )]);
        assert!(run(&w, "unordered-iteration").is_empty());
    }

    #[test]
    fn unordered_iteration_is_an_error_in_sim_core() {
        let w = ws(&[(
            "crates/sim/src/x.rs",
            "fn c() { let mut m = HashMap::new(); m.iter().count(); }",
        )]);
        let fs = run(&w, "unordered-iteration");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].severity, Severity::Error);
    }

    #[test]
    fn taint_into_calendar_scheduling_is_an_ordering_flow() {
        let mut files = scaffold();
        files.push((
            "crates/sim/src/backend/wake.rs",
            "fn jitter() -> u64 { let t = Instant::now(); 0 }\n\
             fn wake(cal: &mut Calendar) { let j = jitter(); cal.schedule(); }",
        ));
        let w = ws(&files);
        let fs = run(&w, "determinism-taint");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert!(
            f.message
                .contains("event-ordering sink `Calendar::schedule`"),
            "{}",
            f.message
        );
        let notes: Vec<&str> = f.trail.iter().map(|s| s.note.as_str()).collect();
        assert!(notes[0].contains("passes data into event-ordering sink"));
    }

    #[test]
    fn hash_iteration_counts_as_a_taint_source() {
        let mut files = scaffold();
        files.push((
            "crates/bench/src/lib.rs",
            "fn order() -> Vec<u64> { let m = HashMap::new(); m.keys().count(); Vec::new() }\n\
             fn emit() { let o = order(); full_results(); }",
        ));
        let w = ws(&files);
        let fs = run(&w, "determinism-taint");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("HashMap iteration over `m`"));
    }
}
