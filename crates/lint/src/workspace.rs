//! The workspace symbol table and over-approximate call graph.
//!
//! Built once per run from every parsed file, this is what lets the
//! analysis passes reason *across* files: a panic in `crates/stats` is
//! only interesting if the hot loop in `crates/sim` can reach it.
//!
//! # Resolution rules (deliberately over-approximate)
//!
//! soe-lint has no type information, so call edges resolve by name:
//!
//! - `Type::name(…)` — fns whose enclosing impl type is `Type`
//!   (`Self::` is rewritten to the enclosing impl type by the parser).
//!   An *unknown* capitalized qualifier (`Vec::new`) produces no edge:
//!   it names a type outside the workspace.
//! - `module::name(…)` — a lowercase qualifier is a module path; it
//!   falls back to every workspace fn named `name` (free or owned),
//!   because the module structure is not tracked.
//! - `name(…)` — every *free* fn named `name`.
//! - `receiver.name(…)` — every impl fn named `name` that takes `self`.
//!
//! The guarantee is one-sided: a call edge that exists in the compiled
//! program also exists here (no false negatives from resolution), at
//! the cost of extra edges when names collide. Reachability passes
//! therefore over-report, never under-report — the right bias for a
//! gate whose findings can be waived with a justified allow.
//!
//! Test code (whole-file test files, `#[cfg(test)]` items) is excluded
//! from the graph entirely: a panic reachable only from a test is the
//! test's business.

use std::collections::BTreeMap;

use crate::items::{parse_items, EnumItem, FnItem, ParsedItems, StructItem};
use crate::source::SourceFile;

/// One analyzed file: its source and the non-`fn` items parsed from it.
#[derive(Debug)]
pub struct FileUnit {
    /// The lexed source (path, tokens, comments, test ranges).
    pub source: SourceFile,
    /// Structs, enums and match sites (fns are hoisted into
    /// [`Workspace::fns`]).
    pub items: ParsedItems,
}

/// One function in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The parsed function.
    pub item: FnItem,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target (for `callees`) or source (for `callers`) fn index.
    pub to: usize,
    /// 1-based line of the call site, in the *calling* fn's file.
    pub line: u32,
}

/// The symbol table plus call graph for one workspace scan.
#[derive(Debug)]
pub struct Workspace {
    /// Every scanned file, in walk (sorted-path) order.
    pub files: Vec<FileUnit>,
    /// Every non-test function, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// fn name -> indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (owner, fn name) -> indices into `fns`.
    pub by_owner: BTreeMap<(String, String), Vec<usize>>,
    /// struct name -> (file index, index into that file's `structs`).
    pub structs: BTreeMap<String, Vec<(usize, usize)>>,
    /// enum name -> (file index, index into that file's `enums`).
    pub enums: BTreeMap<String, Vec<(usize, usize)>>,
    /// Outgoing call edges per fn (deduplicated by target, first call
    /// line wins — paths stay stable and minimal).
    pub callees: Vec<Vec<Edge>>,
    /// Incoming call edges per fn (to = caller index).
    pub callers: Vec<Vec<Edge>>,
}

impl Workspace {
    /// Builds the table and graph from parsed sources.
    pub fn build(sources: Vec<SourceFile>) -> Self {
        let mut files = Vec::with_capacity(sources.len());
        let mut fns: Vec<FnNode> = Vec::new();
        for (fi, source) in sources.into_iter().enumerate() {
            let mut items = parse_items(&source.tokens, &|line| source.is_test_line(line));
            for item in items.fns.drain(..) {
                if item.is_test {
                    continue;
                }
                fns.push(FnNode { file: fi, item });
            }
            files.push(FileUnit { source, items });
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, node) in fns.iter().enumerate() {
            by_name.entry(node.item.name.clone()).or_default().push(i);
            if let Some(owner) = &node.item.owner {
                by_owner
                    .entry((owner.clone(), node.item.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        let mut structs: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let mut enums: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, unit) in files.iter().enumerate() {
            for (si, s) in unit.items.structs.iter().enumerate() {
                structs.entry(s.name.clone()).or_default().push((fi, si));
            }
            for (ei, e) in unit.items.enums.iter().enumerate() {
                enums.entry(e.name.clone()).or_default().push((fi, ei));
            }
        }

        let mut callees: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        let mut callers: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (i, node) in fns.iter().enumerate() {
            for call in &node.item.calls {
                for &target in resolve_call(&by_name, &by_owner, &fns, call).iter() {
                    if callees[i].iter().all(|e| e.to != target) {
                        callees[i].push(Edge {
                            to: target,
                            line: call.line,
                        });
                        callers[target].push(Edge {
                            to: i,
                            line: call.line,
                        });
                    }
                }
            }
        }

        Self {
            files,
            fns,
            by_name,
            by_owner,
            structs,
            enums,
            callees,
            callers,
        }
    }

    /// Workspace-relative path of the file a fn lives in.
    pub fn path_of(&self, fn_idx: usize) -> &str {
        &self.files[self.fns[fn_idx].file].source.path
    }

    /// Resolves a display name — `Owner::name` or a bare `name` — to fn
    /// indices. A bare name matches free fns first, then (if none) any
    /// owned fn with that name.
    pub fn lookup(&self, name: &str) -> Vec<usize> {
        if let Some((owner, bare)) = name.split_once("::") {
            return self
                .by_owner
                .get(&(owner.to_string(), bare.to_string()))
                .cloned()
                .unwrap_or_default();
        }
        let all = self.by_name.get(name).cloned().unwrap_or_default();
        // `.get()` rather than indexing: sim code calls `.lookup()` on
        // BTBs and caches, so the over-approximate graph marks this fn
        // hot-path reachable — keep it genuinely panic-free.
        let free: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.fns.get(i).is_some_and(|n| n.item.owner.is_none()))
            .collect();
        if free.is_empty() {
            all
        } else {
            free
        }
    }

    /// The struct named `name`, preferring one defined in `near_file`
    /// (the usual case: a fn iterating `self.field` lives next to its
    /// type), else the first definition in walk order.
    pub fn struct_named(&self, name: &str, near_file: usize) -> Option<&StructItem> {
        let hits = self.structs.get(name)?;
        let &(fi, si) = hits
            .iter()
            .find(|(fi, _)| *fi == near_file)
            .or_else(|| hits.first())?;
        Some(&self.files[fi].items.structs[si])
    }

    /// All definitions of the enum named `name`, in walk order.
    pub fn enums_named(&self, name: &str) -> Vec<(&FileUnit, &EnumItem)> {
        self.enums
            .get(name)
            .map(|hits| {
                hits.iter()
                    .map(|&(fi, ei)| (&self.files[fi], &self.files[fi].items.enums[ei]))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Resolves one call site to target fn indices per the module-level
/// rules. Returns a borrowed or computed set.
fn resolve_call<'a>(
    by_name: &'a BTreeMap<String, Vec<usize>>,
    by_owner: &'a BTreeMap<(String, String), Vec<usize>>,
    fns: &[FnNode],
    call: &crate::items::CallSite,
) -> std::borrow::Cow<'a, [usize]> {
    use std::borrow::Cow;
    if let Some(q) = &call.qualifier {
        if let Some(hits) = by_owner.get(&(q.clone(), call.name.clone())) {
            return Cow::Borrowed(hits);
        }
        // Capitalized qualifier names a type; unknown type → outside the
        // workspace (Vec::new, String::from) → no edge. A lowercase
        // qualifier is a module path: fall back to every fn by name.
        if q.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Cow::Owned(Vec::new());
        }
        return Cow::Borrowed(
            by_name
                .get(&call.name)
                .map(Vec::as_slice)
                .unwrap_or_default(),
        );
    }
    let Some(hits) = by_name.get(&call.name) else {
        return Cow::Owned(Vec::new());
    };
    if call.is_method {
        // `.name(…)`: any impl fn taking self.
        Cow::Owned(
            hits.iter()
                .copied()
                .filter(|&i| fns[i].item.has_self && fns[i].item.owner.is_some())
                .collect(),
        )
    } else {
        // Bare `name(…)`: free fns only.
        Cow::Owned(
            hits.iter()
                .copied()
                .filter(|&i| fns[i].item.owner.is_none())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect())
    }

    #[test]
    fn cross_file_qualified_call_resolves() {
        let w = ws(&[
            (
                "crates/sim/src/core.rs",
                "impl Machine { fn step(&mut self) { Hist::push(1); } }",
            ),
            (
                "crates/stats/src/lib.rs",
                "impl Hist { fn push(v: u64) { helper(); } }\nfn helper() {}",
            ),
        ]);
        let step = w.lookup("Machine::step");
        assert_eq!(step.len(), 1);
        let push = w.lookup("Hist::push");
        assert_eq!(push.len(), 1);
        assert!(w.callees[step[0]].iter().any(|e| e.to == push[0]));
        let helper = w.lookup("helper");
        assert!(w.callees[push[0]].iter().any(|e| e.to == helper[0]));
        assert!(w.callers[helper[0]].iter().any(|e| e.to == push[0]));
    }

    #[test]
    fn method_calls_resolve_to_self_taking_fns_only() {
        let w = ws(&[(
            "crates/sim/src/a.rs",
            "impl A { fn go(&self) {} }\n\
             impl B { fn go() {} }\n\
             fn f(a: &A) { a.go(); }",
        )]);
        let f = w.lookup("f")[0];
        let a_go = w.lookup("A::go")[0];
        let b_go = w.lookup("B::go")[0];
        let targets: Vec<usize> = w.callees[f].iter().map(|e| e.to).collect();
        assert!(targets.contains(&a_go));
        assert!(!targets.contains(&b_go), "B::go takes no self");
    }

    #[test]
    fn unknown_type_qualifier_makes_no_edge() {
        let w = ws(&[(
            "crates/sim/src/a.rs",
            "fn new() {}\nfn f() { let v = Vec::new(); }",
        )]);
        let f = w.lookup("f")[0];
        assert!(
            w.callees[f].is_empty(),
            "Vec is not a workspace type; bare fn `new` must not match"
        );
    }

    #[test]
    fn module_qualifier_falls_back_to_name() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn f() { stats::summarize(1); }"),
            ("crates/b/src/lib.rs", "fn summarize(v: u64) {}"),
        ]);
        let f = w.lookup("f")[0];
        let s = w.lookup("summarize")[0];
        assert!(w.callees[f].iter().any(|e| e.to == s));
    }

    #[test]
    fn test_code_stays_out_of_the_graph() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { live(); }\n}",
            ),
            ("crates/a/tests/it.rs", "fn whole_file() { live(); }"),
        ]);
        assert!(w.lookup("t").is_empty());
        assert!(w.lookup("whole_file").is_empty());
        let live = w.lookup("live")[0];
        assert!(w.callers[live].is_empty());
    }

    #[test]
    fn bare_name_lookup_prefers_free_fns() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn run() {}\nimpl S { fn run(&self) {} }",
        )]);
        let hits = w.lookup("run");
        assert_eq!(hits.len(), 1);
        assert!(w.fns[hits[0]].item.owner.is_none());
        assert_eq!(w.lookup("S::run").len(), 1);
    }

    #[test]
    fn struct_and_enum_tables() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub struct S { m: HashMap<u64, u64> }\npub enum E { A, B }",
            ),
            ("crates/b/src/lib.rs", "pub struct S { other: u64 }"),
        ]);
        let near_a = w.struct_named("S", 0).unwrap();
        assert!(near_a.fields[0].1.contains("HashMap"));
        let near_b = w.struct_named("S", 1).unwrap();
        assert_eq!(near_b.fields[0].0, "other");
        assert_eq!(w.enums_named("E").len(), 1);
        assert_eq!(w.enums_named("E")[0].1.variants, vec!["A", "B"]);
    }
}
