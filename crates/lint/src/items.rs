//! A lightweight item parser on top of the lexer.
//!
//! The per-file rules only need token sequences; the workspace passes
//! (panic-reachability, determinism-taint, trace-schema coverage) need
//! *structure*: which functions exist, who owns them, what they call,
//! and where the panic / nondeterminism sites inside them are. This
//! module extracts exactly that — nothing more — from one file's token
//! stream:
//!
//! - `fn` items with their enclosing `impl` type (trait impls resolve to
//!   the `Self` type after `for`), signature, and brace-matched body;
//! - call expressions inside bodies: bare calls (`foo(`), qualified
//!   calls (`Type::foo(`, `module::foo(`), method calls (`.foo(`) and
//!   qualified fn references passed without parentheses (`Type::foo`);
//! - panic sites (`.unwrap()` / `.expect()`, panic-family macros,
//!   bracket indexing of a value);
//! - determinism-taint sources (`Instant::now`, `SystemTime::now`,
//!   `env::var*`, `RandomState`, `thread::current`);
//! - iteration sites over named bindings (`m.iter()`, `for x in &m`)
//!   together with enough local context (let-bindings, fn parameters,
//!   `self.` receivers) to resolve the binding's declared type;
//! - `struct` definitions with field names and type tokens, `enum`
//!   definitions with variant names, and `match` expressions with every
//!   `Enum::Variant` path mentioned in their body.
//!
//! The parser is deliberately over-approximate and total: it never
//! panics, never loops, and degrades to "fewer items found" on code it
//! does not understand — a linter must survive the code it is about to
//! complain about (the proptest in `tests/parser_proptest.rs` holds it
//! to that).

use crate::lexer::{Token, TokenKind};

/// Keywords that look like call heads or indexing bases but are not.
pub(crate) const NON_VALUE_KEYWORDS: &[&str] = &[
    "mut", "dyn", "in", "as", "return", "break", "continue", "else", "match", "impl", "ref",
    "move", "box", "where", "const", "static", "let", "fn", "pub", "use", "crate", "struct",
    "enum", "type", "trait", "unsafe", "extern", "if", "while", "for", "loop",
];

/// Keywords never treated as a called function name.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "unsafe",
    "else", "break", "continue", "where", "impl", "dyn", "ref", "mut", "pub", "use", "struct",
    "enum", "trait", "type", "const", "static", "crate", "super", "self", "Self", "box", "extern",
    "async", "await",
];

/// One call expression (or qualified fn reference) inside a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (`foo` in `foo(…)`, `Type::foo(…)`, `.foo(…)`).
    pub name: String,
    /// The path segment directly before `::name`, if any (`Type` or a
    /// module name; `Self` is rewritten to the enclosing impl type).
    pub qualifier: Option<String>,
    /// Whether the call is a method call (`receiver.foo(…)`).
    pub is_method: bool,
    /// 1-based line of the name token.
    pub line: u32,
}

/// How a panic site can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)`.
    Unwrap,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `value[index]` bracket indexing.
    Index,
}

/// One potential panic inside a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// The kind of panic path.
    pub kind: PanicKind,
    /// Short description for diagnostics (`.unwrap()`, `panic!`, `v[…]`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// A nondeterminism source inside a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSite {
    /// Short description (`Instant::now`, `env::var`, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// One iteration over a named binding (`name.iter()`, `for x in &name`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterSite {
    /// The iterated binding's name.
    pub name: String,
    /// Whether the binding is a `self.` field access.
    pub via_self: bool,
    /// Whether the binding is a field access of a non-`self` receiver
    /// (`x.map.iter()`), so only same-file struct fields can resolve it.
    pub via_field: bool,
    /// The iteration form (`iter`, `keys`, `for`, …) for the message.
    pub how: String,
    /// 1-based line.
    pub line: u32,
}

/// One parsed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// The enclosing inherent/trait-impl type, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the signature's first parameter is a form of `self`.
    pub has_self: bool,
    /// Whether the definition sits in test code (per the source file's
    /// test-line map) — test fns stay out of the call graph.
    pub is_test: bool,
    /// Half-open token range of the body (empty for trait declarations).
    pub body: (usize, usize),
    /// Half-open token range of the parameter list (inside the parens).
    pub params: (usize, usize),
    /// Calls and fn references inside the body.
    pub calls: Vec<CallSite>,
    /// Panic sites inside the body.
    pub panics: Vec<PanicSite>,
    /// Determinism-taint sources inside the body.
    pub taints: Vec<TaintSite>,
    /// Iteration sites inside the body.
    pub iters: Vec<IterSite>,
}

impl FnItem {
    /// `Owner::name` or the bare name.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed struct with its fields and their type tokens.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// `(field name, type tokens joined with spaces)`.
    pub fields: Vec<(String, String)>,
}

/// One parsed enum with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// One `match` expression and every `Enum::Variant` path inside it.
#[derive(Debug, Clone)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// `(enum-ish qualifier, variant-ish name)` pairs mentioned in the
    /// match body, deduplicated, in first-mention order.
    pub mentions: Vec<(String, String)>,
    /// Whether the match body contains a `_` wildcard or binding-only
    /// catch-all arm (informational; coverage requires explicit arms).
    pub has_wildcard: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedItems {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Structs, in source order.
    pub structs: Vec<StructItem>,
    /// Enums, in source order.
    pub enums: Vec<EnumItem>,
    /// Match expressions, in source order.
    pub matches: Vec<MatchSite>,
}

/// Parses the items of a token stream. `is_test_line` reports whether a
/// 1-based line is test code (see `SourceFile::is_test_line`).
pub fn parse_items(tokens: &[Token], is_test_line: &dyn Fn(u32) -> bool) -> ParsedItems {
    let mut out = ParsedItems::default();
    scan_block(tokens, 0, tokens.len(), None, is_test_line, &mut out, 0);
    out
}

/// Maximum `impl`/`mod` nesting the scanner follows (defensive bound so
/// pathological input cannot recurse unboundedly).
const MAX_DEPTH: usize = 64;

/// Scans `tokens[from..to]` for items, with `owner` as the enclosing
/// impl type (if any).
#[allow(clippy::too_many_arguments)]
fn scan_block(
    tokens: &[Token],
    from: usize,
    to: usize,
    owner: Option<&str>,
    is_test_line: &dyn Fn(u32) -> bool,
    out: &mut ParsedItems,
    depth: usize,
) {
    if depth > MAX_DEPTH {
        return;
    }
    let mut i = from;
    while i < to {
        let t = &tokens[i];
        if t.is_ident("impl") {
            // `impl<…> Type {` / `impl<…> Trait for Type {` — the owner
            // is the Self type (after `for` when present).
            let mut j = i + 1;
            // Skip generic parameters directly after `impl`.
            if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_angles(tokens, j, to);
            }
            let mut self_ty: Option<String> = None;
            let mut saw_for = false;
            while j < to && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("for") {
                    saw_for = true;
                    self_ty = None; // the trait name was not the owner
                } else if tokens[j].is_ident("where") {
                    break;
                } else if tokens[j].kind == TokenKind::Ident
                    && self_ty.is_none()
                    && !tokens[j].is_ident("dyn")
                    && !tokens[j].is_ident("mut")
                {
                    // First ident of the (trait or self) path; later path
                    // segments (`a::B`) overwrite so the final segment wins.
                    self_ty = Some(tokens[j].text.clone());
                } else if tokens[j].is_punct(':')
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens
                        .get(j + 2)
                        .is_some_and(|n| n.kind == TokenKind::Ident)
                {
                    self_ty = Some(tokens[j + 2].text.clone());
                    j += 2;
                } else if tokens[j].is_punct('<') {
                    j = skip_angles(tokens, j, to);
                    continue;
                }
                j += 1;
            }
            // Advance past `where` clauses to the body brace.
            while j < to && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                let end = match_brace(tokens, j, to);
                let _ = saw_for;
                scan_block(
                    tokens,
                    j + 1,
                    end.saturating_sub(1),
                    self_ty.as_deref(),
                    is_test_line,
                    out,
                    depth + 1,
                );
                i = end;
            } else {
                i = j + 1;
            }
        } else if t.is_ident("mod") && tokens.get(i + 2).is_some_and(|b| b.is_punct('{')) {
            // Inline module: descend with the same owner context cleared.
            let end = match_brace(tokens, i + 2, to);
            scan_block(
                tokens,
                i + 3,
                end.saturating_sub(1),
                None,
                is_test_line,
                out,
                depth + 1,
            );
            i = end;
        } else if t.is_ident("fn") {
            i = parse_fn(tokens, i, to, owner, is_test_line, out);
        } else if t.is_ident("struct") {
            i = parse_struct(tokens, i, to, out);
        } else if t.is_ident("enum") {
            i = parse_enum(tokens, i, to, out);
        } else {
            i += 1;
        }
    }
}

/// Parses one `fn` starting at the `fn` keyword at `i`; returns the
/// index to resume scanning from (past the body).
fn parse_fn(
    tokens: &[Token],
    i: usize,
    to: usize,
    owner: Option<&str>,
    is_test_line: &dyn Fn(u32) -> bool,
    out: &mut ParsedItems,
) -> usize {
    let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
        return i + 1;
    };
    let name = name_tok.text.clone();
    let line = tokens[i].line;
    // Find the parameter list: the first `(` before the body brace.
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j, to);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return i + 1;
    }
    let params_end = match_paren(tokens, j, to);
    let params = (j + 1, params_end.saturating_sub(1));
    // Clamp to a well-formed range: an unmatched `(` can leave the
    // recorded end before the start.
    let p_lo = params.0.min(to);
    let p_hi = params.1.min(to).max(p_lo);
    let has_self = tokens[p_lo..p_hi]
        .iter()
        .take(3)
        .any(|t| t.is_ident("self"));
    // Body: next `{` at depth 0 before a `;` (a `;` means a trait
    // declaration or extern item with no body).
    let mut k = params_end;
    let mut body = (params_end, params_end);
    while k < to {
        if tokens[k].is_punct(';') {
            break;
        }
        if tokens[k].is_punct('{') {
            let end = match_brace(tokens, k, to);
            body = (k + 1, end.saturating_sub(1));
            k = end;
            break;
        }
        k += 1;
    }
    let b_lo = body.0.min(to);
    let b_hi = body.1.min(to).max(b_lo);
    let body_tokens = &tokens[b_lo..b_hi];
    let base = b_lo;
    let calls = collect_calls(tokens, base, body_tokens.len(), owner);
    let panics = collect_panics(body_tokens);
    let taints = collect_taints(body_tokens);
    let iters = collect_iters(body_tokens);
    collect_matches(body_tokens, out);
    out.fns.push(FnItem {
        name,
        owner: owner.map(str::to_string),
        line,
        has_self,
        is_test: is_test_line(line),
        body,
        params,
        calls,
        panics,
        taints,
        iters,
    });
    k.max(i + 1)
}

/// Parses one `struct` starting at the keyword; returns the resume index.
fn parse_struct(tokens: &[Token], i: usize, to: usize, out: &mut ParsedItems) -> usize {
    let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
        return i + 1;
    };
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j, to);
    }
    // Tuple struct / unit struct: no named fields to record.
    if !tokens.get(j).is_some_and(|t| t.is_punct('{')) {
        out.structs.push(StructItem {
            name,
            line,
            fields: Vec::new(),
        });
        return j;
    }
    let end = match_brace(tokens, j, to);
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < end.saturating_sub(1) {
        let t = &tokens[k];
        if t.is_punct('#') {
            k = skip_attr_tokens(tokens, k, end);
            continue;
        }
        if t.is_ident("pub") {
            // `pub` or `pub(crate)`.
            k += 1;
            if tokens.get(k).is_some_and(|t| t.is_punct('(')) {
                k = match_paren(tokens, k, end);
            }
            continue;
        }
        if t.kind == TokenKind::Ident && tokens.get(k + 1).is_some_and(|c| c.is_punct(':')) {
            // Field: collect the type tokens up to `,` or the closing
            // brace at bracket depth 0.
            let fname = t.text.clone();
            let mut ty = Vec::new();
            let mut d = 0i32;
            let mut m = k + 2;
            while m < end.saturating_sub(1) {
                let tt = &tokens[m];
                if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                    d += 1;
                } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                    d -= 1;
                } else if tt.is_punct(',') && d <= 0 {
                    break;
                }
                ty.push(tt.text.clone());
                m += 1;
            }
            fields.push((fname, ty.join(" ")));
            k = m + 1;
            continue;
        }
        k += 1;
    }
    out.structs.push(StructItem { name, line, fields });
    end
}

/// Parses one `enum` starting at the keyword; returns the resume index.
fn parse_enum(tokens: &[Token], i: usize, to: usize, out: &mut ParsedItems) -> usize {
    let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
        return i + 1;
    };
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j, to);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('{')) {
        return j;
    }
    let end = match_brace(tokens, j, to);
    let mut variants = Vec::new();
    let mut k = j + 1;
    let mut expect_variant = true;
    let mut depth = 1i32;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('#') && depth == 1 {
            k = skip_attr_tokens(tokens, k, end);
            continue;
        }
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 1 {
            if expect_variant && t.kind == TokenKind::Ident {
                variants.push(t.text.clone());
                expect_variant = false;
            } else if t.is_punct(',') {
                expect_variant = true;
            }
        }
        k += 1;
    }
    out.enums.push(EnumItem {
        name,
        line,
        variants,
    });
    end
}

/// Collects call expressions from `tokens[base..base+len]` (a fn body).
/// `owner` rewrites `Self::` qualifiers.
fn collect_calls(tokens: &[Token], base: usize, len: usize, owner: Option<&str>) -> Vec<CallSite> {
    let mut out = Vec::new();
    let body = &tokens[base..(base + len).min(tokens.len())];
    for (k, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next_is = |c: char| body.get(k + 1).is_some_and(|n| n.is_punct(c));
        let prev_is = |c: char| k >= 1 && body[k - 1].is_punct(c);
        // Macro invocations are not fn calls (panic macros are panic
        // sites, handled separately).
        if next_is('!') {
            continue;
        }
        // Skip nested `fn` names (nested fns are registered separately).
        if k >= 1 && body[k - 1].is_ident("fn") {
            continue;
        }
        let qualified = prev_is(':') && k >= 2 && body[k - 2].is_punct(':');
        let qualifier = if qualified {
            body.get(k.wrapping_sub(3))
                .filter(|q| q.kind == TokenKind::Ident)
                .map(|q| {
                    if q.text == "Self" {
                        owner.unwrap_or("Self").to_string()
                    } else {
                        q.text.clone()
                    }
                })
        } else {
            None
        };
        let is_method = !qualified && prev_is('.');
        if next_is('(') {
            out.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method,
                line: t.line,
            });
        } else if qualified
            && qualifier.is_some()
            && !next_is(':')
            && !next_is('<')
            && !next_is('{')
        {
            // Qualified fn reference without parens (`map(Self::parse)`).
            // `Type::Name {` is a struct-variant literal, not a call.
            out.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method: false,
                line: t.line,
            });
        }
    }
    out
}

/// Collects panic sites from a body slice.
fn collect_panics(body: &[Token]) -> Vec<PanicSite> {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut out = Vec::new();
    for (k, t) in body.iter().enumerate() {
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && k >= 1
            && body[k - 1].is_punct('.')
            && body.get(k + 1).is_some_and(|p| p.is_punct('('))
        {
            out.push(PanicSite {
                kind: PanicKind::Unwrap,
                what: format!(".{}()", t.text),
                line: t.line,
            });
        }
        if t.kind == TokenKind::Ident
            && MACROS.contains(&t.text.as_str())
            && body.get(k + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(PanicSite {
                kind: PanicKind::Macro,
                what: format!("{}!", t.text),
                line: t.line,
            });
        }
        if t.is_punct('[') && k >= 1 {
            let prev = &body[k - 1];
            let indexes_value = (prev.kind == TokenKind::Ident
                && !NON_VALUE_KEYWORDS.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            let attr = prev.kind == TokenKind::Ident && k >= 2 && body[k - 2].is_punct('#');
            let mac = prev.is_punct(']') && k >= 2 && body[k - 2].is_punct('!');
            if indexes_value && !attr && !mac {
                let what = if prev.kind == TokenKind::Ident {
                    format!("{}[…]", prev.text)
                } else {
                    "…[…]".to_string()
                };
                out.push(PanicSite {
                    kind: PanicKind::Index,
                    what,
                    line: t.line,
                });
            }
        }
    }
    out
}

/// Collects determinism-taint sources from a body slice.
fn collect_taints(body: &[Token]) -> Vec<TaintSite> {
    let mut out = Vec::new();
    let path2 = |k: usize, a: &str, b: &str| {
        body[k].is_ident(a)
            && body.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && body.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && body.get(k + 3).is_some_and(|t| t.is_ident(b))
    };
    for k in 0..body.len() {
        let t = &body[k];
        if path2(k, "Instant", "now") {
            out.push(TaintSite {
                what: "Instant::now".into(),
                line: t.line,
            });
        } else if path2(k, "SystemTime", "now") {
            out.push(TaintSite {
                what: "SystemTime::now".into(),
                line: t.line,
            });
        } else if path2(k, "env", "var")
            || path2(k, "env", "var_os")
            || path2(k, "env", "vars")
            || path2(k, "env", "vars_os")
        {
            out.push(TaintSite {
                what: format!("env::{}", body[k + 3].text),
                line: t.line,
            });
        } else if t.is_ident("RandomState") {
            out.push(TaintSite {
                what: "RandomState".into(),
                line: t.line,
            });
        } else if path2(k, "thread", "current") {
            out.push(TaintSite {
                what: "thread::current".into(),
                line: t.line,
            });
        }
    }
    out
}

/// Methods whose receiver-iteration order matters.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Collects iteration sites from a body slice.
fn collect_iters(body: &[Token]) -> Vec<IterSite> {
    let mut out = Vec::new();
    for (k, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let preceded_by_self = k >= 2 && body[k - 1].is_punct('.') && body[k - 2].is_ident("self");
        let preceded_by_field = k >= 2
            && body[k - 1].is_punct('.')
            && body[k - 2].kind == TokenKind::Ident
            && !body[k - 2].is_ident("self");
        // `name.iter()` and friends.
        if body.get(k + 1).is_some_and(|n| n.is_punct('.'))
            && body.get(k + 2).is_some_and(|m| {
                m.kind == TokenKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && body.get(k + 3).is_some_and(|p| p.is_punct('('))
        {
            out.push(IterSite {
                name: t.text.clone(),
                via_self: preceded_by_self,
                via_field: preceded_by_field,
                how: body[k + 2].text.clone(),
                line: t.line,
            });
        }
        // `for x in name` / `for x in &name` / `for x in &mut name` /
        // `for x in &self.name`.
        if k >= 1 {
            let prev = &body[k - 1];
            let after_in = prev.is_ident("in")
                || (prev.is_punct('&') && k >= 2 && body[k - 2].is_ident("in"))
                || (prev.is_ident("mut")
                    && k >= 3
                    && body[k - 2].is_punct('&')
                    && body[k - 3].is_ident("in"));
            let self_in = preceded_by_self
                && k >= 3
                && (body[k - 3].is_ident("in")
                    || (body[k - 3].is_punct('&') && k >= 4 && body[k - 4].is_ident("in")));
            let not_more = !body.get(k + 1).is_some_and(|n| n.is_punct('.'));
            if (after_in || self_in) && not_more && !t.is_ident("self") {
                out.push(IterSite {
                    name: t.text.clone(),
                    via_self: self_in || preceded_by_self,
                    via_field: preceded_by_field && !preceded_by_self,
                    how: "for".into(),
                    line: t.line,
                });
            }
        }
    }
    out
}

/// Collects `match` expressions and the `Ident::Ident` paths inside them
/// from a body slice (nested matches are recorded separately too — the
/// inner mentions appear in both, which only widens coverage).
fn collect_matches(body: &[Token], out: &mut ParsedItems) {
    for (k, t) in body.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // Scrutinee runs to the first `{` at bracket depth 0.
        let mut j = k + 1;
        let mut d = 0i32;
        while j < body.len() {
            let tt = &body[j];
            if tt.is_punct('(') || tt.is_punct('[') {
                d += 1;
            } else if tt.is_punct(')') || tt.is_punct(']') {
                d -= 1;
            } else if tt.is_punct('{') && d <= 0 {
                break;
            }
            j += 1;
        }
        if j >= body.len() {
            continue;
        }
        let end = match_brace(body, j, body.len());
        let mut mentions: Vec<(String, String)> = Vec::new();
        let mut has_wildcard = false;
        let mut m = j + 1;
        while m + 3 < end {
            let q = &body[m];
            if q.kind == TokenKind::Ident
                && body[m + 1].is_punct(':')
                && body[m + 2].is_punct(':')
                && body[m + 3].kind == TokenKind::Ident
            {
                let pair = (q.text.clone(), body[m + 3].text.clone());
                if !mentions.contains(&pair) {
                    mentions.push(pair);
                }
                m += 4;
                continue;
            }
            if q.is_ident("_")
                && body.get(m + 1).is_some_and(|n| n.is_punct('='))
                && body.get(m + 2).is_some_and(|n| n.is_punct('>'))
            {
                has_wildcard = true;
            }
            m += 1;
        }
        out.matches.push(MatchSite {
            line: t.line,
            mentions,
            has_wildcard,
        });
    }
}

/// Returns the index just past the brace matching the `{` at `open`
/// (or `to` when unterminated).
fn match_brace(tokens: &[Token], open: usize, to: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < to {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    to
}

/// Returns the index just past the paren matching the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize, to: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < to {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    to
}

/// Skips a balanced `<…>` starting at `open` (returns `to` when
/// unterminated, and `open + 1` for a stray `<`).
fn skip_angles(tokens: &[Token], open: usize, to: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < to {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        } else if tokens[i].is_punct(';') || tokens[i].is_punct('{') {
            // Lost: `<` was a comparison, not generics.
            return open + 1;
        }
        i += 1;
    }
    to
}

/// Skips one `#[…]` attribute starting at the `#` at `i`.
fn skip_attr_tokens(tokens: &[Token], i: usize, to: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < to {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedItems {
        let lexed = lex(src);
        parse_items(&lexed.tokens, &|_| false)
    }

    #[test]
    fn free_fn_with_calls_and_panics() {
        let p = parse("fn f(x: u64) -> u64 { g(x); h.unwrap(); v[0] }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.owner, None);
        assert!(!f.has_self);
        assert!(f.calls.iter().any(|c| c.name == "g" && !c.is_method));
        // `.unwrap()` is recorded as a method call too — resolution
        // discards it (no workspace fn named unwrap), and the panic
        // site below is what the passes use.
        assert!(f.calls.iter().all(|c| c.name != "v"));
        assert_eq!(f.panics.len(), 2);
        assert_eq!(f.panics[0].kind, PanicKind::Unwrap);
        assert_eq!(f.panics[1].kind, PanicKind::Index);
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let p = parse(
            "impl Machine { fn step(&mut self) { self.issue(); Hierarchy::advance(1); } }\n\
             impl Display for SimError { fn fmt(&self) {} }",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qualified(), "Machine::step");
        assert!(p.fns[0].has_self);
        let calls = &p.fns[0].calls;
        assert!(calls.iter().any(|c| c.name == "issue" && c.is_method));
        assert!(calls
            .iter()
            .any(|c| c.name == "advance" && c.qualifier.as_deref() == Some("Hierarchy")));
        assert_eq!(
            p.fns[1].qualified(),
            "SimError::fmt",
            "trait impl owner is the Self type"
        );
    }

    #[test]
    fn generic_impl_and_self_qualifier() {
        let p = parse("impl<T: Clone> Pool<T> { fn spawn(&self) { Self::join(); } }");
        assert_eq!(p.fns[0].qualified(), "Pool::spawn");
        assert_eq!(p.fns[0].calls[0].qualifier.as_deref(), Some("Pool"));
    }

    #[test]
    fn struct_fields_and_types() {
        let p = parse("pub struct S { pub a: BTreeMap<String, u64>, b: Vec<u8> }");
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.structs[0].fields[0].0, "a");
        assert!(p.structs[0].fields[0].1.contains("BTreeMap"));
        assert_eq!(p.structs[0].fields[1].0, "b");
    }

    #[test]
    fn enum_variants_skip_payloads_and_attrs() {
        let p = parse("pub enum E { A, B { x: u64, y: Vec<u8> }, #[doc = \"d\"] C(u32), D = 4 }");
        assert_eq!(p.enums.len(), 1);
        assert_eq!(p.enums[0].variants, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn match_mentions_and_wildcards() {
        let p = parse("fn f(e: E) -> u32 { match e { E::A => 1, E::B { .. } => 2, _ => 0 } }");
        assert_eq!(p.matches.len(), 1);
        let m = &p.matches[0];
        assert!(m.has_wildcard);
        assert_eq!(
            m.mentions,
            vec![("E".into(), "A".into()), ("E".into(), "B".into())]
        );
    }

    #[test]
    fn taint_and_iter_sites() {
        let p = parse(
            "fn f(&self) { let t = Instant::now(); let v = std::env::var(\"X\"); \
             for k in &self.seen { } self.m.keys().count(); local.iter().sum() }",
        );
        let f = &p.fns[0];
        assert_eq!(f.taints.len(), 2);
        assert_eq!(f.taints[0].what, "Instant::now");
        assert_eq!(f.taints[1].what, "env::var");
        assert_eq!(f.iters.len(), 3);
        assert!(f.iters[0].via_self && f.iters[0].name == "seen");
        assert!(f.iters[1].via_self && f.iters[1].name == "m" && f.iters[1].how == "keys");
        assert!(!f.iters[2].via_self && f.iters[2].name == "local");
    }

    #[test]
    fn fn_reference_without_parens_is_a_call_edge() {
        let p = parse("fn f(xs: &[u8]) { xs.iter().map(Self::parse); }");
        // No owner: Self stays Self, but the edge exists.
        assert!(p.fns[0].calls.iter().any(|c| c.name == "parse"));
    }

    #[test]
    fn trait_declarations_have_empty_bodies() {
        let p = parse("trait T { fn required(&self) -> u64; fn provided(&self) -> u64 { 1 } }");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].body.0, p.fns[0].body.1);
        assert!(p.fns[1].body.1 > p.fns[1].body.0);
    }

    #[test]
    fn degenerate_input_does_not_panic() {
        for src in [
            "",
            "fn",
            "fn {",
            "impl {",
            "impl for {",
            "struct",
            "enum E {",
            "match {",
            "fn f( {",
            "impl<T Pool<T> { fn a() {} }",
            "}}}})))]]]",
        ] {
            let _ = parse(src);
        }
    }
}
