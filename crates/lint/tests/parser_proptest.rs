//! Property tests for the item parser: `parse_items` must be total.
//!
//! The parser runs over every source file in the workspace on every lint
//! invocation, including files that are mid-edit or syntactically broken.
//! It must therefore never panic and never fail to terminate, no matter
//! how malformed its input is. These properties drive it with two kinds
//! of garbage: arbitrary token streams assembled from the parser's own
//! vocabulary (deeply nested, unbalanced, truncated), and arbitrary
//! source text pushed through the real lexer first.

use proptest::prelude::*;

use soe_lint::items::parse_items;
use soe_lint::lexer::{lex, Token, TokenKind};

/// The vocabulary arbitrary streams are assembled from. Keywords and
/// punctuation the parser dispatches on are heavily represented so random
/// sequences actually exercise the item/match/call machinery rather than
/// being skipped as noise.
const VOCAB: &[(&str, TokenKind)] = &[
    ("fn", TokenKind::Ident),
    ("impl", TokenKind::Ident),
    ("struct", TokenKind::Ident),
    ("enum", TokenKind::Ident),
    ("match", TokenKind::Ident),
    ("mod", TokenKind::Ident),
    ("for", TokenKind::Ident),
    ("in", TokenKind::Ident),
    ("let", TokenKind::Ident),
    ("mut", TokenKind::Ident),
    ("self", TokenKind::Ident),
    ("Self", TokenKind::Ident),
    ("pub", TokenKind::Ident),
    ("where", TokenKind::Ident),
    ("unwrap", TokenKind::Ident),
    ("panic", TokenKind::Ident),
    ("iter", TokenKind::Ident),
    ("x", TokenKind::Ident),
    ("Foo", TokenKind::Ident),
    ("HashMap", TokenKind::Ident),
    ("{", TokenKind::Punct),
    ("}", TokenKind::Punct),
    ("(", TokenKind::Punct),
    (")", TokenKind::Punct),
    ("[", TokenKind::Punct),
    ("]", TokenKind::Punct),
    ("<", TokenKind::Punct),
    (">", TokenKind::Punct),
    (":", TokenKind::Punct),
    (";", TokenKind::Punct),
    (",", TokenKind::Punct),
    (".", TokenKind::Punct),
    ("!", TokenKind::Punct),
    ("#", TokenKind::Punct),
    ("=", TokenKind::Punct),
    ("&", TokenKind::Punct),
    ("-", TokenKind::Punct),
    ("\"s\"", TokenKind::Literal),
    ("0", TokenKind::Literal),
    ("'a", TokenKind::Lifetime),
];

fn token_at(vocab_idx: usize, line: u32) -> Token {
    let (text, kind) = VOCAB[vocab_idx % VOCAB.len()];
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

/// Characters for the lexer-roundtrip property: enough structure to form
/// real tokens, plus quote characters so unterminated literals appear.
const CHARS: &[char] = &[
    'f', 'n', ' ', '{', '}', '(', ')', '<', '>', ':', ';', '.', '!', '#', '\'', '"', '/', '\n',
    '0', 'a', '_', '=', '&', '[', ']', ',',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_items_is_total_on_arbitrary_token_streams(
        picks in prop::collection::vec((0usize..40, 1u32..=8), 0..120),
    ) {
        let tokens: Vec<Token> = picks
            .iter()
            .map(|&(v, line)| token_at(v, line))
            .collect();
        // Totality IS the property: no panic, no hang, for any stream —
        // including unbalanced braces, truncated items and nested garbage.
        let parsed = parse_items(&tokens, &|_| false);
        // Weak sanity bound so the result is actually consumed: the
        // parser cannot invent more items than tokens.
        prop_assert!(parsed.fns.len() <= tokens.len());
        prop_assert!(parsed.structs.len() + parsed.enums.len() <= tokens.len());
    }

    #[test]
    fn parse_items_is_total_on_lexed_garbage_source(
        picks in prop::collection::vec(0usize..26, 0..160),
    ) {
        let src: String = picks.iter().map(|&i| CHARS[i % CHARS.len()]).collect();
        let lexed = lex(&src);
        let parsed = parse_items(&lexed.tokens, &|_| false);
        prop_assert!(parsed.fns.len() <= lexed.tokens.len());
    }

    #[test]
    fn test_marker_callback_never_breaks_parsing(
        picks in prop::collection::vec((0usize..40, 1u32..=8), 0..80),
        parity in prop::bool::ANY,
    ) {
        let tokens: Vec<Token> = picks
            .iter()
            .map(|&(v, line)| token_at(v, line))
            .collect();
        // An adversarial is_test_line that flips per line must not change
        // totality (it only gates which fns are marked as tests).
        let parsed = parse_items(&tokens, &|line| (line % 2 == 0) == parity);
        prop_assert!(parsed.fns.len() <= tokens.len());
    }
}
