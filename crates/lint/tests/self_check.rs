//! The linter's own acceptance test: the workspace must be clean.
//!
//! This ties the determinism/panic-safety invariants into tier-1: any PR
//! that introduces a HashMap into the simulator, an unwrap into policy
//! code, or a bare `fs::write` anywhere fails `cargo test` before it
//! even reaches CI's dedicated lint job.

use std::path::{Path, PathBuf};

use soe_lint::baseline::Baseline;
use soe_lint::diag::{render_text, summarize, Waiver};
use soe_lint::engine::analyze_workspace;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

fn load_baseline(root: &Path) -> Baseline {
    let path = root.join("lint-baseline.txt");
    match std::fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).expect("baseline parses"),
        Err(_) => Baseline::default(),
    }
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let baseline = load_baseline(&root);
    let analysis = analyze_workspace(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        analysis.files > 50,
        "scan looks truncated: only {} files",
        analysis.files
    );
    if analysis.has_errors() {
        let summary = summarize(&analysis.findings, analysis.files);
        panic!(
            "soe-lint found errors:\n{}",
            render_text(&analysis.findings, summary, false)
        );
    }
}

#[test]
fn every_suppression_in_the_tree_is_justified() {
    // An allow comment with no reason after the rule list defeats the
    // point of suppressions-as-documentation. Enforce the
    // `allow(rule): reason` shape over the real tree.
    let root = workspace_root();
    let files = soe_lint::engine::workspace_files(&root).expect("walk");
    let mut unjustified = Vec::new();
    for path in files {
        let content = std::fs::read_to_string(&path).expect("read source");
        for (i, line) in content.lines().enumerate() {
            let Some(idx) = line.find("soe-lint: allow(") else {
                continue;
            };
            // Only actual suppression comments: nothing but whitespace
            // and comment punctuation before the marker. Doc prose and
            // string fixtures that merely mention the syntax don't
            // suppress anything and are skipped.
            if !line[..idx]
                .chars()
                .all(|c| c.is_whitespace() || matches!(c, '/' | '!' | '*'))
            {
                continue;
            }
            let rest = &line[idx..];
            // Reason = a colon after the closing paren, followed by
            // non-empty text.
            let ok = rest
                .find(')')
                .map(|close| {
                    let tail = rest[close + 1..].trim_start();
                    tail.starts_with(':') && !tail[1..].trim().is_empty()
                })
                .unwrap_or(false);
            if !ok {
                unjustified.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        unjustified.is_empty(),
        "suppressions without a `: reason` tail:\n  {}",
        unjustified.join("\n  ")
    );
}

#[test]
fn every_hot_path_root_and_sink_resolves() {
    // The workspace passes are anchored on named symbols. If a refactor
    // renames `Machine::step` or `Journal::append`, the passes would
    // silently analyze nothing — so resolution failures must fail tier-1,
    // not just surface as a config-error finding in CI.
    let root = workspace_root();
    let ws = soe_lint::engine::build_workspace(&root).expect("workspace builds");
    let mut unresolved = Vec::new();
    for name in soe_lint::HOT_PATH_ROOTS {
        if ws.lookup(name).is_empty() {
            unresolved.push(format!("hot-path root `{name}`"));
        }
    }
    for name in soe_lint::SERIALIZATION_SINKS {
        if ws.lookup(name).is_empty() {
            unresolved.push(format!("serialization sink `{name}`"));
        }
    }
    for name in soe_lint::SCHEMA_ENUMS {
        if ws.enums_named(name).is_empty() {
            unresolved.push(format!("schema enum `{name}`"));
        }
    }
    assert!(
        unresolved.is_empty(),
        "pass anchors no longer resolve (update crates/lint/src/passes.rs):\n  {}",
        unresolved.join("\n  ")
    );
}

#[test]
fn call_graph_covers_the_simulator_hot_path() {
    // A second guard against silent decay: the roots must actually reach
    // a healthy slice of the workspace. An empty reachable set would mean
    // the call-graph edges rotted even though the names still resolve.
    let root = workspace_root();
    let ws = soe_lint::engine::build_workspace(&root).expect("workspace builds");
    let mut reachable = 0usize;
    let mut seen = vec![false; ws.fns.len()];
    let mut stack: Vec<usize> = soe_lint::HOT_PATH_ROOTS
        .iter()
        .flat_map(|n| ws.lookup(n))
        .collect();
    while let Some(f) = stack.pop() {
        if std::mem::replace(&mut seen[f], true) {
            continue;
        }
        reachable += 1;
        stack.extend(ws.callees[f].iter().map(|e| e.to));
    }
    assert!(
        reachable > 100,
        "only {reachable} functions reachable from the hot-path roots; \
         the call graph looks disconnected"
    );
}

#[test]
fn baseline_if_present_has_no_stale_entries() {
    let root = workspace_root();
    let baseline = load_baseline(&root);
    let analysis = analyze_workspace(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        analysis.stale_baseline.is_empty(),
        "stale baseline entries (regenerate with --update-baseline): {:?}",
        analysis.stale_baseline
    );
    // The repo's goal state: nothing grandfathered at all.
    let baselined = analysis
        .findings
        .iter()
        .filter(|f| f.waiver == Waiver::Baselined)
        .count();
    assert_eq!(baselined, 0, "no findings should need the baseline");
}
