//! The three per-thread hardware counters of Section 3.1.

use soe_model::CounterSample;
use soe_sim::{Cycle, SwitchReason};

/// One thread's hardware counters: `Instrs`, `Cycles` and `Misses`,
/// maintained from the switch-policy callbacks exactly as the paper's
/// hardware would:
///
/// * `Instrs` counts retired instructions,
/// * `Cycles` counts from the retirement of the first instruction after
///   switch-in until switch-out (excluding switch overhead),
/// * `Misses` counts only last-level misses that caused a thread switch
///   (de-duplicating overlapped miss clusters).
///
/// # Examples
///
/// ```
/// use soe_core::HwCounters;
/// use soe_sim::SwitchReason;
///
/// let mut c = HwCounters::new();
/// c.on_switch_in();
/// c.after_retire(100);
/// c.after_retire(101);
/// c.on_switch_out(150, SwitchReason::MissEvent);
/// let s = c.sample();
/// assert_eq!(s.instrs, 2);
/// assert_eq!(s.cycles, 50);
/// assert_eq!(s.misses, 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct HwCounters {
    instrs: u64,
    cycles: u64,
    misses: u64,
    run_start: Option<Cycle>,
}

impl HwCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The thread has been switched in; `Cycles` accounting starts at its
    /// first retirement.
    pub fn on_switch_in(&mut self) {
        self.run_start = None;
    }

    /// An instruction retired at `now`.
    pub fn after_retire(&mut self, now: Cycle) {
        self.instrs += 1;
        if self.run_start.is_none() {
            self.run_start = Some(now);
        }
    }

    /// The thread was switched out at `now` for `reason`.
    pub fn on_switch_out(&mut self, now: Cycle, reason: SwitchReason) {
        if let Some(start) = self.run_start.take() {
            self.cycles += now - start;
        }
        if reason == SwitchReason::MissEvent {
            self.misses += 1;
        }
    }

    /// Cumulative counter reading.
    pub fn sample(&self) -> CounterSample {
        CounterSample {
            instrs: self.instrs,
            cycles: self.cycles,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_exclude_switch_overhead() {
        let mut c = HwCounters::new();
        c.on_switch_in();
        // First retirement at 130 although switch-in happened earlier:
        // refill latency is excluded.
        c.after_retire(130);
        c.on_switch_out(180, SwitchReason::Forced);
        assert_eq!(c.sample().cycles, 50);
        assert_eq!(c.sample().misses, 0, "forced switches are not misses");
    }

    #[test]
    fn switch_out_without_retirement_counts_nothing() {
        let mut c = HwCounters::new();
        c.on_switch_in();
        c.on_switch_out(500, SwitchReason::MissEvent);
        let s = c.sample();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.instrs, 0);
        assert_eq!(s.misses, 1, "the causing miss is still counted");
    }

    #[test]
    fn counters_accumulate_across_rounds() {
        let mut c = HwCounters::new();
        for round in 0..3u64 {
            c.on_switch_in();
            let base = round * 1_000;
            c.after_retire(base + 10);
            c.after_retire(base + 20);
            c.on_switch_out(base + 110, SwitchReason::MissEvent);
        }
        let s = c.sample();
        assert_eq!(s.instrs, 6);
        assert_eq!(s.cycles, 300);
        assert_eq!(s.misses, 3);
    }
}
