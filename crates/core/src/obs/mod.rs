//! Observability over the simulator's cycle-level event stream: a typed
//! metrics registry, exporters (compact JSONL, Chrome `trace_event`
//! JSON for Perfetto, CSV time series), and a trace validator.
//!
//! The recording side lives in [`soe_sim::obs`] — the event vocabulary
//! and the bounded ring buffer are simulator concerns — while this
//! module owns everything downstream of a finished
//! [`Trace`](soe_sim::obs::Trace): turning it into files humans and
//! machines read, and checking the invariants the mechanism promises
//! (cycle order, switch alternation, miss/fill pairing).
//!
//! Everything here obeys the workspace lint rules for `crates/core`
//! (no hash containers, no wall clock, no panic paths outside tests):
//! exports iterate in deterministic order and the validator returns
//! `Result` rather than asserting, so a corrupt trace surfaces as a
//! typed error a supervisor can report.

pub mod check;
pub mod export;
pub mod metrics;

pub use check::{check_events, check_jsonl, parse_jsonl, ParsedTrace, TraceSummary};
pub use export::{chrome_trace, trace_jsonl, trace_series};
pub use metrics::MetricsRegistry;

use soe_sim::SwitchReason;

/// Stable wire label of a switch reason (used by every exporter and the
/// parser, so the mapping cannot drift between them).
pub(crate) fn reason_label(reason: SwitchReason) -> &'static str {
    match reason {
        SwitchReason::MissEvent => "miss",
        SwitchReason::Forced => "forced",
        SwitchReason::Hint => "hint",
    }
}

/// Inverse of [`reason_label`].
pub(crate) fn parse_reason(label: &str) -> Option<SwitchReason> {
    match label {
        "miss" => Some(SwitchReason::MissEvent),
        "forced" => Some(SwitchReason::Forced),
        "hint" => Some(SwitchReason::Hint),
        _ => None,
    }
}

/// Formats an `f64` with Rust's shortest round-trip representation —
/// deterministic and `parse::<f64>()`-exact, which the CSV round-trip
/// and byte-identity guarantees rely on.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // No mechanism value is non-finite; still, never emit bare JSON
        // tokens like `inf` that a reader would reject.
        "null".to_string()
    }
}
