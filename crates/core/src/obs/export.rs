//! Trace exporters: compact JSONL, Chrome `trace_event` JSON, and CSV
//! time series.
//!
//! All three serializers are hand-written so the wire formats are fully
//! byte-stable: field order is fixed, floats use Rust's shortest
//! round-trip `Display`, and iteration orders are deterministic. Two
//! identical runs therefore produce byte-identical exports, which the
//! trace-invariant tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use soe_sim::obs::{EventKind, Trace};
use soe_stats::TimeSeries;

use crate::obs::{fmt_f64, reason_label};

/// Escapes a string for embedding inside JSON double quotes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes one event body (everything after the `"at"` field).
fn event_body(kind: &EventKind) -> String {
    match kind {
        EventKind::SwitchOut { tid, reason } => format!(
            "\"kind\":\"switch_out\",\"tid\":{},\"reason\":\"{}\"",
            tid.index(),
            reason_label(*reason)
        ),
        EventKind::SwitchIn { tid } => {
            format!("\"kind\":\"switch_in\",\"tid\":{}", tid.index())
        }
        EventKind::L2Miss { line } => format!("\"kind\":\"l2_miss\",\"line\":{line}"),
        EventKind::L2Fill { line } => format!("\"kind\":\"l2_fill\",\"line\":{line}"),
        EventKind::RetireSample { retired } => {
            format!("\"kind\":\"retire_sample\",\"retired\":{retired}")
        }
        EventKind::EstimatorUpdate { tid, ipc_st, quota } => format!(
            "\"kind\":\"estimator_update\",\"tid\":{},\"ipc_st\":{},\"quota\":{}",
            tid.index(),
            fmt_f64(*ipc_st),
            quota.map_or_else(|| "null".to_string(), fmt_f64),
        ),
        EventKind::DeficitGrant {
            tid,
            credited,
            balance,
            quota,
        } => format!(
            "\"kind\":\"deficit_grant\",\"tid\":{},\"credited\":{},\"balance\":{},\"quota\":{}",
            tid.index(),
            fmt_f64(*credited),
            fmt_f64(*balance),
            fmt_f64(*quota),
        ),
        EventKind::DeficitForce { tid } => {
            format!("\"kind\":\"deficit_force\",\"tid\":{}", tid.index())
        }
        EventKind::CycleQuotaExpiry { tid } => {
            format!("\"kind\":\"cycle_quota_expiry\",\"tid\":{}", tid.index())
        }
    }
}

/// Serializes a trace as compact JSONL: a header object on the first
/// line — schema tag, thread names, event and drop counts — then one
/// flat JSON object per event in cycle order.
///
/// The format is the machine-checking interchange: it round-trips
/// exactly through [`parse_jsonl`](crate::obs::parse_jsonl) and is what
/// `--trace <path>` writes and `tracecheck` validates.
pub fn trace_jsonl(trace: &Trace, threads: &[&str]) -> String {
    let names: Vec<String> = threads
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let mut out = format!(
        "{{\"schema\":\"soe-trace/1\",\"threads\":[{}],\"events\":{},\"dropped\":{}}}\n",
        names.join(","),
        trace.events.len(),
        trace.dropped,
    );
    for e in &trace.events {
        let _ = writeln!(out, "{{\"at\":{},{}}}", e.at, event_body(&e.kind));
    }
    out
}

/// Serializes a trace as Chrome `trace_event` JSON (the Perfetto /
/// `chrome://tracing` format).
///
/// Timestamps are simulated **cycles**, not microseconds — Perfetto
/// renders them fine; just read the time axis as cycles. The export
/// contains:
///
/// * one lane per thread plus a `memory` lane, named via `thread_name`
///   metadata events;
/// * a complete (`"X"`) occupancy slice per switch-in → switch-out
///   interval, with the switch-out reason in `args` (an interval still
///   open at trace end is dropped rather than guessed);
/// * instant (`"i"`) events for L2 misses and fills on the memory lane,
///   and for forced switches, quota expiries and estimator updates on
///   the owning thread's lane.
pub fn chrome_trace(trace: &Trace, threads: &[&str]) -> String {
    let mem_lane = threads.len();
    let mut records: Vec<String> = Vec::new();
    for (i, name) in threads.iter().enumerate() {
        records.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"args\":{{\"name\":\"T{i} {}\"}}}}",
            json_escape(name)
        ));
    }
    records.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{mem_lane},\"args\":{{\"name\":\"memory\"}}}}"
    ));
    // Open switch-in cycle per thread lane, keyed by thread index.
    let mut open: BTreeMap<usize, u64> = BTreeMap::new();
    let instant = |records: &mut Vec<String>, name: &str, ts: u64, lane: usize| {
        records.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{lane},\"s\":\"t\"}}"
        ));
    };
    for e in &trace.events {
        match e.kind {
            EventKind::SwitchIn { tid } => {
                open.insert(tid.index(), e.at);
            }
            EventKind::SwitchOut { tid, reason } => {
                if let Some(start) = open.remove(&tid.index()) {
                    records.push(format!(
                        "{{\"name\":\"run\",\"cat\":\"occupancy\",\"ph\":\"X\",\"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"reason\":\"{}\"}}}}",
                        e.at.saturating_sub(start),
                        tid.index(),
                        reason_label(reason),
                    ));
                }
            }
            EventKind::L2Miss { .. } => instant(&mut records, "l2_miss", e.at, mem_lane),
            EventKind::L2Fill { .. } => instant(&mut records, "l2_fill", e.at, mem_lane),
            EventKind::DeficitForce { tid } => {
                instant(&mut records, "deficit_force", e.at, tid.index())
            }
            EventKind::CycleQuotaExpiry { tid } => {
                instant(&mut records, "cycle_quota_expiry", e.at, tid.index())
            }
            EventKind::EstimatorUpdate { tid, .. } => {
                instant(&mut records, "estimator_update", e.at, tid.index())
            }
            EventKind::RetireSample { retired } => {
                records.push(format!(
                    "{{\"name\":\"retired\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"retired\":{retired}}}}}",
                    e.at
                ));
            }
            EventKind::DeficitGrant { .. } => {}
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", records.join(","))
}

/// Extracts plottable time series from a trace, in deterministic order:
/// the machine-wide `retired_total` counter, then per-thread
/// `est_ipc_st[Tj]` (estimator updates) and `deficit[Tj]` (post-grant
/// deficit balances), threads in index order.
///
/// Feed the result to `soe_stats::svg::line_chart` or flatten it with
/// [`series_to_csv`](soe_stats::series_to_csv).
pub fn trace_series(trace: &Trace) -> Vec<TimeSeries> {
    let mut retired = TimeSeries::new("retired_total");
    let mut est: BTreeMap<usize, TimeSeries> = BTreeMap::new();
    let mut deficit: BTreeMap<usize, TimeSeries> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::RetireSample { retired: r } => retired.push(e.at as f64, r as f64),
            EventKind::EstimatorUpdate { tid, ipc_st, .. } => est
                .entry(tid.index())
                .or_insert_with(|| TimeSeries::new(format!("est_ipc_st[{tid}]")))
                .push(e.at as f64, ipc_st),
            EventKind::DeficitGrant { tid, balance, .. } => deficit
                .entry(tid.index())
                .or_insert_with(|| TimeSeries::new(format!("deficit[{tid}]")))
                .push(e.at as f64, balance),
            // Scheduling and memory events carry no plottable value.
            EventKind::SwitchIn { .. }
            | EventKind::SwitchOut { .. }
            | EventKind::L2Miss { .. }
            | EventKind::L2Fill { .. }
            | EventKind::DeficitForce { .. }
            | EventKind::CycleQuotaExpiry { .. } => {}
        }
    }
    let mut out = vec![retired];
    out.extend(est.into_values());
    out.extend(deficit.into_values());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soe_sim::obs::TraceEvent;
    use soe_sim::{SwitchReason, ThreadId};

    fn sample_trace() -> Trace {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        Trace {
            events: vec![
                TraceEvent {
                    at: 0,
                    kind: EventKind::SwitchIn { tid: t0 },
                },
                TraceEvent {
                    at: 40,
                    kind: EventKind::L2Miss { line: 0x1240 },
                },
                TraceEvent {
                    at: 40,
                    kind: EventKind::SwitchOut {
                        tid: t0,
                        reason: SwitchReason::MissEvent,
                    },
                },
                TraceEvent {
                    at: 55,
                    kind: EventKind::SwitchIn { tid: t1 },
                },
                TraceEvent {
                    at: 55,
                    kind: EventKind::DeficitGrant {
                        tid: t1,
                        credited: 120.5,
                        balance: 120.5,
                        quota: 120.5,
                    },
                },
                TraceEvent {
                    at: 100,
                    kind: EventKind::RetireSample { retired: 180 },
                },
                TraceEvent {
                    at: 250,
                    kind: EventKind::EstimatorUpdate {
                        tid: t0,
                        ipc_st: 1.25,
                        quota: Some(321.0),
                    },
                },
                TraceEvent {
                    at: 250,
                    kind: EventKind::EstimatorUpdate {
                        tid: t1,
                        ipc_st: 0.5,
                        quota: None,
                    },
                },
                TraceEvent {
                    at: 340,
                    kind: EventKind::L2Fill { line: 0x1240 },
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn jsonl_has_header_then_one_line_per_event() {
        let text = trace_jsonl(&sample_trace(), &["gcc", "eon"]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        assert_eq!(
            lines[0],
            "{\"schema\":\"soe-trace/1\",\"threads\":[\"gcc\",\"eon\"],\"events\":9,\"dropped\":0}"
        );
        assert_eq!(lines[2], "{\"at\":40,\"kind\":\"l2_miss\",\"line\":4672}");
        assert!(lines[8].contains("\"quota\":null"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_escapes_thread_names() {
        let trace = Trace::default();
        let text = trace_jsonl(&trace, &["a\"b\\c"]);
        assert!(text.starts_with("{\"schema\":\"soe-trace/1\",\"threads\":[\"a\\\"b\\\\c\"]"));
    }

    #[test]
    fn chrome_trace_pairs_occupancy_slices() {
        let text = chrome_trace(&sample_trace(), &["gcc", "eon"]);
        // T0 ran cycles 0..40 and was switched out on a miss.
        assert!(text.contains(
            "{\"name\":\"run\",\"cat\":\"occupancy\",\"ph\":\"X\",\"ts\":0,\"dur\":40,\"pid\":0,\"tid\":0,\"args\":{\"reason\":\"miss\"}}"
        ));
        // T1's interval never closed: no slice, no panic.
        assert!(!text.contains("\"tid\":1,\"args\":{\"reason\""));
        assert!(text.contains("\"name\":\"thread_name\""));
        assert!(text.contains(
            "{\"name\":\"l2_miss\",\"ph\":\"i\",\"ts\":40,\"pid\":0,\"tid\":2,\"s\":\"t\"}"
        ));
    }

    #[test]
    fn series_extract_in_deterministic_order() {
        let series = trace_series(&sample_trace());
        let names: Vec<&str> = series.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "retired_total",
                "est_ipc_st[T0]",
                "est_ipc_st[T1]",
                "deficit[T1]"
            ]
        );
        assert_eq!(
            series[0].points(),
            &[soe_stats::Point { x: 100.0, y: 180.0 }]
        );
    }
}
