//! Trace validation: structural invariants over the event stream, and a
//! parser for the JSONL wire format so the same checks run on files.
//!
//! The invariants checked here are the ones the mechanism promises by
//! construction:
//!
//! * events are in non-decreasing cycle order;
//! * per thread, switch-out and switch-in events strictly alternate (a
//!   thread cannot leave a core it does not occupy);
//! * every L2 fill answers an earlier L2 miss of the same line, and no
//!   miss is left unfilled (only checkable when nothing was dropped);
//! * the cumulative retire samples never decrease.
//!
//! Violations return `Err` with a message naming the first offending
//! event — never a panic — so `tracecheck` and CI can report them.

use std::collections::BTreeMap;

use soe_sim::obs::{EventKind, Trace, TraceEvent};
use soe_sim::{Cycle, ThreadId};

use crate::obs::parse_reason;

/// Aggregates reported by a successful check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events checked.
    pub events: u64,
    /// Events the recorder dropped to honour its capacity bound.
    pub dropped: u64,
    /// Event counts by wire-format kind label.
    pub by_kind: BTreeMap<String, u64>,
    /// Cycle of the first event, if any.
    pub first_at: Option<Cycle>,
    /// Cycle of the last event, if any.
    pub last_at: Option<Cycle>,
}

/// Wire-format label of an event kind (matches the JSONL `"kind"`).
fn kind_label(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::SwitchOut { .. } => "switch_out",
        EventKind::SwitchIn { .. } => "switch_in",
        EventKind::L2Miss { .. } => "l2_miss",
        EventKind::L2Fill { .. } => "l2_fill",
        EventKind::RetireSample { .. } => "retire_sample",
        EventKind::EstimatorUpdate { .. } => "estimator_update",
        EventKind::DeficitGrant { .. } => "deficit_grant",
        EventKind::DeficitForce { .. } => "deficit_force",
        EventKind::CycleQuotaExpiry { .. } => "cycle_quota_expiry",
    }
}

/// Checks the structural invariants of an in-memory trace.
///
/// # Errors
///
/// A message naming the first violated invariant and the event index
/// where it happened.
pub fn check_events(trace: &Trace) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary {
        events: trace.events.len() as u64,
        dropped: trace.dropped,
        ..TraceSummary::default()
    };
    let mut prev_at: Option<Cycle> = None;
    // Per thread: was the last switch event a switch-in?
    let mut switched_in: BTreeMap<u8, bool> = BTreeMap::new();
    // Per line: misses seen but not yet filled.
    let mut outstanding: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_retired: Option<u64> = None;
    for (i, e) in trace.events.iter().enumerate() {
        if let Some(p) = prev_at {
            if e.at < p {
                return Err(format!(
                    "event {i}: cycle order violated ({} after {p})",
                    e.at
                ));
            }
        }
        prev_at = Some(e.at);
        *summary
            .by_kind
            .entry(kind_label(&e.kind).to_string())
            .or_insert(0) += 1;
        summary.first_at.get_or_insert(e.at);
        summary.last_at = Some(e.at);
        match e.kind {
            EventKind::SwitchIn { tid }
                if switched_in.insert(tid.index() as u8, true) == Some(true) =>
            {
                return Err(format!("event {i}: {tid} switched in twice in a row"));
            }
            EventKind::SwitchIn { .. } => {}
            // A leading switch-out is fine: the thread may have been
            // switched in before recording started (e.g. at machine
            // construction, or before a warm-up restart).
            EventKind::SwitchOut { tid, .. }
                if switched_in.insert(tid.index() as u8, false) == Some(false) =>
            {
                return Err(format!("event {i}: {tid} switched out twice in a row"));
            }
            EventKind::SwitchOut { .. } => {}
            EventKind::L2Miss { line } => {
                *outstanding.entry(line).or_insert(0) += 1;
            }
            EventKind::L2Fill { line } if trace.dropped == 0 => match outstanding.get_mut(&line) {
                Some(n) if *n > 0 => *n -= 1,
                _ => {
                    return Err(format!(
                        "event {i}: fill of line {line:#x} without an outstanding miss"
                    ))
                }
            },
            EventKind::RetireSample { retired } => {
                if let Some(prev) = last_retired {
                    if retired < prev {
                        return Err(format!(
                            "event {i}: retire sample decreased ({retired} after {prev})"
                        ));
                    }
                }
                last_retired = Some(retired);
            }
            // Fills in a lossy trace can't be matched to misses; the
            // remaining kinds carry no stream invariant of their own.
            EventKind::L2Fill { .. }
            | EventKind::EstimatorUpdate { .. }
            | EventKind::DeficitGrant { .. }
            | EventKind::DeficitForce { .. }
            | EventKind::CycleQuotaExpiry { .. } => {}
        }
    }
    if trace.dropped == 0 {
        if let Some((line, n)) = outstanding.iter().find(|(_, n)| **n > 0) {
            return Err(format!("{n} miss(es) of line {line:#x} never filled"));
        }
    }
    Ok(summary)
}

/// A trace parsed back from its JSONL serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// Thread names from the header, in thread-index order.
    pub threads: Vec<String>,
    /// The reconstructed events and drop count.
    pub trace: Trace,
}

/// Extracts the raw token following `"key":` in a flat JSON object.
///
/// Good enough for the trace wire format: objects are single-level, and
/// the only string values (`kind`, `reason`, `schema`) never contain
/// commas, braces or escapes.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest.get(..end)
}

/// Parses a numeric field.
fn num_field<T: std::str::FromStr>(line: &str, key: &str, lineno: usize) -> Result<T, String> {
    raw_field(line, key)
        .and_then(|raw| raw.parse::<T>().ok())
        .ok_or_else(|| format!("line {lineno}: missing or malformed \"{key}\""))
}

/// Parses a quoted string field (no escape handling — see [`raw_field`]).
fn str_field<'a>(line: &'a str, key: &str, lineno: usize) -> Result<&'a str, String> {
    raw_field(line, key)
        .and_then(|raw| raw.strip_prefix('"'))
        .and_then(|raw| raw.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: missing or malformed \"{key}\""))
}

/// Parses the header's `"threads":[...]` array of JSON strings,
/// unescaping `\"` and `\\`.
fn parse_threads(header: &str) -> Result<Vec<String>, String> {
    let start = header
        .find("\"threads\":[")
        .ok_or_else(|| "header: missing \"threads\"".to_string())?
        + "\"threads\":[".len();
    let rest = header
        .get(start..)
        .ok_or_else(|| "header: truncated \"threads\"".to_string())?;
    let mut names = Vec::new();
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            Some(']') => return Ok(names),
            Some(',') => {}
            Some('"') => {
                let mut name = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(c) => name.push(c),
                            None => return Err("header: unterminated escape".to_string()),
                        },
                        Some(c) => name.push(c),
                        None => return Err("header: unterminated thread name".to_string()),
                    }
                }
                names.push(name);
            }
            _ => return Err("header: malformed \"threads\" array".to_string()),
        }
    }
}

/// Parses one event line back into a [`TraceEvent`].
fn parse_event(line: &str, lineno: usize) -> Result<TraceEvent, String> {
    let at: Cycle = num_field(line, "at", lineno)?;
    let kind_label = str_field(line, "kind", lineno)?;
    let tid = |lineno| -> Result<ThreadId, String> {
        Ok(ThreadId::new(num_field::<u8>(line, "tid", lineno)?))
    };
    let kind = match kind_label {
        "switch_out" => EventKind::SwitchOut {
            tid: tid(lineno)?,
            reason: parse_reason(str_field(line, "reason", lineno)?)
                .ok_or_else(|| format!("line {lineno}: unknown switch reason"))?,
        },
        "switch_in" => EventKind::SwitchIn { tid: tid(lineno)? },
        "l2_miss" => EventKind::L2Miss {
            line: num_field(line, "line", lineno)?,
        },
        "l2_fill" => EventKind::L2Fill {
            line: num_field(line, "line", lineno)?,
        },
        "retire_sample" => EventKind::RetireSample {
            retired: num_field(line, "retired", lineno)?,
        },
        "estimator_update" => EventKind::EstimatorUpdate {
            tid: tid(lineno)?,
            ipc_st: num_field(line, "ipc_st", lineno)?,
            quota: match raw_field(line, "quota") {
                Some("null") => None,
                Some(raw) => Some(
                    raw.parse::<f64>()
                        .map_err(|_| format!("line {lineno}: malformed \"quota\""))?,
                ),
                None => return Err(format!("line {lineno}: missing \"quota\"")),
            },
        },
        "deficit_grant" => EventKind::DeficitGrant {
            tid: tid(lineno)?,
            credited: num_field(line, "credited", lineno)?,
            balance: num_field(line, "balance", lineno)?,
            quota: num_field(line, "quota", lineno)?,
        },
        "deficit_force" => EventKind::DeficitForce { tid: tid(lineno)? },
        "cycle_quota_expiry" => EventKind::CycleQuotaExpiry { tid: tid(lineno)? },
        other => return Err(format!("line {lineno}: unknown event kind {other:?}")),
    };
    Ok(TraceEvent { at, kind })
}

/// Parses the [`trace_jsonl`](crate::obs::trace_jsonl) wire format back
/// into a trace. Round-trips exactly: serializing the result reproduces
/// the input byte for byte.
///
/// # Errors
///
/// A message naming the first malformed line, a schema mismatch, or a
/// header whose declared event count disagrees with the body.
pub fn parse_jsonl(text: &str) -> Result<ParsedTrace, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| "empty trace file".to_string())?;
    let schema = str_field(header, "schema", 1)?;
    if schema != "soe-trace/1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let threads = parse_threads(header)?;
    let declared_events: u64 = num_field(header, "events", 1)?;
    let dropped: u64 = num_field(header, "dropped", 1)?;
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        events.push(parse_event(line, i + 2)?);
    }
    if events.len() as u64 != declared_events {
        return Err(format!(
            "header declares {declared_events} events but body has {}",
            events.len()
        ));
    }
    Ok(ParsedTrace {
        threads,
        trace: Trace { events, dropped },
    })
}

/// Parses and validates a JSONL trace in one step: wire-format
/// well-formedness, header consistency, thread-id bounds against the
/// header's thread list, then every [`check_events`] invariant.
///
/// # Errors
///
/// The first parse or invariant failure, as a descriptive message.
pub fn check_jsonl(text: &str) -> Result<TraceSummary, String> {
    let parsed = parse_jsonl(text)?;
    let threads = parsed.threads.len();
    for (i, e) in parsed.trace.events.iter().enumerate() {
        let tid = match e.kind {
            EventKind::SwitchOut { tid, .. }
            | EventKind::SwitchIn { tid }
            | EventKind::EstimatorUpdate { tid, .. }
            | EventKind::DeficitGrant { tid, .. }
            | EventKind::DeficitForce { tid }
            | EventKind::CycleQuotaExpiry { tid } => Some(tid),
            // Machine-wide events name no thread.
            EventKind::L2Miss { .. }
            | EventKind::L2Fill { .. }
            | EventKind::RetireSample { .. } => None,
        };
        if let Some(tid) = tid {
            if tid.index() >= threads {
                return Err(format!(
                    "event {i}: thread {tid} out of range (header lists {threads} threads)"
                ));
            }
        }
    }
    check_events(&parsed.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::trace_jsonl;
    use soe_sim::SwitchReason;

    fn ev(at: Cycle, kind: EventKind) -> TraceEvent {
        TraceEvent { at, kind }
    }

    fn valid_trace() -> Trace {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        Trace {
            events: vec![
                ev(0, EventKind::SwitchIn { tid: t0 }),
                ev(40, EventKind::L2Miss { line: 0x40 }),
                ev(
                    40,
                    EventKind::SwitchOut {
                        tid: t0,
                        reason: SwitchReason::MissEvent,
                    },
                ),
                ev(55, EventKind::SwitchIn { tid: t1 }),
                ev(
                    55,
                    EventKind::DeficitGrant {
                        tid: t1,
                        credited: 10.0,
                        balance: 10.0,
                        quota: 10.0,
                    },
                ),
                ev(100, EventKind::RetireSample { retired: 60 }),
                ev(200, EventKind::RetireSample { retired: 130 }),
                ev(340, EventKind::L2Fill { line: 0x40 }),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn valid_trace_passes_and_summarizes() {
        let s = check_events(&valid_trace()).unwrap();
        assert_eq!(s.events, 8);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.by_kind.get("retire_sample"), Some(&2));
        assert_eq!(s.first_at, Some(0));
        assert_eq!(s.last_at, Some(340));
    }

    #[test]
    fn cycle_order_violation_is_reported() {
        let mut t = valid_trace();
        t.events.swap(5, 7);
        let err = check_events(&t).unwrap_err();
        assert!(err.contains("cycle order"), "{err}");
    }

    #[test]
    fn double_switch_in_is_reported() {
        let t0 = ThreadId::new(0);
        let t = Trace {
            events: vec![
                ev(0, EventKind::SwitchIn { tid: t0 }),
                ev(10, EventKind::SwitchIn { tid: t0 }),
            ],
            dropped: 0,
        };
        let err = check_events(&t).unwrap_err();
        assert!(err.contains("switched in twice"), "{err}");
    }

    #[test]
    fn leading_switch_out_is_tolerated() {
        // The thread occupying the core when recording starts produces a
        // switch-out with no recorded switch-in.
        let t0 = ThreadId::new(0);
        let t = Trace {
            events: vec![
                ev(
                    10,
                    EventKind::SwitchOut {
                        tid: t0,
                        reason: SwitchReason::MissEvent,
                    },
                ),
                ev(20, EventKind::SwitchIn { tid: t0 }),
            ],
            dropped: 0,
        };
        assert!(check_events(&t).is_ok());
    }

    #[test]
    fn unfilled_miss_is_reported_only_without_drops() {
        let mut t = Trace {
            events: vec![ev(40, EventKind::L2Miss { line: 0x80 })],
            dropped: 0,
        };
        assert!(check_events(&t).unwrap_err().contains("never filled"));
        // With drops, the matching fill may have been discarded: no error.
        t.dropped = 1;
        assert!(check_events(&t).is_ok());
    }

    #[test]
    fn orphan_fill_is_reported() {
        let t = Trace {
            events: vec![ev(40, EventKind::L2Fill { line: 0x80 })],
            dropped: 0,
        };
        assert!(check_events(&t)
            .unwrap_err()
            .contains("without an outstanding miss"));
    }

    #[test]
    fn decreasing_retire_sample_is_reported() {
        let t = Trace {
            events: vec![
                ev(100, EventKind::RetireSample { retired: 50 }),
                ev(200, EventKind::RetireSample { retired: 40 }),
            ],
            dropped: 0,
        };
        assert!(check_events(&t).unwrap_err().contains("decreased"));
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let trace = valid_trace();
        let text = trace_jsonl(&trace, &["gcc", "eon"]);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.threads, vec!["gcc", "eon"]);
        assert_eq!(parsed.trace, trace);
        assert_eq!(trace_jsonl(&parsed.trace, &["gcc", "eon"]), text);
    }

    #[test]
    fn check_jsonl_accepts_the_exporter_output() {
        let text = trace_jsonl(&valid_trace(), &["gcc", "eon"]);
        let s = check_jsonl(&text).unwrap();
        assert_eq!(s.events, 8);
    }

    #[test]
    fn check_jsonl_rejects_corruption() {
        let good = trace_jsonl(&valid_trace(), &["gcc", "eon"]);
        // Header/body mismatch.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.pop();
        assert!(check_jsonl(&lines.join("\n"))
            .unwrap_err()
            .contains("declares"));
        // Unknown kind.
        let garbled = good.replace("retire_sample", "retire_sampel");
        assert!(check_jsonl(&garbled)
            .unwrap_err()
            .contains("unknown event kind"));
        // Thread id beyond the header's list.
        let bad_tid = good.replace("\"tid\":1", "\"tid\":7");
        assert!(check_jsonl(&bad_tid).unwrap_err().contains("out of range"));
        // Wrong schema.
        let bad_schema = good.replace("soe-trace/1", "soe-trace/9");
        assert!(check_jsonl(&bad_schema)
            .unwrap_err()
            .contains("unsupported schema"));
        // Empty input.
        assert!(check_jsonl("").is_err());
    }
}
