//! A typed counters/gauges metrics registry with a CSV wire format.
//!
//! Counters are monotone `u64` totals (events, switches, cycles);
//! gauges are `f64` point-in-time values (fairness, IPC). Backed by
//! `BTreeMap` so iteration — and therefore the CSV export — is
//! deterministic.

use std::collections::BTreeMap;

use soe_sim::obs::{EventKind, Trace};

use crate::metrics::PairRun;
use crate::obs::fmt_f64;

/// The registry: named counters and gauges.
///
/// # Examples
///
/// ```
/// use soe_core::obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.inc("events.l2_miss", 3);
/// m.set_gauge("fairness", 0.82);
/// let csv = m.to_csv();
/// assert_eq!(MetricsRegistry::from_csv(&csv).unwrap(), m);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a counter (`None` if never incremented).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Number of entries (counters + gauges).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len()
    }

    /// Whether the registry holds no entries.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges overwrite.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
    }

    /// Serializes as `kind,name,value` CSV with a header row, sorted by
    /// name within each kind — byte-stable for identical contents.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{k},{v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge,{k},{}\n", fmt_f64(*v)));
        }
        out
    }

    /// Parses the [`MetricsRegistry::to_csv`] format. Round-trips
    /// exactly: counters are integers and gauges use the shortest
    /// `f64` representation.
    ///
    /// # Errors
    ///
    /// A descriptive message naming the first malformed line.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "kind,name,value")) => {}
            other => {
                return Err(format!(
                    "metrics csv: expected header 'kind,name,value', got {:?}",
                    other.map(|(_, l)| l)
                ))
            }
        }
        let mut reg = Self::new();
        for (i, line) in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ',');
            let (kind, name, value) = match (parts.next(), parts.next(), parts.next()) {
                (Some(k), Some(n), Some(v)) => (k, n, v),
                _ => return Err(format!("metrics csv line {}: expected 3 fields", i + 1)),
            };
            match kind {
                "counter" => {
                    let v = value.parse::<u64>().map_err(|_| {
                        format!("metrics csv line {}: bad counter {value:?}", i + 1)
                    })?;
                    reg.counters.insert(name.to_string(), v);
                }
                "gauge" => {
                    let v = value
                        .parse::<f64>()
                        .map_err(|_| format!("metrics csv line {}: bad gauge {value:?}", i + 1))?;
                    reg.gauges.insert(name.to_string(), v);
                }
                _ => return Err(format!("metrics csv line {}: unknown kind {kind:?}", i + 1)),
            }
        }
        Ok(reg)
    }
}

/// Event-stream aggregates: total events, drops, per-kind counts, and
/// per-thread switch activity.
pub fn from_trace(trace: &Trace) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.inc("trace.events", trace.events.len() as u64);
    m.inc("trace.dropped", trace.dropped);
    for e in &trace.events {
        let (kind, tid) = match e.kind {
            EventKind::SwitchOut { tid, .. } => ("switch_out", Some(tid)),
            EventKind::SwitchIn { tid } => ("switch_in", Some(tid)),
            EventKind::L2Miss { .. } => ("l2_miss", None),
            EventKind::L2Fill { .. } => ("l2_fill", None),
            EventKind::RetireSample { .. } => ("retire_sample", None),
            EventKind::EstimatorUpdate { tid, .. } => ("estimator_update", Some(tid)),
            EventKind::DeficitGrant { tid, .. } => ("deficit_grant", Some(tid)),
            EventKind::DeficitForce { tid } => ("deficit_force", Some(tid)),
            EventKind::CycleQuotaExpiry { tid } => ("cycle_quota_expiry", Some(tid)),
        };
        m.inc(&format!("events.{kind}"), 1);
        if let Some(tid) = tid {
            m.inc(&format!("thread.{tid}.{kind}"), 1);
        }
    }
    m
}

/// A pair run's aggregates as registry entries (counters for totals,
/// gauges for derived metrics).
pub fn from_pair_run(run: &PairRun) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.inc("run.cycles", run.cycles);
    m.inc("run.total_switches", run.total_switches);
    m.inc("run.event_switches", run.event_switches);
    m.inc("run.forced_switches", run.forced_switches);
    m.set_gauge("run.fairness", run.fairness);
    m.set_gauge("run.throughput", run.throughput);
    m.set_gauge("run.weighted_speedup", run.weighted_speedup);
    m.set_gauge("run.avg_switch_latency", run.avg_switch_latency);
    for (i, t) in run.threads.iter().enumerate() {
        m.inc(&format!("thread.T{i}.retired"), t.retired);
        m.set_gauge(&format!("thread.T{i}.ipc_soe"), t.ipc_soe);
        m.set_gauge(&format!("thread.T{i}.ipc_st"), t.ipc_st);
        m.set_gauge(&format!("thread.T{i}.speedup"), t.speedup);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use soe_sim::obs::TraceEvent;
    use soe_sim::ThreadId;

    #[test]
    fn counters_add_and_gauges_overwrite_on_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 2);
        a.set_gauge("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.inc("n", 3);
        b.set_gauge("g", 2.5);
        a.merge(&b);
        assert_eq!(a.counter("n"), Some(5));
        assert_eq!(a.gauge("g"), Some(2.5));
    }

    #[test]
    fn csv_round_trips_exactly() {
        let mut m = MetricsRegistry::new();
        m.inc("run.cycles", 1_200_000);
        m.set_gauge("run.fairness", 1.0 / 3.0);
        m.set_gauge("thread.T0.ipc_st", 2.0f64.sqrt());
        let csv = m.to_csv();
        let back = MetricsRegistry::from_csv(&csv).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_csv(), csv, "re-serialization is byte-identical");
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(MetricsRegistry::from_csv("").is_err());
        assert!(MetricsRegistry::from_csv("bogus header\n").is_err());
        assert!(MetricsRegistry::from_csv("kind,name,value\ncounter,x\n").is_err());
        assert!(MetricsRegistry::from_csv("kind,name,value\ncounter,x,1.5\n").is_err());
        assert!(MetricsRegistry::from_csv("kind,name,value\nblob,x,1\n").is_err());
    }

    #[test]
    fn trace_metrics_count_by_kind_and_thread() {
        let t0 = ThreadId::new(0);
        let trace = Trace {
            events: vec![
                TraceEvent {
                    at: 1,
                    kind: EventKind::SwitchIn { tid: t0 },
                },
                TraceEvent {
                    at: 2,
                    kind: EventKind::L2Miss { line: 0x40 },
                },
                TraceEvent {
                    at: 300,
                    kind: EventKind::L2Fill { line: 0x40 },
                },
            ],
            dropped: 0,
        };
        let m = from_trace(&trace);
        assert_eq!(m.counter("trace.events"), Some(3));
        assert_eq!(m.counter("events.switch_in"), Some(1));
        assert_eq!(m.counter("thread.T0.switch_in"), Some(1));
        assert_eq!(m.counter("events.l2_miss"), Some(1));
        assert_eq!(m.counter("events.l2_fill"), Some(1));
    }
}
