//! Weighted deficit round-robin — NoC-style fixed-quantum scheduling.

use soe_model::weighted::Weights;
use soe_sim::{Cycle, SwitchDecision, SwitchPolicy, ThreadId};

use crate::deficit::DeficitCounter;

/// Weighted deficit round-robin over hardware contexts, in the style of
/// fair packet scheduling on a network-on-chip link (PAPERS.md: "Fair
/// Packet Scheduling in NoC"): each context owns a
/// [`DeficitCounter`] credited with a *fixed* per-thread quantum
/// `base_quantum × wᵢ` (normalized so the mean quantum equals the base)
/// on switch-in and debited one per retired instruction; exhaustion
/// forces the switch. Visit order is the machine's plain rotation —
/// DRR's "visit every queue in turn".
///
/// The contrast with the paper's [`FairnessPolicy`](crate::FairnessPolicy)
/// is the quantum's origin: WDRR fixes it up front (service is
/// proportional to weight in *instructions*), while the paper
/// continuously re-derives per-thread quotas from stand-alone IPC
/// estimates (service is proportional in *speedup*). A cycle guard
/// bounds occupancy so an ultra-low-IPC context cannot stretch its
/// quantum into starvation of the others.
#[derive(Debug, Clone)]
pub struct WdrrPolicy {
    deficits: Vec<DeficitCounter>,
    /// Per-thread instruction quanta (weight-proportional).
    quanta: Vec<f64>,
    /// Occupancy bound in cycles (safety guard, DRR's "max cell time").
    cycle_guard: u64,
    switch_in_at: Cycle,
    /// Instructions debited since the last measurement-window reset;
    /// conservation-checked against machine retire counts.
    debited: u64,
    /// Quantum-exhaustion forced switches since the last reset.
    forced_by_deficit: u64,
    /// Cycle-guard forced switches since the last reset.
    forced_by_guard: u64,
    name: String,
}

impl WdrrPolicy {
    /// Creates the scheduler for `threads` contexts. `base_quantum` is
    /// the mean instructions-per-turn; `weights` (defaulting to
    /// uniform) scale it per thread; `cap` is the banked-leftover cap
    /// multiple; `cycle_guard` bounds occupancy in cycles. Degenerate
    /// arguments are clamped (quantum ≥ 1 instruction, cap ≥ 1, guard
    /// ≥ 1 cycle) rather than rejected: construction goes through
    /// [`PolicySpec::check`](crate::PolicySpec::check), which validates
    /// sizing before any builder runs.
    pub fn new(
        threads: usize,
        base_quantum: f64,
        weights: Option<&Weights>,
        cap: f64,
        cycle_guard: u64,
    ) -> Self {
        let threads = threads.max(1);
        let base = if base_quantum.is_finite() && base_quantum >= 1.0 {
            base_quantum
        } else {
            1.0
        };
        let cap = if cap.is_finite() && cap >= 1.0 {
            cap
        } else {
            1.0
        };
        let cycle_guard = cycle_guard.max(1);
        // Normalize weights to mean 1 so the roster's aggregate quantum
        // is `threads × base` regardless of the weight scale.
        let raw: Vec<f64> = match weights {
            Some(w) => (0..threads)
                .map(|i| w.as_slice().get(i).copied().unwrap_or(1.0))
                .collect(),
            None => vec![1.0; threads],
        };
        let mean = raw.iter().sum::<f64>() / threads as f64;
        let quanta: Vec<f64> = raw
            .iter()
            .map(|w| {
                let q = base * w / mean.max(f64::MIN_POSITIVE);
                if q.is_finite() && q >= 1.0 {
                    q
                } else {
                    1.0
                }
            })
            .collect();
        let deficits = quanta
            .iter()
            .map(|q| {
                let mut d = DeficitCounter::new(cap);
                d.set_quota(Some(*q));
                d
            })
            .collect();
        let weighted = weights.is_some();
        Self {
            deficits,
            quanta,
            cycle_guard,
            switch_in_at: 0,
            debited: 0,
            forced_by_deficit: 0,
            forced_by_guard: 0,
            name: if weighted {
                format!("wdrr({base:.0},weighted)")
            } else {
                format!("wdrr({base:.0})")
            },
        }
    }

    /// Per-thread instruction quanta after weight normalization.
    pub fn quanta(&self) -> &[f64] {
        &self.quanta
    }

    /// Current per-thread deficits (unused credit).
    pub fn deficits(&self) -> Vec<f64> {
        self.deficits.iter().map(|d| d.deficit()).collect()
    }

    /// Instructions debited since the last measurement-window reset.
    pub fn debited(&self) -> u64 {
        self.debited
    }

    /// Quantum-exhaustion forced switches since the last reset.
    pub fn forced_by_deficit(&self) -> u64 {
        self.forced_by_deficit
    }

    /// Cycle-guard forced switches since the last reset.
    pub fn forced_by_guard(&self) -> u64 {
        self.forced_by_guard
    }

    /// The occupancy guard in cycles.
    pub fn cycle_guard(&self) -> u64 {
        self.cycle_guard
    }
}

impl SwitchPolicy for WdrrPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_switch_in(&mut self, tid: ThreadId, now: Cycle) {
        self.switch_in_at = now;
        if let Some(d) = self.deficits.get_mut(tid.index()) {
            d.on_switch_in();
        }
    }

    fn after_retire(&mut self, tid: ThreadId, now: Cycle) -> SwitchDecision {
        let _ = now;
        self.debited += 1;
        let Some(d) = self.deficits.get_mut(tid.index()) else {
            return SwitchDecision::Continue;
        };
        if d.on_retire() {
            self.forced_by_deficit += 1;
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }

    fn each_cycle(&mut self, _tid: ThreadId, now: Cycle) -> SwitchDecision {
        if now - self.switch_in_at >= self.cycle_guard {
            self.forced_by_guard += 1;
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }

    fn next_decision_at(&self, _tid: ThreadId, _now: Cycle) -> Option<Cycle> {
        Some(self.switch_in_at + self.cycle_guard)
    }

    fn on_measure_start(&mut self, now: Cycle) {
        // Window accounting resets; deficits survive — banked leftover
        // is the discipline's state, not a statistic.
        self.debited = 0;
        self.forced_by_deficit = 0;
        self.forced_by_guard = 0;
        self.switch_in_at = now;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_exhaustion_forces_switch() {
        let mut p = WdrrPolicy::new(2, 3.0, None, 2.0, 1 << 30);
        let t = ThreadId::new(0);
        p.on_switch_in(t, 0);
        assert_eq!(p.after_retire(t, 1), SwitchDecision::Continue);
        assert_eq!(p.after_retire(t, 2), SwitchDecision::Continue);
        assert_eq!(p.after_retire(t, 3), SwitchDecision::Switch);
        assert_eq!(p.forced_by_deficit(), 1);
        assert_eq!(p.debited(), 3);
    }

    #[test]
    fn weights_scale_quanta_proportionally() {
        let w = Weights::new(vec![3.0, 1.0]);
        let p = WdrrPolicy::new(2, 100.0, Some(&w), 2.0, 1 << 30);
        // Mean-normalized: (3,1) → mean 2 → quanta (150, 50).
        assert!((p.quanta()[0] - 150.0).abs() < 1e-9);
        assert!((p.quanta()[1] - 50.0).abs() < 1e-9);
        // Aggregate is threads × base either way.
        assert!((p.quanta().iter().sum::<f64>() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn leftover_carries_when_miss_cuts_the_turn_short() {
        let mut p = WdrrPolicy::new(2, 10.0, None, 4.0, 1 << 30);
        let t = ThreadId::new(0);
        p.on_switch_in(t, 0);
        for k in 0..4 {
            assert_eq!(p.after_retire(t, k), SwitchDecision::Continue);
        }
        // Miss switch-out after 4 of 10: 6 carry into the next turn.
        p.on_switch_in(t, 500);
        let mut retired = 0;
        loop {
            retired += 1;
            if p.after_retire(t, 500 + retired) == SwitchDecision::Switch {
                break;
            }
        }
        assert_eq!(retired, 16, "10 fresh + 6 carried");
    }

    #[test]
    fn cycle_guard_bounds_occupancy() {
        let mut p = WdrrPolicy::new(2, 1e9, None, 2.0, 400);
        let t = ThreadId::new(0);
        p.on_switch_in(t, 1_000);
        assert_eq!(p.each_cycle(t, 1_399), SwitchDecision::Continue);
        assert_eq!(p.each_cycle(t, 1_400), SwitchDecision::Switch);
        assert_eq!(p.forced_by_guard(), 1);
        assert_eq!(p.next_decision_at(t, 1_000), Some(1_400));
    }

    #[test]
    fn measure_start_resets_accounting_not_deficits() {
        let mut p = WdrrPolicy::new(2, 10.0, None, 2.0, 1 << 30);
        let t = ThreadId::new(0);
        p.on_switch_in(t, 0);
        p.after_retire(t, 1);
        let deficit_before = p.deficits()[0];
        p.on_measure_start(100);
        assert_eq!(p.debited(), 0);
        assert!((p.deficits()[0] - deficit_before).abs() < 1e-9);
    }

    #[test]
    fn degenerate_arguments_are_clamped_not_panicking() {
        let p = WdrrPolicy::new(0, f64::NAN, None, 0.0, 0);
        assert_eq!(p.quanta().len(), 1);
        assert!(p.quanta()[0] >= 1.0);
        assert_eq!(p.cycle_guard(), 1);
    }
}
