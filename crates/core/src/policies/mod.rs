//! The policy zoo: alternative switch disciplines beyond the paper's
//! fairness mechanism, drawn from the arbitration literature.
//!
//! The paper evaluates one enforcement mechanism (deficit counters plus
//! a maximum-cycles quota) on two-thread pairs, but its equations are
//! N-thread and production cores arbitrate many contexts with many
//! disciplines. This module implements three of them on the same
//! [`SwitchPolicy`](soe_sim::SwitchPolicy) hooks:
//!
//! * [`IslipPolicy`] — iSLIP-style rotating-priority round-robin: a
//!   grant pointer advances past the last accepted context, and busy
//!   contexts (still waiting out a miss) are skipped, like an iSLIP
//!   arbiter skipping inputs with no request.
//! * [`UsageFairPolicy`] — usage-fair banning: per-thread service
//!   (core-occupancy cycles) is tracked with exponential decay, and a
//!   thread whose share exceeds a multiple of the fair share is
//!   temporarily ineligible to switch in.
//! * [`WdrrPolicy`] — weighted deficit round-robin, NoC-style: each
//!   thread owns a [`DeficitCounter`](crate::DeficitCounter) with a
//!   *fixed* per-thread quantum proportional to its weight (unlike the
//!   paper's estimator-driven quotas), debited per retired instruction.
//!
//! Every discipline registers in the
//! [`PolicyFactory`](crate::PolicyFactory) and must pass the shared
//! conformance matrix in `tests/policy_conformance.rs` — trace
//! invariants, forced-switch occupancy floors, bookkeeping conservation,
//! determinism, and fast-forward invariance.

mod ban;
mod islip;
mod wdrr;

pub use ban::UsageFairPolicy;
pub use islip::IslipPolicy;
pub use wdrr::WdrrPolicy;
