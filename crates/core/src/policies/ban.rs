//! Usage-fair banning: over-served threads are temporarily ineligible.

use soe_sim::{Cycle, SwitchDecision, SwitchPolicy, SwitchReason, ThreadId};

/// Usage-fair arbitration by *banning*: the policy meters each thread's
/// service (core-occupancy cycles) and a thread whose decayed share
/// exceeds `share_multiple ×` the fair share is temporarily ineligible
/// to switch in — it is skipped in the rotation until other threads
/// catch up. This is the classic "ban the hog" discipline of fair
/// queueing applied to the switch arbiter, and complements the paper's
/// mechanism: instead of shortening the hog's turns (deficit quotas),
/// it lengthens the gap between them.
///
/// Service decays by half every `window` cycles so bans reflect recent
/// behaviour, not ancient history — a thread that phase-changes out of
/// hogging is unbanned within a few windows.
///
/// The thread with the minimum service is always eligible (its share is
/// at most the mean, and `share_multiple ≥ 1`), so a grant always
/// exists and the core cannot wedge. A `share_multiple` of `None`
/// (target fairness F = 0) disables banning entirely; the policy then
/// degrades to plain rotation with a cycle-quota guard.
#[derive(Debug, Clone)]
pub struct UsageFairPolicy {
    /// Cycle quota: a thread is forced out after this much occupancy.
    quota: u64,
    /// Decay period in cycles (service halves once per window).
    window: u64,
    /// Ban threshold as a multiple of the fair share; `None` disables.
    share_multiple: Option<f64>,
    /// Decayed per-thread service (occupancy cycles).
    service: Vec<f64>,
    /// Un-decayed occupancy accounted since the last measurement-window
    /// reset; conservation-checked by the conformance matrix.
    occupied_total: u64,
    switch_in_at: Cycle,
    next_decay: Cycle,
    /// Ineligible threads skipped in the rotation since the last reset.
    bans: u64,
    /// Cycle-quota forced switches since the last reset.
    forced_by_quota: u64,
    name: String,
}

impl UsageFairPolicy {
    /// Creates the policy for `threads` contexts. `quota` is the
    /// occupancy cycle quota, `window` the service-decay period, and
    /// `share_multiple` the ban threshold (`None` disables banning;
    /// values below 1.0 are clamped to 1.0 so the minimum-service
    /// thread is always eligible). Degenerate sizes are clamped rather
    /// than rejected: construction goes through
    /// [`PolicySpec::check`](crate::PolicySpec::check), which validates
    /// sizing before any builder runs.
    pub fn new(threads: usize, quota: u64, window: u64, share_multiple: Option<f64>) -> Self {
        let threads = threads.max(1);
        let quota = quota.max(1);
        let window = window.max(1);
        let share_multiple = share_multiple.map(|m| if m.is_finite() { m.max(1.0) } else { 1.0 });
        let name = match share_multiple {
            Some(m) => format!("ban({quota},x{m:.2})"),
            None => format!("ban({quota},off)"),
        };
        Self {
            quota,
            window,
            share_multiple,
            service: vec![0.0; threads],
            occupied_total: 0,
            switch_in_at: 0,
            next_decay: window,
            bans: 0,
            forced_by_quota: 0,
            name,
        }
    }

    /// Whether thread `i` may switch in at this instant.
    fn eligible(&self, i: usize) -> bool {
        let Some(multiple) = self.share_multiple else {
            return true;
        };
        let total: f64 = self.service.iter().sum();
        let fair_share = total / self.service.len() as f64;
        let mine = self.service.get(i).copied().unwrap_or(0.0);
        // One quota of slack keeps cold-start and near-tie rotations
        // from flapping; the minimum-service thread always passes.
        mine <= multiple * fair_share + self.quota as f64
    }

    /// Decayed per-thread service in occupancy cycles.
    pub fn service(&self) -> &[f64] {
        &self.service
    }

    /// Un-decayed occupancy cycles accounted since the last
    /// measurement-window reset.
    pub fn occupied_total(&self) -> u64 {
        self.occupied_total
    }

    /// Rotation skips due to bans since the last reset.
    pub fn bans(&self) -> u64 {
        self.bans
    }

    /// Cycle-quota forced switches since the last reset.
    pub fn forced_by_quota(&self) -> u64 {
        self.forced_by_quota
    }

    /// The occupancy cycle quota.
    pub fn quota(&self) -> u64 {
        self.quota
    }
}

impl SwitchPolicy for UsageFairPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_switch_in(&mut self, _tid: ThreadId, now: Cycle) {
        self.switch_in_at = now;
    }

    fn on_switch_out(&mut self, tid: ThreadId, now: Cycle, _reason: SwitchReason) {
        let occupied = now.saturating_sub(self.switch_in_at);
        self.occupied_total += occupied;
        if let Some(s) = self.service.get_mut(tid.index()) {
            *s += occupied as f64;
        }
        // Exponential decay at switch boundaries (service only changes
        // here, so mid-turn decay would be unobservable anyway).
        while now >= self.next_decay {
            for s in &mut self.service {
                *s /= 2.0;
            }
            self.next_decay += self.window;
        }
    }

    fn each_cycle(&mut self, _tid: ThreadId, now: Cycle) -> SwitchDecision {
        if now - self.switch_in_at >= self.quota {
            self.forced_by_quota += 1;
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }

    fn pick_next(&mut self, current: ThreadId, threads: usize, _now: Cycle) -> Option<ThreadId> {
        let n = self.service.len().min(threads);
        for k in 1..=n {
            let cand = (current.index() + k) % n;
            if self.eligible(cand) {
                return Some(ThreadId::new(cand as u8));
            }
            self.bans += 1;
        }
        // Unreachable with share_multiple ≥ 1 (the minimum-service
        // thread is always eligible), but abstaining keeps the machine
        // rotation as a safety net.
        None
    }

    fn next_decision_at(&self, _tid: ThreadId, _now: Cycle) -> Option<Cycle> {
        Some(self.switch_in_at + self.quota)
    }

    fn on_measure_start(&mut self, now: Cycle) {
        // Window accounting resets; decayed service survives (it is the
        // discipline's memory of who hogged recently).
        self.occupied_total = 0;
        self.bans = 0;
        self.forced_by_quota = 0;
        self.switch_in_at = now;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve(p: &mut UsageFairPolicy, tid: u8, start: Cycle, cycles: u64) -> Cycle {
        p.on_switch_in(ThreadId::new(tid), start);
        p.on_switch_out(ThreadId::new(tid), start + cycles, SwitchReason::MissEvent);
        start + cycles
    }

    #[test]
    fn hog_gets_banned_until_others_catch_up() {
        let mut p = UsageFairPolicy::new(3, 100, 1 << 40, Some(1.0));
        let mut now = 0;
        // Thread 0 hogs: 10 long turns vs one short turn each for 1/2.
        for _ in 0..10 {
            now = serve(&mut p, 0, now, 1_000);
        }
        now = serve(&mut p, 1, now, 50);
        now = serve(&mut p, 2, now, 50);
        // Rotation from thread 2 would pick 0, but 0 is over-share.
        assert_eq!(
            p.pick_next(ThreadId::new(2), 3, now),
            Some(ThreadId::new(1)),
            "the hog is skipped"
        );
        assert!(p.bans() >= 1);
        // Once the others accumulate comparable service, 0 is unbanned.
        for _ in 0..10 {
            now = serve(&mut p, 1, now, 1_000);
            now = serve(&mut p, 2, now, 1_000);
        }
        assert_eq!(
            p.pick_next(ThreadId::new(2), 3, now),
            Some(ThreadId::new(0))
        );
    }

    #[test]
    fn disabled_banning_is_plain_rotation() {
        let mut p = UsageFairPolicy::new(3, 100, 1 << 40, None);
        let mut now = 0;
        for _ in 0..10 {
            now = serve(&mut p, 0, now, 1_000);
        }
        assert_eq!(
            p.pick_next(ThreadId::new(0), 3, now),
            Some(ThreadId::new(1))
        );
        assert_eq!(
            p.pick_next(ThreadId::new(1), 3, now),
            Some(ThreadId::new(2))
        );
        assert_eq!(p.bans(), 0);
    }

    #[test]
    fn min_service_thread_is_always_eligible() {
        let mut p = UsageFairPolicy::new(2, 100, 1 << 40, Some(1.0));
        let mut now = 0;
        for _ in 0..20 {
            now = serve(&mut p, 0, now, 1_000);
        }
        // Thread 1 has zero service; a pick must exist.
        assert_eq!(
            p.pick_next(ThreadId::new(0), 2, now),
            Some(ThreadId::new(1))
        );
    }

    #[test]
    fn service_decays_by_half_each_window() {
        let mut p = UsageFairPolicy::new(2, 100, 1_000, Some(2.0));
        serve(&mut p, 0, 0, 400);
        assert!((p.service()[0] - 400.0).abs() < 1e-9);
        // Crossing the window boundary halves everything once.
        serve(&mut p, 1, 900, 200);
        assert!((p.service()[0] - 200.0).abs() < 1e-9);
        assert!((p.service()[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_conservation_and_window_reset() {
        let mut p = UsageFairPolicy::new(2, 100, 1 << 40, Some(1.5));
        let mut now = 0;
        now = serve(&mut p, 0, now, 300);
        serve(&mut p, 1, now, 200);
        assert_eq!(p.occupied_total(), 500);
        p.on_measure_start(10_000);
        assert_eq!(p.occupied_total(), 0);
        assert!(p.service()[0] > 0.0, "decayed service survives the reset");
    }

    #[test]
    fn quota_expiry_forces_switch() {
        let mut p = UsageFairPolicy::new(2, 500, 1 << 40, Some(1.0));
        p.on_switch_in(ThreadId::new(0), 100);
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 599),
            SwitchDecision::Continue
        );
        assert_eq!(p.each_cycle(ThreadId::new(0), 600), SwitchDecision::Switch);
        assert_eq!(p.forced_by_quota(), 1);
        assert_eq!(p.next_decision_at(ThreadId::new(0), 100), Some(600));
    }
}
