//! iSLIP-style rotating-priority arbitration over ready contexts.

use soe_sim::{Cycle, SwitchDecision, SwitchPolicy, SwitchReason, ThreadId};

/// Rotating-priority round-robin in the style of an iSLIP arbiter
/// (PAPERS.md: "From MWM to iSLIP"): the grant pointer advances to the
/// last context that accepted the core, and the next grant starts
/// scanning one past it — so no context can monopolize the pointer, and
/// under full load every context is granted once per rotation.
///
/// The "request" signal of a switch arbiter is *readiness*: a context
/// that was switched out on a miss is busy until the miss resolves, so
/// the pick scans the rotation for the first context whose outstanding
/// miss (estimated via an EWMA of observed exposed latencies) has
/// drained. If every context is busy the policy abstains and the
/// machine's fixed rotation picks, which keeps the core wedging-proof.
///
/// Forced switches use a fixed time slice (the rotation period), like a
/// crossbar reconfiguring every cell time.
#[derive(Debug, Clone)]
pub struct IslipPolicy {
    /// Occupancy slice: a context is forced out after this many cycles.
    slice: u64,
    /// EWMA of observed exposed miss latencies (busy-time estimate).
    miss_lat: f64,
    /// Estimated cycle at which each context's outstanding miss drains.
    busy_until: Vec<Cycle>,
    /// Index of the last context granted the core (the accept pointer).
    grant_ptr: usize,
    switch_in_at: Cycle,
    /// Grants issued (== switch-ins observed) since the last
    /// measurement-window reset; conservation-checked by the
    /// conformance matrix.
    grants: u64,
    /// Busy contexts skipped over while scanning for a grant.
    busy_skips: u64,
    /// Slice-expiry forced switches since the last reset.
    forced_by_slice: u64,
    name: String,
}

impl IslipPolicy {
    /// Creates the arbiter for `threads` contexts with the given
    /// occupancy slice and initial busy-time estimate. Degenerate
    /// arguments are clamped (slice to ≥ 1 cycle, latency to ≥ 1.0)
    /// rather than rejected: construction goes through
    /// [`PolicySpec::check`](crate::PolicySpec::check), which validates
    /// sizing before any builder runs.
    pub fn new(threads: usize, slice: u64, miss_lat: f64) -> Self {
        let threads = threads.max(1);
        let slice = slice.max(1);
        Self {
            slice,
            miss_lat: if miss_lat.is_finite() && miss_lat >= 1.0 {
                miss_lat
            } else {
                1.0
            },
            busy_until: vec![0; threads],
            grant_ptr: 0,
            switch_in_at: 0,
            grants: 0,
            busy_skips: 0,
            forced_by_slice: 0,
            name: format!("islip({slice})"),
        }
    }

    /// Grants issued (switch-ins accepted) since the last
    /// measurement-window reset.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Busy contexts skipped while scanning for a grant since the last
    /// measurement-window reset.
    pub fn busy_skips(&self) -> u64 {
        self.busy_skips
    }

    /// The current accept pointer (index of the last granted context).
    pub fn grant_ptr(&self) -> usize {
        self.grant_ptr
    }

    /// Slice-expiry forced switches since the last reset.
    pub fn forced_by_slice(&self) -> u64 {
        self.forced_by_slice
    }

    /// The occupancy slice in cycles.
    pub fn slice(&self) -> u64 {
        self.slice
    }
}

impl SwitchPolicy for IslipPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_switch_in(&mut self, tid: ThreadId, now: Cycle) {
        self.switch_in_at = now;
        // Accept: the pointer moves to the granted context, so the next
        // scan starts one past it — iSLIP's starvation-freedom rule.
        self.grant_ptr = tid.index();
        self.grants += 1;
    }

    fn on_switch_out(&mut self, tid: ThreadId, now: Cycle, reason: SwitchReason) {
        if reason == SwitchReason::MissEvent {
            // The context stays "requesting" but not ready until its
            // miss drains; model that with the EWMA'd latency.
            if let Some(b) = self.busy_until.get_mut(tid.index()) {
                *b = now + self.miss_lat as Cycle;
            }
        }
    }

    fn observe_miss_latency(&mut self, _tid: ThreadId, remaining: Cycle) {
        // Same 1/32-step EWMA the fairness mechanism uses in measured
        // mode: fast enough to track the workload, slow enough to
        // smooth overlap noise.
        self.miss_lat += (remaining as f64 - self.miss_lat) / 32.0;
        if self.miss_lat < 1.0 {
            self.miss_lat = 1.0;
        }
    }

    fn each_cycle(&mut self, _tid: ThreadId, now: Cycle) -> SwitchDecision {
        if now - self.switch_in_at >= self.slice {
            self.forced_by_slice += 1;
            SwitchDecision::Switch
        } else {
            SwitchDecision::Continue
        }
    }

    fn pick_next(&mut self, _current: ThreadId, threads: usize, now: Cycle) -> Option<ThreadId> {
        let n = self.busy_until.len().min(threads);
        // Scan the rotation starting one past the accept pointer for the
        // first ready (not busy) context.
        for k in 1..=n {
            let cand = (self.grant_ptr + k) % n;
            let busy = self.busy_until.get(cand).copied().unwrap_or(0);
            if busy <= now {
                return Some(ThreadId::new(cand as u8));
            }
            self.busy_skips += 1;
        }
        // Every context is busy: abstain, the machine rotation picks.
        None
    }

    fn next_decision_at(&self, _tid: ThreadId, _now: Cycle) -> Option<Cycle> {
        Some(self.switch_in_at + self.slice)
    }

    fn on_measure_start(&mut self, now: Cycle) {
        // Reset window accounting; keep the pointer and busy estimates —
        // they are the arbiter's long-lived state.
        self.grants = 0;
        self.busy_skips = 0;
        self.forced_by_slice = 0;
        self.switch_in_at = now;
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_rotates_past_accepted_context() {
        let mut p = IslipPolicy::new(4, 1_000, 300.0);
        // Context 2 accepted the core: next scan starts at 3.
        p.on_switch_in(ThreadId::new(2), 10);
        assert_eq!(p.grant_ptr(), 2);
        assert_eq!(p.pick_next(ThreadId::new(2), 4, 20), Some(ThreadId::new(3)));
    }

    #[test]
    fn busy_contexts_are_skipped() {
        let mut p = IslipPolicy::new(4, 1_000, 300.0);
        p.on_switch_in(ThreadId::new(0), 0);
        // Context 1 misses at cycle 50: busy until ~350.
        p.on_switch_out(ThreadId::new(1), 50, SwitchReason::MissEvent);
        assert_eq!(
            p.pick_next(ThreadId::new(0), 4, 100),
            Some(ThreadId::new(2)),
            "context 1 is busy, grant skips to 2"
        );
        assert_eq!(p.busy_skips(), 1);
        // After the miss drains it is granted again.
        assert_eq!(
            p.pick_next(ThreadId::new(0), 4, 400),
            Some(ThreadId::new(1))
        );
    }

    #[test]
    fn all_busy_abstains_to_machine_rotation() {
        let mut p = IslipPolicy::new(2, 1_000, 300.0);
        p.on_switch_out(ThreadId::new(0), 10, SwitchReason::MissEvent);
        p.on_switch_out(ThreadId::new(1), 10, SwitchReason::MissEvent);
        assert_eq!(p.pick_next(ThreadId::new(0), 2, 20), None);
    }

    #[test]
    fn slice_expiry_forces_switch() {
        let mut p = IslipPolicy::new(2, 500, 300.0);
        p.on_switch_in(ThreadId::new(0), 1_000);
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 1_499),
            SwitchDecision::Continue
        );
        assert_eq!(
            p.each_cycle(ThreadId::new(0), 1_500),
            SwitchDecision::Switch
        );
        assert_eq!(p.forced_by_slice(), 1);
        assert_eq!(p.next_decision_at(ThreadId::new(0), 1_000), Some(1_500));
    }

    #[test]
    fn grants_count_switch_ins_and_reset_on_measure_start() {
        let mut p = IslipPolicy::new(2, 500, 300.0);
        p.on_switch_in(ThreadId::new(0), 0);
        p.on_switch_in(ThreadId::new(1), 100);
        assert_eq!(p.grants(), 2);
        p.on_measure_start(200);
        assert_eq!(p.grants(), 0);
        assert_eq!(p.grant_ptr(), 1, "pointer survives the window reset");
    }

    #[test]
    fn degenerate_arguments_are_clamped_not_panicking() {
        let p = IslipPolicy::new(0, 0, f64::NAN);
        assert_eq!(p.slice(), 1);
        assert!(p.name().starts_with("islip("));
    }
}
