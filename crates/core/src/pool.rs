//! A std-only parallel job execution engine for the experiment matrix.
//!
//! The paper's evaluation is ~76 independent cycle-level runs (16 pairs
//! × 4 fairness levels plus 12 single-thread references); they share no
//! state, so they should be dispatched across cores rather than
//! iterated. The build environment is offline, so this is plain
//! [`std::thread::scope`] over a shared self-scheduling queue (an atomic
//! cursor over the job list — idle workers grab the next index, which
//! load-balances like work stealing without per-worker deques), not a
//! rayon dependency.
//!
//! Guarantees:
//!
//! * **Order preservation** — results come back in job-submission order
//!   regardless of completion order, so a parallel experiment matrix is
//!   assembled identically to the serial one.
//! * **Determinism** — the engine adds no randomness of its own; a job
//!   must derive everything (trace seeds included) from its own payload,
//!   and then any worker count produces bit-identical results (asserted
//!   by `tests/determinism.rs`).
//! * **Panic capture** — a panicking job reports its label (pair and
//!   fairness level, say) and the panic message; the rest of the matrix
//!   still completes. [`run_jobs`] re-panics with every failed label
//!   *after* draining the queue, [`try_run_jobs`] returns per-job
//!   `Result`s.
//! * **Observability** — an optional progress reporter prints
//!   jobs-completed / total with an ETA from a running mean of job
//!   durations, from the collector thread.
//!
//! Worker-count resolution (CLI flag, then `SOE_JOBS`, then the host's
//! available parallelism) lives in [`resolve_workers`] so every binary
//! plumbs the same precedence.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One unit of work: an opaque payload plus a human-readable label used
/// in progress output and panic reports (e.g. `"swim:eon @ F=1/2"`).
#[derive(Debug, Clone)]
pub struct Job<P> {
    /// Shown in progress lines and panic reports.
    pub label: String,
    /// Everything the job function needs. Determinism across worker
    /// counts requires the payload to carry (or imply) its own RNG
    /// seeds — nothing may depend on execution order.
    pub payload: P,
}

impl<P> Job<P> {
    /// Creates a labelled job.
    pub fn new(label: impl Into<String>, payload: P) -> Self {
        Self {
            label: label.into(),
            payload,
        }
    }
}

/// A captured job panic.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Submission index of the failed job.
    pub index: usize,
    /// The failed job's label.
    pub label: String,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job #{} `{}` panicked: {}",
            self.index, self.label, self.message
        )
    }
}

impl std::error::Error for JobError {}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// Worker threads to use; `1` degrades to a plain serial loop on the
    /// calling thread (no threads spawned).
    pub workers: usize,
    /// Print per-completion progress lines (with an ETA) to stderr.
    pub progress: bool,
}

impl PoolOptions {
    /// `workers` workers, progress reporting on.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            progress: true,
        }
    }

    /// `workers` workers, no progress output (tests, library callers).
    pub fn quiet(workers: usize) -> Self {
        Self {
            workers,
            progress: false,
        }
    }
}

/// Resolves the worker count from (in precedence order) an explicit
/// request (`--jobs N`), the `SOE_JOBS` environment variable, and the
/// host's available parallelism.
pub fn resolve_workers(explicit: Option<usize>) -> usize {
    explicit
        .filter(|n| *n > 0)
        .or_else(|| {
            // soe-lint: allow(determinism-taint): SOE_JOBS changes scheduling, not result bytes — runs are keyed and merged in label order
            std::env::var("SOE_JOBS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|n| *n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `jobs` on `workers` threads and returns results in submission
/// order, printing progress to stderr.
///
/// # Panics
///
/// If any job panicked: the queue is drained first, then this panics
/// with every failed job's label and message (so one bad run in a long
/// matrix reports itself without discarding the rest of the evening's
/// compute — and without silently producing a partial result set).
pub fn run_jobs<P, R, F>(jobs: Vec<Job<P>>, workers: usize, f: F) -> Vec<R>
where
    P: Send + Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let results = try_run_jobs(jobs, PoolOptions::new(workers), f);
    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.as_err().map(ToString::to_string))
        .collect();
    if !failures.is_empty() {
        // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use try_run_jobs
        panic!(
            "{} job(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        );
    }
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            // soe-lint: allow(panic-macro): the failures check above already aborted on any Err
            Err(_) => unreachable!("failures checked above"),
        })
        .collect()
}

/// Extension for readable failure collection on `Result` slices.
trait AsErr {
    fn as_err(&self) -> Option<&JobError>;
}

impl<R> AsErr for Result<R, JobError> {
    fn as_err(&self) -> Option<&JobError> {
        self.as_ref().err()
    }
}

/// Runs `jobs` under `opts`, capturing per-job panics instead of
/// unwinding. Results are in submission order.
pub fn try_run_jobs<P, R, F>(jobs: Vec<Job<P>>, opts: PoolOptions, f: F) -> Vec<Result<R, JobError>>
where
    P: Send + Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = opts.workers.clamp(1, total);
    if workers == 1 {
        return run_serial(jobs, opts.progress, &f);
    }

    let mut results: Vec<Option<Result<R, JobError>>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let jobs = &jobs;
    let f = &f;
    let (tx, rx) = mpsc::channel::<(usize, Duration, Result<R, String>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                // soe-lint: allow(wall-clock): measures host wall-time per job for ETA display, never simulated state
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&job.payload)))
                    .map_err(|payload| panic_message(&*payload));
                if tx.send((index, start.elapsed(), outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Collector: the scope's own thread. Receives exactly one
        // message per job, preserves submission order via the index.
        let mut progress = Progress::new(total, opts.progress);
        for (index, took, outcome) in rx {
            // soe-lint: allow(slice-index): workers only send indexes they got from jobs.get()
            progress.completed(&jobs[index].label, took);
            // soe-lint: allow(slice-index): results was sized to jobs.len() above
            results[index] = Some(outcome.map_err(|message| JobError {
                index,
                // soe-lint: allow(slice-index): workers only send indexes they got from jobs.get()
                label: jobs[index].label.clone(),
                message,
            }));
        }
    });

    results
        .into_iter()
        // soe-lint: allow(panic-unwrap): the collector loop stores exactly one outcome per job before the scope ends
        .map(|slot| slot.expect("every job sends exactly one result"))
        .collect()
}

/// The `workers == 1` degenerate case: run in submission order on the
/// calling thread, still with panic capture and progress.
fn run_serial<P, R>(
    jobs: Vec<Job<P>>,
    progress: bool,
    f: &(impl Fn(&P) -> R + Sync),
) -> Vec<Result<R, JobError>> {
    let mut reporter = Progress::new(jobs.len(), progress);
    jobs.iter()
        .enumerate()
        .map(|(index, job)| {
            // soe-lint: allow(wall-clock): measures host wall-time per job for ETA display, never simulated state
            let start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| f(&job.payload)));
            reporter.completed(&job.label, start.elapsed());
            outcome.map_err(|payload| JobError {
                index,
                label: job.label.clone(),
                message: panic_message(&*payload),
            })
        })
        .collect()
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Progress accounting: jobs completed / total plus an ETA from the
/// running mean of job durations.
pub(crate) struct Progress {
    total: usize,
    done: usize,
    spent: Duration,
    started: Instant,
    enabled: bool,
}

impl Progress {
    pub(crate) fn new(total: usize, enabled: bool) -> Self {
        Self {
            total,
            done: 0,
            spent: Duration::ZERO,
            // soe-lint: allow(wall-clock, determinism-taint): progress/ETA reporting on stderr only, never serialized state
            started: Instant::now(),
            enabled,
        }
    }

    pub(crate) fn completed(&mut self, label: &str, took: Duration) {
        self.done += 1;
        self.spent += took;
        if !self.enabled {
            return;
        }
        let mean = self.spent.as_secs_f64() / self.done as f64;
        // Remaining work divided by the measured rate of this pool:
        // wall-clock elapsed per completed job accounts for the worker
        // count without asking how many threads are busy.
        let wall_per_job = self.started.elapsed().as_secs_f64() / self.done as f64;
        let remaining = (self.total - self.done) as f64 * wall_per_job;
        eprintln!(
            "[pool] {}/{} {label} done in {:.1}s (mean {:.1}s, ETA {:.0}s)",
            self.done,
            self.total,
            took.as_secs_f64(),
            mean,
            remaining,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(workers: usize) -> PoolOptions {
        PoolOptions::quiet(workers)
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let out: Vec<u32> = run_jobs(Vec::<Job<u32>>::new(), 4, |p| *p);
        assert!(out.is_empty());
    }

    #[test]
    fn results_preserve_submission_order() {
        let jobs: Vec<Job<u64>> = (0..64).map(|i| Job::new(format!("j{i}"), i)).collect();
        // Make later jobs finish first to exercise out-of-order arrival.
        let out = try_run_jobs(jobs, quiet(8), |i| {
            std::thread::sleep(Duration::from_micros(200 * (64 - *i)));
            *i * 3
        });
        let values: Vec<u64> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs: Vec<Job<u32>> = (0..3).map(|i| Job::new(format!("j{i}"), i)).collect();
        let out = try_run_jobs(jobs, quiet(32), |i| i + 1);
        let values: Vec<u32> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn panicking_job_surfaces_its_label_and_spares_the_rest() {
        let jobs: Vec<Job<u32>> = (0..8).map(|i| Job::new(format!("pair-{i}"), i)).collect();
        let out = try_run_jobs(jobs, quiet(4), |i| {
            assert!(*i != 5, "run {i} exploded");
            *i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.label, "pair-5");
                assert_eq!(e.index, 5);
                assert!(e.message.contains("run 5 exploded"), "{}", e.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "pair-5")]
    fn run_jobs_repanics_with_the_label_after_draining() {
        let jobs: Vec<Job<u32>> = (0..8).map(|i| Job::new(format!("pair-{i}"), i)).collect();
        let _ = run_jobs(jobs, 2, |i| {
            assert!(*i != 5, "boom");
            *i
        });
    }

    #[test]
    fn single_worker_degrades_to_serial_on_calling_thread() {
        let caller = std::thread::current().id();
        let jobs: Vec<Job<u32>> = (0..4).map(|i| Job::new(format!("j{i}"), i)).collect();
        let out = try_run_jobs(jobs, quiet(1), |i| (std::thread::current().id(), *i));
        for r in out {
            let (tid, _) = r.unwrap();
            assert_eq!(tid, caller, "workers=1 must not spawn threads");
        }
    }

    #[test]
    fn resolve_workers_precedence() {
        // Explicit beats everything.
        assert_eq!(resolve_workers(Some(3)), 3);
        // 0 is treated as unset.
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        std::env::remove_var("SOE_JOBS");
        assert_eq!(resolve_workers(Some(0)), host);
        assert_eq!(resolve_workers(None), host);
        // SOE_JOBS=1 degrades to serial.
        std::env::set_var("SOE_JOBS", "1");
        assert_eq!(resolve_workers(None), 1);
        std::env::set_var("SOE_JOBS", "junk");
        assert_eq!(resolve_workers(None), host);
        std::env::remove_var("SOE_JOBS");
    }

    #[test]
    fn identical_results_at_any_worker_count() {
        let mk = || {
            (0..40u64)
                .map(|i| Job::new(format!("j{i}"), i))
                .collect::<Vec<_>>()
        };
        let run = |w: usize| -> Vec<u64> {
            try_run_jobs(mk(), quiet(w), |i| i.wrapping_mul(0x9e3779b97f4a7c15))
                .into_iter()
                .map(Result::unwrap)
                .collect()
        };
        let serial = run(1);
        for w in [2, 3, 8] {
            assert_eq!(run(w), serial, "worker count {w} diverged");
        }
    }
}
