//! The experiment runner: single-thread reference runs and SOE pair runs
//! under any policy, following the paper's methodology (warm up, reset
//! statistics, measure).

use std::cell::RefCell;
use std::rc::Rc;

use soe_model::FairnessLevel;
use soe_sim::obs::{SharedTracer, Trace, TraceConfig, Tracer};
use soe_sim::{
    Machine, MachineConfig, MachineStats, NeverSwitch, SimError, SwitchPolicy, TraceSource,
};
use soe_workloads::Pair;

use crate::metrics::{PairRun, SingleRun, ThreadOutcome};
use crate::policy::{FairnessConfig, FairnessPolicy, TimeSlicePolicy};
use crate::registry::{PolicyFactory, PolicySpec};

/// Experiment sizing: how long to warm up and measure.
///
/// The paper warms caches with 10 M instructions and measures ≥ 6 M
/// instructions per thread. Because a starved thread (the phenomenon
/// under study!) may retire arbitrarily slowly, this reproduction sizes
/// runs in *cycles*: per-thread IPCs are well-defined over any window,
/// and unfair runs do not take unbounded wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Simulated machine parameters.
    pub machine: MachineConfig,
    /// Warm-up cycles (statistics discarded).
    pub warmup_cycles: u64,
    /// Measurement window in cycles.
    pub measure_cycles: u64,
    /// Fairness-mechanism parameters (the target is overridden per run).
    pub fairness: FairnessConfig,
    /// Forward-progress watchdog: the run fails with
    /// [`SimError::Stalled`] if no instruction retires (on any thread)
    /// for this many cycles. Must sit far above the longest legitimate
    /// stall (300-cycle memory plus TLB walks, bus queueing and switch
    /// drain); `None` disables the check.
    pub stall_window: Option<u64>,
    /// Cycle-level event tracing knobs. `None` disables tracing (the
    /// default, and the only setting the plain runners consult); the
    /// traced entry points ([`try_run_pair_traced`]) use `Some` values
    /// or fall back to [`TraceConfig::default`].
    pub trace: Option<TraceConfig>,
}

impl RunConfig {
    /// Full-size runs with the paper's mechanism parameters
    /// (Δ = 250 000, 50 000-cycle quota, 300-cycle memory).
    pub fn paper() -> Self {
        Self {
            machine: MachineConfig::default(),
            warmup_cycles: 2_000_000,
            measure_cycles: 8_000_000,
            fairness: FairnessConfig::paper(FairnessLevel::NONE),
            stall_window: Some(1_000_000),
            trace: None,
        }
    }

    /// Scaled-down runs for tests: a smaller machine-warmup and window
    /// with a proportionally smaller Δ and cycle quota.
    pub fn quick() -> Self {
        Self {
            machine: MachineConfig::default(),
            warmup_cycles: 300_000,
            measure_cycles: 1_200_000,
            fairness: FairnessConfig {
                target: FairnessLevel::NONE,
                delta: 50_000,
                max_cycles_quota: 20_000,
                miss_lat: 300.0,
                miss_lat_mode: Default::default(),
                deficit_cap: 2.0,
                min_quota_cycles: 600,
                record_history: true,
            },
            stall_window: Some(200_000),
            trace: None,
        }
    }

    fn with_target(&self, f: FairnessLevel) -> FairnessConfig {
        FairnessConfig {
            target: f,
            ..self.fairness
        }
    }
}

/// Runs `trace` alone on the machine and measures its single-thread
/// behaviour — the ground-truth `IPC_ST` of Eq 1.
///
/// # Panics
///
/// Panics on an invalid configuration, a wedged machine, or a tripped
/// stall watchdog; [`try_run_single`] is the non-panicking form.
pub fn run_single(trace: Box<dyn TraceSource>, cfg: &RunConfig) -> SingleRun {
    // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use try_run_single
    try_run_single(trace, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_single`] returning structured [`SimError`]s (bad configuration,
/// wedged machine, stall-watchdog expiry) instead of panicking, so a
/// supervisor can retry or quarantine the run.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] before the machine is built;
/// [`SimError::Stalled`] / [`SimError::Wedged`] from the run itself.
pub fn try_run_single(trace: Box<dyn TraceSource>, cfg: &RunConfig) -> Result<SingleRun, SimError> {
    cfg.machine
        .check()
        .map_err(|e| SimError::InvalidConfig(e.0))?;
    let name = trace.name().to_string();
    let mut m = Machine::new(cfg.machine, vec![trace], Box::new(NeverSwitch::new()));
    m.try_run_cycles(cfg.warmup_cycles, cfg.stall_window)?;
    let miss_before = {
        let h = m.hierarchy().stats();
        h.data_l2_misses + h.walk_l2_misses
    };
    m.reset_stats();
    let start = m.now();
    m.try_run_cycles(cfg.measure_cycles, cfg.stall_window)?;
    let cycles = m.now() - start;
    let retired = m.stats().threads.first().map_or(0, |t| t.retired);
    let h = m.hierarchy().stats();
    let l2_misses = h.data_l2_misses + h.walk_l2_misses - miss_before;
    Ok(SingleRun {
        name,
        retired,
        cycles,
        ipc_st: retired as f64 / cycles as f64,
        l2_misses,
        ipm: retired as f64 / l2_misses.max(1) as f64,
    })
}

/// Runs `pair` under an arbitrary policy, using previously measured
/// single-thread results for the speedup denominators.
///
/// # Panics
///
/// Panics if `singles` does not contain one entry per thread in pair
/// order.
pub fn run_pair_with_policy(
    pair: &Pair,
    policy: Box<dyn SwitchPolicy>,
    singles: &[SingleRun],
    cfg: &RunConfig,
    target: Option<FairnessLevel>,
) -> PairRun {
    // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use the try_ form
    try_run_pair_with_policy(pair, policy, singles, cfg, target).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_pair_with_policy`] returning structured [`SimError`]s instead of
/// panicking, so a supervisor can retry or quarantine the run.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] before the machine is built;
/// [`SimError::Stalled`] / [`SimError::Wedged`] from the run itself.
///
/// # Panics
///
/// Still panics if `singles` does not contain one entry per thread in
/// pair order — that is a caller bug, not a run failure.
pub fn try_run_pair_with_policy(
    pair: &Pair,
    policy: Box<dyn SwitchPolicy>,
    singles: &[SingleRun],
    cfg: &RunConfig,
    target: Option<FairnessLevel>,
) -> Result<PairRun, SimError> {
    assert_eq!(singles.len(), 2, "one single-thread reference per thread");
    try_run_traces_with_policy(
        pair.label(),
        pair.boxed_traces(),
        policy,
        target,
        singles,
        cfg,
    )
}

/// The shared N-thread measurement loop: warm up, reset statistics,
/// notify the policy via
/// [`SwitchPolicy::on_measure_start`](soe_sim::SwitchPolicy::on_measure_start),
/// measure, assemble the [`PairRun`]. Every pair/multi runner funnels
/// through here so all policies get the same methodology; property
/// tests drive it directly with synthetic trace sources.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for an empty roster, a `singles` length
/// mismatch, or a bad machine configuration;  [`SimError::Stalled`] /
/// [`SimError::Wedged`] from the run itself.
pub fn try_run_traces_with_policy(
    label: String,
    traces: Vec<Box<dyn TraceSource>>,
    policy: Box<dyn SwitchPolicy>,
    target: Option<FairnessLevel>,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> Result<PairRun, SimError> {
    if traces.is_empty() {
        return Err(SimError::InvalidConfig(
            "roster must contain at least one thread".into(),
        ));
    }
    if singles.len() != traces.len() {
        return Err(SimError::InvalidConfig(format!(
            "{} single-thread reference(s) for a {}-thread roster",
            singles.len(),
            traces.len()
        )));
    }
    cfg.machine
        .check()
        .map_err(|e| SimError::InvalidConfig(e.0))?;
    let policy_name = policy.name().to_string();
    let mut m = Machine::new(cfg.machine, traces, policy);
    m.try_run_cycles(cfg.warmup_cycles, cfg.stall_window)?;
    m.reset_stats();
    let now = m.now();
    m.policy_mut().on_measure_start(now);
    let start = m.now();
    m.try_run_cycles(cfg.measure_cycles, cfg.stall_window)?;
    let cycles = m.now() - start;
    let stats = m.stats().clone();
    Ok(assemble_pair_run(
        label,
        policy_name,
        target,
        cycles,
        &stats,
        singles,
    ))
}

/// Builds the finalized [`PairRun`] from measured statistics — shared by
/// every pair-style runner so traced and untraced runs report metrics
/// through one code path.
fn assemble_pair_run(
    label: String,
    policy: String,
    target: Option<FairnessLevel>,
    cycles: u64,
    stats: &MachineStats,
    singles: &[SingleRun],
) -> PairRun {
    let threads: Vec<ThreadOutcome> = singles
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let retired = stats.threads.get(i).map_or(0, |t| t.retired);
            let ipc_soe = retired as f64 / cycles as f64;
            ThreadOutcome {
                name: s.name.clone(),
                retired,
                ipc_soe,
                ipc_st: s.ipc_st,
                speedup: ipc_soe / s.ipc_st,
            }
        })
        .collect();
    let mut run = PairRun {
        label,
        policy,
        target,
        cycles,
        threads,
        throughput: 0.0,
        fairness: 0.0,
        weighted_speedup: 0.0,
        harmonic_fairness: 0.0,
        soe_speedup: 0.0,
        total_switches: stats.total_switches,
        event_switches: stats.threads.iter().map(|t| t.event_switches).sum(),
        forced_switches: stats.threads.iter().map(|t| t.forced_switches).sum(),
        forced_per_kcycle: 0.0,
        avg_switch_latency: stats.avg_switch_latency(),
    };
    run.finalize();
    run
}

/// A pair run together with the cycle-level event trace of its
/// measurement window.
#[derive(Debug, Clone)]
pub struct TracedPairRun {
    /// The run's aggregate metrics, identical in form to an untraced run.
    pub run: PairRun,
    /// The recorded event stream (warm-up discarded; fills initiated in
    /// the window may complete — and are stamped — past its end).
    pub trace: Trace,
}

/// Runs `pair` under the fairness mechanism at target `f` with
/// cycle-level event tracing enabled: the machine, the memory hierarchy
/// and the policy share one bounded recorder ([`Tracer`]), which is
/// restarted after warm-up so the trace covers exactly the measurement
/// window. Uses `cfg.trace` knobs, or [`TraceConfig::default`] when
/// `None`.
///
/// Tracing reads simulation state but never writes it, so the returned
/// [`PairRun`] is identical to what [`try_run_pair`] reports for the
/// same inputs.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] before the machine is built;
/// [`SimError::Stalled`] / [`SimError::Wedged`] from the run itself.
///
/// # Panics
///
/// Panics if `singles` does not contain one entry per thread in pair
/// order — a caller bug, not a run failure.
pub fn try_run_pair_traced(
    pair: &Pair,
    f: FairnessLevel,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> Result<TracedPairRun, SimError> {
    assert_eq!(singles.len(), 2, "one single-thread reference per thread");
    let fairness = cfg.with_target(f);
    fairness
        .check(2)
        .map_err(|e| SimError::InvalidConfig(e.0))?;
    cfg.machine
        .check()
        .map_err(|e| SimError::InvalidConfig(e.0))?;
    let tcfg = cfg.trace.unwrap_or_default();
    tcfg.check().map_err(|e| SimError::InvalidConfig(e.0))?;
    let tracer: SharedTracer = Rc::new(RefCell::new(Tracer::new(tcfg)));
    let policy = FairnessPolicy::new(2, fairness).with_tracer(Rc::clone(&tracer));
    let policy_name = policy.name().to_string();
    let mut m = Machine::new(cfg.machine, pair.boxed_traces(), Box::new(policy));
    m.attach_tracer(Rc::clone(&tracer));
    m.try_run_cycles(cfg.warmup_cycles, cfg.stall_window)?;
    m.reset_stats();
    let now = m.now();
    m.policy_mut().on_measure_start(now);
    tracer.borrow_mut().restart(m.now());
    let start = m.now();
    m.try_run_cycles(cfg.measure_cycles, cfg.stall_window)?;
    let cycles = m.now() - start;
    let stats = m.stats().clone();
    let trace = tracer.borrow_mut().take();
    Ok(TracedPairRun {
        run: assemble_pair_run(pair.label(), policy_name, Some(f), cycles, &stats, singles),
        trace,
    })
}

/// Runs `pair` under the paper's fairness mechanism at target `f`
/// (`F = 0` gives event-only SOE with estimation enabled).
pub fn run_pair(pair: &Pair, f: FairnessLevel, singles: &[SingleRun], cfg: &RunConfig) -> PairRun {
    // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use the try_ form
    try_run_pair(pair, f, singles, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_pair`] returning structured [`SimError`]s instead of panicking.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] if the machine or fairness configuration
/// is inconsistent; [`SimError::Stalled`] / [`SimError::Wedged`] from
/// the run itself.
pub fn try_run_pair(
    pair: &Pair,
    f: FairnessLevel,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> Result<PairRun, SimError> {
    let fairness = cfg.with_target(f);
    fairness
        .check(2)
        .map_err(|e| SimError::InvalidConfig(e.0))?;
    let policy = FairnessPolicy::new(2, fairness);
    try_run_pair_with_policy(pair, Box::new(policy), singles, cfg, Some(f))
}

/// Runs `pair` under the Section 6 time-slicing baseline.
pub fn run_pair_timeslice(
    pair: &Pair,
    quota_cycles: u64,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> PairRun {
    run_pair_with_policy(
        pair,
        Box::new(TimeSlicePolicy::new(quota_cycles)),
        singles,
        cfg,
        None,
    )
}

/// Runs an N-thread group under the fairness mechanism at target `f` —
/// the paper's equations are N-thread even though its evaluation uses
/// two.
///
/// # Panics
///
/// Panics if `singles` does not match `names` in length and order.
pub fn run_multi(
    names: &[&str],
    f: FairnessLevel,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> PairRun {
    assert_eq!(singles.len(), names.len(), "one reference per thread");
    let policy = FairnessPolicy::new(names.len(), cfg.with_target(f));
    try_run_multi_with_policy(names, Box::new(policy), Some(f), singles, cfg)
        // soe-lint: allow(panic-macro): documented panicking wrapper; callers wanting errors use the try_ form
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Runs an N-thread group under an arbitrary policy, returning
/// structured [`SimError`]s instead of panicking — the entry point the
/// `serve` service layer schedules scenario requests through.
///
/// Unlike [`run_multi`], a `singles`/`names` length mismatch is reported
/// as [`SimError::InvalidConfig`] rather than a panic: the roster comes
/// from an untrusted request, not from a caller-controlled constant.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] before the machine is built;
/// [`SimError::Stalled`] / [`SimError::Wedged`] from the run itself.
pub fn try_run_multi_with_policy(
    names: &[&str],
    policy: Box<dyn SwitchPolicy>,
    target: Option<FairnessLevel>,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> Result<PairRun, SimError> {
    if names.is_empty() {
        return Err(SimError::InvalidConfig(
            "roster must contain at least one thread".into(),
        ));
    }
    if singles.len() != names.len() {
        return Err(SimError::InvalidConfig(format!(
            "{} single-thread reference(s) for a {}-thread roster",
            singles.len(),
            names.len()
        )));
    }
    if let Some(unknown) = names
        .iter()
        .find(|n| soe_workloads::spec::profile(n).is_none())
    {
        return Err(SimError::InvalidConfig(format!(
            "unknown benchmark {unknown:?} in roster"
        )));
    }
    let traces = soe_workloads::pairs::group_traces(names)
        .into_iter()
        .map(|t| Box::new(t) as Box<dyn TraceSource>)
        .collect();
    try_run_traces_with_policy(names.join(":"), traces, policy, target, singles, cfg)
}

/// Runs an N-thread group under a *named* discipline built from the
/// [`PolicyFactory`] registry: the sweep binaries' entry point
/// (`threadsweep --policy`, the `policyzoo` grid). The spec hands the
/// builder the roster size, the target `f`, and `cfg.fairness` re-aimed
/// at `f`.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for an unregistered policy name or an
/// invalid spec (via [`PolicyError`](crate::PolicyError)), plus
/// everything [`try_run_multi_with_policy`] reports.
pub fn try_run_multi_named(
    factory: &PolicyFactory,
    policy: &str,
    names: &[&str],
    f: FairnessLevel,
    singles: &[SingleRun],
    cfg: &RunConfig,
) -> Result<PairRun, SimError> {
    let spec = PolicySpec::new(names.len(), f, cfg.with_target(f));
    let built = factory.build(policy, &spec)?;
    try_run_multi_with_policy(names, built, Some(f), singles, cfg)
}

/// Measures the two single-thread references of a pair.
pub fn run_singles(pair: &Pair, cfg: &RunConfig) -> [SingleRun; 2] {
    let (a, b) = pair.traces();
    [run_single(Box::new(a), cfg), run_single(Box::new(b), cfg)]
}

/// The complete per-pair experiment: single-thread references plus one
/// SOE run per fairness level.
#[derive(Debug, Clone)]
pub struct PairExperiment {
    /// The pair.
    pub pair: Pair,
    /// Ground-truth single-thread runs.
    pub singles: [SingleRun; 2],
    /// One run per requested fairness level, in request order.
    pub runs: Vec<PairRun>,
}

/// Runs `pair` at every level in `levels`.
pub fn run_experiment(pair: &Pair, levels: &[FairnessLevel], cfg: &RunConfig) -> PairExperiment {
    let singles = run_singles(pair, cfg);
    let runs = levels
        .iter()
        .map(|f| run_pair(pair, *f, &singles, cfg))
        .collect();
    PairExperiment {
        pair: pair.clone(),
        singles,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soe_workloads::Pair;

    fn tiny_cfg() -> RunConfig {
        let mut cfg = RunConfig::quick();
        cfg.warmup_cycles = 400_000;
        cfg.measure_cycles = 1_000_000;
        cfg
    }

    #[test]
    fn single_run_measures_sane_ipc() {
        let pair = Pair {
            a: "swim",
            b: "eon",
        };
        let (a, _) = pair.traces();
        let s = run_single(Box::new(a), &tiny_cfg());
        assert!(s.ipc_st > 0.1 && s.ipc_st < 4.0, "ipc {}", s.ipc_st);
        assert!(s.l2_misses > 0, "swim must miss");
        assert!(s.ipm > 10.0, "ipm {}", s.ipm);
    }

    #[test]
    fn pair_run_produces_consistent_metrics() {
        let pair = Pair {
            a: "swim",
            b: "eon",
        };
        let cfg = tiny_cfg();
        let singles = run_singles(&pair, &cfg);
        let run = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);
        assert_eq!(run.threads.len(), 2);
        assert!(run.throughput > 0.0);
        assert!(
            (0.0..=1.0 + 1e-9).contains(&run.fairness),
            "fairness {}",
            run.fairness
        );
        let sum: f64 = run.threads.iter().map(|t| t.ipc_soe).sum();
        assert!((run.throughput - sum).abs() < 1e-12);
    }

    #[test]
    fn enforcement_improves_fairness_for_unfair_pair() {
        // swim misses constantly; eon barely — strongly unfair at F=0.
        let pair = Pair {
            a: "swim",
            b: "eon",
        };
        let cfg = tiny_cfg();
        let singles = run_singles(&pair, &cfg);
        let f0 = run_pair(&pair, FairnessLevel::NONE, &singles, &cfg);
        let f1 = run_pair(&pair, FairnessLevel::PERFECT, &singles, &cfg);
        assert!(
            f1.fairness > f0.fairness,
            "F=1 fairness {} must beat F=0 fairness {}",
            f1.fairness,
            f0.fairness
        );
        assert!(f1.forced_switches > 0, "enforcement must force switches");
    }
}
