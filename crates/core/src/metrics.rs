//! Result types and metrics of a measured SOE run.

use serde::{Deserialize, Serialize};
use soe_model::{fairness_of, harmonic_mean_fairness, weighted_speedup, FairnessLevel};

/// One thread's outcome in a measured SOE run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadOutcome {
    /// Workload name.
    pub name: String,
    /// Instructions retired in the measurement window.
    pub retired: u64,
    /// `IPC_SOE_j`: retired over total window cycles.
    pub ipc_soe: f64,
    /// Real `IPC_ST_j`, measured by running the thread alone.
    pub ipc_st: f64,
    /// `IPC_SOE_j / IPC_ST_j`.
    pub speedup: f64,
}

/// A measured two-(or N-)thread SOE run under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairRun {
    /// Pair label (`"gcc:eon"`).
    pub label: String,
    /// Policy name (`"fairness(F=1/2)"`, `"soe(F=0)"`, ...).
    pub policy: String,
    /// Target fairness when the fairness mechanism was in use.
    pub target: Option<FairnessLevel>,
    /// Measurement window length in cycles.
    pub cycles: u64,
    /// Per-thread outcomes.
    pub threads: Vec<ThreadOutcome>,
    /// Eq 10 — total SOE throughput (sum of per-thread IPCs).
    pub throughput: f64,
    /// Eq 4 — achieved fairness (min speedup ratio).
    pub fairness: f64,
    /// Snavely et al.'s weighted speedup (Section 6 comparison).
    pub weighted_speedup: f64,
    /// Luo et al.'s harmonic mean of speedups (Section 6 comparison).
    pub harmonic_fairness: f64,
    /// Throughput relative to time-multiplexed single-thread execution.
    pub soe_speedup: f64,
    /// All thread switches in the window.
    pub total_switches: u64,
    /// Switches that hid a last-level miss.
    pub event_switches: u64,
    /// Switches forced by the policy (hide nothing).
    pub forced_switches: u64,
    /// Forced switches per 1 000 cycles (Figure 7's secondary axis).
    pub forced_per_kcycle: f64,
    /// Average measured switch latency in cycles.
    pub avg_switch_latency: f64,
}

impl PairRun {
    /// Computes the derived metrics from per-thread outcomes; used by the
    /// runner after filling in the raw counters.
    pub fn finalize(&mut self) {
        let speedups: Vec<f64> = self.threads.iter().map(|t| t.speedup).collect();
        self.throughput = self.threads.iter().map(|t| t.ipc_soe).sum();
        self.fairness = fairness_of(&speedups);
        self.weighted_speedup = weighted_speedup(&speedups);
        self.harmonic_fairness = harmonic_mean_fairness(&speedups);
        let recip: f64 = self.threads.iter().map(|t| 1.0 / t.ipc_st).sum();
        let single = self.threads.len() as f64 / recip;
        self.soe_speedup = self.throughput / single;
        self.forced_per_kcycle = if self.cycles == 0 {
            0.0
        } else {
            self.forced_switches as f64 * 1_000.0 / self.cycles as f64
        };
    }
}

/// A single-thread reference run: the measured ground truth for
/// `IPC_ST_j` (and the thread's miss characteristics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleRun {
    /// Workload name.
    pub name: String,
    /// Instructions retired in the measurement window.
    pub retired: u64,
    /// Window length in cycles.
    pub cycles: u64,
    /// Measured single-thread IPC.
    pub ipc_st: f64,
    /// Demand L2 misses in the window (loads + TLB walks + stores).
    pub l2_misses: u64,
    /// Measured instructions per last-level miss.
    pub ipm: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, ipc_soe: f64, ipc_st: f64) -> ThreadOutcome {
        ThreadOutcome {
            name: name.into(),
            retired: 0,
            ipc_soe,
            ipc_st,
            speedup: ipc_soe / ipc_st,
        }
    }

    fn run(threads: Vec<ThreadOutcome>) -> PairRun {
        let mut r = PairRun {
            label: "a:b".into(),
            policy: "test".into(),
            target: None,
            cycles: 10_000,
            threads,
            throughput: 0.0,
            fairness: 0.0,
            weighted_speedup: 0.0,
            harmonic_fairness: 0.0,
            soe_speedup: 0.0,
            total_switches: 0,
            event_switches: 0,
            forced_switches: 5,
            forced_per_kcycle: 0.0,
            avg_switch_latency: 0.0,
        };
        r.finalize();
        r
    }

    #[test]
    fn finalize_computes_throughput_and_fairness() {
        let r = run(vec![outcome("a", 1.0, 2.0), outcome("b", 0.25, 1.0)]);
        assert!((r.throughput - 1.25).abs() < 1e-12);
        assert!((r.fairness - 0.5).abs() < 1e-12);
        assert!((r.weighted_speedup - 0.75).abs() < 1e-12);
        assert!((r.forced_per_kcycle - 0.5).abs() < 1e-12);
    }

    #[test]
    fn soe_speedup_compares_against_harmonic_single() {
        let r = run(vec![outcome("a", 1.0, 2.0), outcome("b", 1.0, 2.0)]);
        // Time-multiplexed single-thread throughput would be 2.0.
        assert!((r.soe_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starved_thread_zeroes_fairness_and_harmonic() {
        let r = run(vec![outcome("a", 1.9, 2.0), outcome("b", 0.0, 1.0)]);
        assert_eq!(r.fairness, 0.0);
        assert_eq!(r.harmonic_fairness, 0.0);
    }
}
