//! The Δ-periodic estimator: per-window `IPC_ST` estimation and Eq 9
//! quota recalculation (Section 3.1).

use serde::{Deserialize, Serialize};
use soe_model::weighted::{weighted_ipsw_quotas, Weights};
use soe_model::{
    estimate_thread, ipsw_quotas, CounterSample, FairnessLevel, ThreadEstimate, ThreadModel,
};
use soe_sim::Cycle;

/// One Δ-window recalculation record — the raw material of the Figure 5
/// time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRecord {
    /// Cycle at which the recalculation happened.
    pub at: Cycle,
    /// Actual window length in cycles.
    pub window_cycles: u64,
    /// Per-thread instructions retired inside the window.
    pub window_instrs: Vec<u64>,
    /// Per-thread estimates (Eq 11–13) computed from the window.
    pub estimates: Vec<ThreadEstimate>,
    /// Per-thread quotas in force for the next window (`None` = no
    /// forced switches for that thread).
    pub quotas: Vec<Option<f64>>,
}

/// Computes Eq 9 quotas from per-thread window estimates.
///
/// A quota of `None` means the thread needs no forced switches (its Eq 9
/// quota is capped at its natural `IPM`, i.e. miss-driven switching
/// already satisfies the target). With `F = 0` every quota is `None`.
///
/// Threads whose window retired nothing keep no meaningful estimate;
/// callers pass their previous estimate instead (the estimator does).
///
/// # Examples
///
/// ```
/// use soe_core::quotas_from_estimates;
/// use soe_model::{FairnessLevel, ThreadEstimate};
///
/// let fast = ThreadEstimate { ipm: 15_000.0, cpm: 6_000.0, ipc_st: 15_000.0 / 6_300.0 };
/// let slow = ThreadEstimate { ipm: 1_000.0, cpm: 400.0, ipc_st: 1_000.0 / 700.0 };
/// let q = quotas_from_estimates(&[fast, slow], 300.0, FairnessLevel::PERFECT);
/// assert!((q[0].unwrap() - 1_666.7).abs() < 1.0); // Table 2's forced quota
/// assert!(q[1].is_none()); // the missy thread keeps its natural switching
/// ```
pub fn quotas_from_estimates(
    estimates: &[ThreadEstimate],
    miss_lat: f64,
    f: FairnessLevel,
) -> Vec<Option<f64>> {
    weighted_quotas_from_estimates(estimates, miss_lat, f, None, 0.0)
}

/// [`quotas_from_estimates`] with optional per-thread service weights
/// (the weighted-fairness extension; `None` = uniform, the paper's
/// definition) and a stabilizing quota floor.
///
/// `min_quota_cycles` bounds how short a forced round may get: each
/// thread's quota is floored at `IPC_ST_est × min_quota_cycles`
/// instructions. Very small quotas destabilize the mechanism — the
/// throttled thread runs in slivers, its measured behaviour degrades
/// (cache interference, switch overhead), the estimate drops and the
/// quota shrinks further — the estimation-accuracy feedback the paper's
/// Section 6 warns about under strict enforcement. The floor trades a
/// little enforcement strength at extreme settings for stability.
pub fn weighted_quotas_from_estimates(
    estimates: &[ThreadEstimate],
    miss_lat: f64,
    f: FairnessLevel,
    weights: Option<&Weights>,
    min_quota_cycles: f64,
) -> Vec<Option<f64>> {
    if !f.is_enforced() {
        return vec![None; estimates.len()];
    }
    let threads: Vec<ThreadModel> = estimates
        .iter()
        .map(|e| ThreadModel::from_ipm_cpm(e.ipm.max(1.0), e.cpm.max(1.0)))
        .collect();
    let params = soe_model::SystemParams::new(miss_lat, 0.0);
    let quotas = match weights {
        Some(w) => weighted_ipsw_quotas(&threads, params, f, w),
        None => ipsw_quotas(&threads, params, f),
    };
    quotas
        .iter()
        .zip(threads.iter().zip(estimates))
        .map(|(q, (t, e))| {
            let q = q.max(e.ipc_st * min_quota_cycles);
            // Quota at (or above) the natural IPM: miss switching already
            // achieves it; no forced switches needed.
            if q >= t.ipm() - 1e-9 {
                None
            } else {
                Some(q.max(1.0))
            }
        })
        .collect()
}

/// The Δ-periodic estimator: tracks cumulative counters, differentiates
/// them per window, maintains per-thread estimates (falling back to the
/// previous window when a thread did not run), and records every window
/// for later plotting.
#[derive(Debug, Clone)]
pub struct Estimator {
    delta: u64,
    miss_lat: f64,
    min_quota_cycles: f64,
    last_sample: Vec<CounterSample>,
    last_recalc: Cycle,
    estimates: Vec<Option<ThreadEstimate>>,
    records: Vec<WindowRecord>,
    record_history: bool,
}

impl Estimator {
    /// Creates an estimator for `threads` hardware threads recalculating
    /// every `delta` cycles with the given miss latency.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `delta == 0` or `miss_lat <= 0`.
    pub fn new(threads: usize, delta: u64, miss_lat: f64, record_history: bool) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(delta > 0, "delta must be positive");
        assert!(miss_lat > 0.0, "miss latency must be positive");
        Self {
            delta,
            miss_lat,
            min_quota_cycles: 0.0,
            last_sample: vec![CounterSample::default(); threads],
            last_recalc: 0,
            estimates: vec![None; threads],
            records: Vec::new(),
            record_history,
        }
    }

    /// Whether a recalculation is due at `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.last_recalc + self.delta
    }

    /// The first cycle at which [`Estimator::due`] becomes true — the
    /// end of the current Δ window. Policies report this as a scheduled
    /// decision point so quiescent fast-forward never jumps over a
    /// recalculation.
    pub fn next_due(&self) -> Cycle {
        self.last_recalc + self.delta
    }

    /// Performs the Δ recalculation: differentiates `samples` against the
    /// previous reading, refreshes estimates and returns the Eq 9 quotas
    /// for target `f`.
    pub fn recalc(
        &mut self,
        now: Cycle,
        samples: &[CounterSample],
        f: FairnessLevel,
    ) -> Vec<Option<f64>> {
        self.recalc_weighted(now, samples, f, None)
    }

    /// [`Estimator::recalc`] with optional per-thread service weights.
    pub fn recalc_weighted(
        &mut self,
        now: Cycle,
        samples: &[CounterSample],
        f: FairnessLevel,
        weights: Option<&Weights>,
    ) -> Vec<Option<f64>> {
        assert_eq!(
            samples.len(),
            self.last_sample.len(),
            "one sample per thread"
        );
        let mut window_instrs = Vec::with_capacity(samples.len());
        for (i, s) in samples.iter().enumerate() {
            // soe-lint: allow(slice-index): the assert above pins samples.len() to the per-thread vector lengths
            let window = s.since(&self.last_sample[i]);
            window_instrs.push(window.instrs);
            if window.instrs > 0 && window.cycles > 0 {
                // soe-lint: allow(slice-index): the assert above pins samples.len() to the per-thread vector lengths
                self.estimates[i] = Some(estimate_thread(window, self.miss_lat));
            }
            // soe-lint: allow(slice-index): the assert above pins samples.len() to the per-thread vector lengths
            self.last_sample[i] = *s;
        }
        let effective: Vec<ThreadEstimate> = self
            .estimates
            .iter()
            .map(|e| {
                e.unwrap_or(ThreadEstimate {
                    // No data yet: a neutral optimistic estimate that
                    // yields no forced switches until real data arrives.
                    ipm: 1.0,
                    cpm: 1.0,
                    ipc_st: 0.5,
                })
            })
            .collect();
        // Threads without any estimate yet are excluded from enforcement:
        // their placeholder would otherwise distort CPM_min.
        let quotas = if self.estimates.iter().all(|e| e.is_some()) {
            weighted_quotas_from_estimates(
                &effective,
                self.miss_lat,
                f,
                weights,
                self.min_quota_cycles,
            )
        } else {
            vec![None; samples.len()]
        };
        if self.record_history {
            self.records.push(WindowRecord {
                at: now,
                window_cycles: now - self.last_recalc,
                window_instrs,
                estimates: effective,
                quotas: quotas.clone(),
            });
        }
        self.last_recalc = now;
        quotas
    }

    /// The latest per-thread estimates (`None` until a thread has run).
    pub fn estimates(&self) -> &[Option<ThreadEstimate>] {
        &self.estimates
    }

    /// Sets the stabilizing quota floor (see
    /// [`weighted_quotas_from_estimates`]).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn set_min_quota_cycles(&mut self, cycles: f64) {
        assert!(cycles >= 0.0, "quota floor must be non-negative");
        self.min_quota_cycles = cycles;
    }

    /// Updates the miss latency used by Eq 9/13 — for the measured-latency
    /// mode of Section 6 (variable-latency events).
    ///
    /// # Panics
    ///
    /// Panics if `miss_lat` is not positive.
    pub fn set_miss_lat(&mut self, miss_lat: f64) {
        assert!(miss_lat > 0.0, "miss latency must be positive");
        self.miss_lat = miss_lat;
    }

    /// The miss latency currently in use.
    pub fn miss_lat(&self) -> f64 {
        self.miss_lat
    }

    /// All recorded windows.
    pub fn records(&self) -> &[WindowRecord] {
        &self.records
    }

    /// Discards recorded windows (e.g. after warm-up).
    pub fn clear_records(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instrs: u64, cycles: u64, misses: u64) -> CounterSample {
        CounterSample {
            instrs,
            cycles,
            misses,
        }
    }

    #[test]
    fn estimates_follow_window_deltas() {
        let mut e = Estimator::new(2, 1_000, 300.0, true);
        let q = e.recalc(
            1_000,
            &[sample(10_000, 4_000, 10), sample(5_000, 2_000, 20)],
            FairnessLevel::PERFECT,
        );
        assert_eq!(q.len(), 2);
        let est = e.estimates()[0].unwrap();
        assert!((est.ipm - 1_000.0).abs() < 1e-9);
        assert!((est.cpm - 400.0).abs() < 1e-9);
        // Second window: deltas, not cumulative values.
        e.recalc(
            2_000,
            &[sample(12_000, 4_800, 12), sample(6_000, 2_400, 24)],
            FairnessLevel::PERFECT,
        );
        let est = e.estimates()[0].unwrap();
        assert!((est.ipm - 1_000.0).abs() < 1e-9, "ipm {}", est.ipm);
    }

    #[test]
    fn starved_thread_keeps_previous_estimate() {
        let mut e = Estimator::new(2, 1_000, 300.0, false);
        e.recalc(
            1_000,
            &[sample(8_000, 3_000, 8), sample(2_000, 900, 4)],
            FairnessLevel::HALF,
        );
        let before = e.estimates()[1].unwrap();
        // Thread 1 retires nothing in the second window.
        e.recalc(
            2_000,
            &[sample(16_000, 6_000, 16), sample(2_000, 900, 4)],
            FairnessLevel::HALF,
        );
        assert_eq!(e.estimates()[1].unwrap(), before);
    }

    #[test]
    fn no_enforcement_until_all_threads_measured() {
        let mut e = Estimator::new(2, 1_000, 300.0, false);
        let q = e.recalc(
            1_000,
            &[sample(8_000, 3_000, 8), sample(0, 0, 0)],
            FairnessLevel::PERFECT,
        );
        assert!(q.iter().all(|x| x.is_none()), "no data for thread 1 yet");
    }

    #[test]
    fn records_accumulate_and_clear() {
        let mut e = Estimator::new(1, 100, 300.0, true);
        e.recalc(100, &[sample(10, 10, 1)], FairnessLevel::NONE);
        e.recalc(200, &[sample(20, 20, 2)], FairnessLevel::NONE);
        assert_eq!(e.records().len(), 2);
        assert_eq!(e.records()[1].window_cycles, 100);
        e.clear_records();
        assert!(e.records().is_empty());
    }

    #[test]
    fn due_respects_delta() {
        let e = Estimator::new(1, 250_000, 300.0, false);
        assert!(!e.due(249_999));
        assert!(e.due(250_000));
    }

    #[test]
    fn f_zero_yields_no_quotas() {
        let est = ThreadEstimate {
            ipm: 1_000.0,
            cpm: 400.0,
            ipc_st: 1.4,
        };
        let q = quotas_from_estimates(&[est, est], 300.0, FairnessLevel::NONE);
        assert_eq!(q, vec![None, None]);
    }
}
