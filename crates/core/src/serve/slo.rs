//! The `soe-serve-slo/1` report: per-client service levels and the
//! cross-client fairness index.
//!
//! # Schema (`soe-serve-slo/1`)
//!
//! ```json
//! {
//!   "schema": "soe-serve-slo/1",
//!   "discipline": "drr",                 // queue discipline served under
//!   "wall_ms": 1234,                     // session wall-clock
//!   "throughput_rps": 8.1,               // served / wall seconds
//!   "served": 10, "replayed": 0, "shed": 2, "rejected": 1,
//!   "dropped": 0, "quarantined": 0,
//!   "jain_fairness": 0.97,               // Jain index over per-client completions
//!   "clients": [ { per-client block, see ClientSlo } ]
//! }
//! ```
//!
//! Latencies are host wall-clock (accept → response written) and so
//! vary run to run; everything else is deterministic for a given input
//! and discipline. `queue_wait` is measured in *dispatches*: how many
//! other requests were dispatched between this request's acceptance and
//! its own dispatch — a scheduler-quality metric that is immune to host
//! speed, and the one the fairness tests bound.

use serde::{Deserialize, Serialize};

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`, 1.0 for perfectly equal shares, → `1/n` as one
/// party takes everything. Empty or all-zero inputs score 1.0 (nothing
/// was allocated unfairly).
pub fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if xs.is_empty() || sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq)
}

/// Nearest-rank percentile of an unsorted sample (p in `[0, 100]`);
/// 0.0 for an empty sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let index = rank.clamp(1, sorted.len()) - 1;
    sorted.get(index).copied().unwrap_or(0.0)
}

/// Running per-client accounting, accumulated by the service loop.
#[derive(Debug, Clone, Default)]
pub struct ClientTally {
    /// Well-formed lines naming this client.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected by validation.
    pub rejected: u64,
    /// Requests refused with backpressure.
    pub shed: u64,
    /// Requests dropped by injected faults.
    pub dropped: u64,
    /// Results computed and emitted this session.
    pub completed: u64,
    /// Requests quarantined after exhausting retries.
    pub quarantined: u64,
    /// Results re-emitted verbatim from the journal.
    pub replayed: u64,
    /// Accept → response-written wall latencies, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Dispatches of *other* requests between accept and own dispatch.
    pub queue_waits: Vec<f64>,
}

/// One client's block in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSlo {
    /// The client.
    pub client: String,
    /// Well-formed lines naming this client.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected by validation.
    pub rejected: u64,
    /// Requests refused with backpressure.
    pub shed: u64,
    /// Requests dropped by injected faults.
    pub dropped: u64,
    /// Results computed and emitted this session.
    pub completed: u64,
    /// Requests quarantined after exhausting retries.
    pub quarantined: u64,
    /// Results re-emitted verbatim from the journal.
    pub replayed: u64,
    /// Median accept → response latency, milliseconds (wall-clock).
    pub p50_latency_ms: f64,
    /// 99th-percentile latency, milliseconds (wall-clock).
    pub p99_latency_ms: f64,
    /// Median queue wait, in other-request dispatches.
    pub p50_queue_wait: f64,
    /// 99th-percentile queue wait, in other-request dispatches.
    pub p99_queue_wait: f64,
}

/// The full report (see the module docs for the schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Schema identifier: `"soe-serve-slo/1"`.
    pub schema: String,
    /// Queue discipline the session ran under (`"drr"` / `"fifo"`).
    pub discipline: String,
    /// Session wall-clock, milliseconds.
    pub wall_ms: u64,
    /// Results per wall second (served + replayed).
    pub throughput_rps: f64,
    /// Results computed and emitted this session.
    pub served: u64,
    /// Results re-emitted verbatim from the journal.
    pub replayed: u64,
    /// Requests refused with backpressure.
    pub shed: u64,
    /// Requests rejected by validation.
    pub rejected: u64,
    /// Requests dropped by injected faults.
    pub dropped: u64,
    /// Requests quarantined after exhausting retries.
    pub quarantined: u64,
    /// Jain index over per-client completed counts.
    pub jain_fairness: f64,
    /// Per-client blocks, sorted by client name.
    pub clients: Vec<ClientSlo>,
}

/// The schema identifier written into every report.
pub const SLO_SCHEMA: &str = "soe-serve-slo/1";

impl SloReport {
    /// Builds the report from the service loop's accounting.
    pub fn build(
        discipline: &str,
        wall_ms: u64,
        tallies: &std::collections::BTreeMap<String, ClientTally>,
    ) -> Self {
        let clients: Vec<ClientSlo> = tallies
            .iter()
            .map(|(client, t)| ClientSlo {
                client: client.clone(),
                submitted: t.submitted,
                accepted: t.accepted,
                rejected: t.rejected,
                shed: t.shed,
                dropped: t.dropped,
                completed: t.completed,
                quarantined: t.quarantined,
                replayed: t.replayed,
                p50_latency_ms: percentile(&t.latencies_ms, 50.0),
                p99_latency_ms: percentile(&t.latencies_ms, 99.0),
                p50_queue_wait: percentile(&t.queue_waits, 50.0),
                p99_queue_wait: percentile(&t.queue_waits, 99.0),
            })
            .collect();
        let served: u64 = clients.iter().map(|c| c.completed).sum();
        let replayed: u64 = clients.iter().map(|c| c.replayed).sum();
        let completions: Vec<f64> = clients
            .iter()
            .filter(|c| c.accepted + c.shed > 0)
            .map(|c| c.completed as f64)
            .collect();
        Self {
            schema: SLO_SCHEMA.to_string(),
            discipline: discipline.to_string(),
            wall_ms,
            throughput_rps: if wall_ms == 0 {
                0.0
            } else {
                (served + replayed) as f64 / (wall_ms as f64 / 1_000.0)
            },
            served,
            replayed,
            shed: clients.iter().map(|c| c.shed).sum(),
            rejected: clients.iter().map(|c| c.rejected).sum(),
            dropped: clients.iter().map(|c| c.dropped).sum(),
            quarantined: clients.iter().map(|c| c.quarantined).sum(),
            jain_fairness: jain(&completions),
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn jain_brackets() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One hog taking everything: index → 1/n.
        let skewed = jain(&[30.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12, "{skewed}");
        // The fairness-test shape: FIFO lets the hog complete 60 while
        // three polite clients complete 6 each — visibly unfair.
        assert!(jain(&[60.0, 6.0, 6.0, 6.0]) < 0.45);
        assert!(jain(&[8.0, 6.0, 6.0, 6.0]) > 0.95);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn report_round_trips_and_aggregates() {
        let mut tallies: BTreeMap<String, ClientTally> = BTreeMap::new();
        let mut hog = ClientTally {
            submitted: 10,
            accepted: 4,
            shed: 6,
            completed: 4,
            ..ClientTally::default()
        };
        hog.latencies_ms = vec![5.0, 6.0, 7.0, 8.0];
        hog.queue_waits = vec![0.0, 1.0, 1.0, 2.0];
        tallies.insert("hog".to_string(), hog);
        tallies.insert(
            "polite".to_string(),
            ClientTally {
                submitted: 4,
                accepted: 4,
                completed: 4,
                latencies_ms: vec![5.0; 4],
                queue_waits: vec![1.0; 4],
                ..ClientTally::default()
            },
        );
        let report = SloReport::build("drr", 2_000, &tallies);
        assert_eq!(report.schema, SLO_SCHEMA);
        assert_eq!(report.served, 8);
        assert_eq!(report.shed, 6);
        assert!((report.throughput_rps - 4.0).abs() < 1e-12);
        assert!(
            (report.jain_fairness - 1.0).abs() < 1e-12,
            "equal completions"
        );
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
